"""The Flink batch engine: typed DataSets over the simulated cluster.

Execution mirrors the Spark engine's accounting but with Flink semantics:
rows are typed tuples, shuffles at joins and group-bys, and the data
serializer is either the **built-in** per-field serializer (with lazy
deserialization of accessed fields only) or **Skyway** (rows travel as heap
object graphs).  Flink "falls back to the Kryo serializer when encountering
a type with neither a Flink-customized nor a user-defined serializer" — the
engine keeps that fallback for non-row payloads.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import re

from repro.jvm.marshal import Obj, from_heap, to_heap_many
from repro.flink.types import FieldKind
from repro.net.cluster import Cluster, Node
from repro.net.streams import ByteInputStream, ByteOutputStream
from repro.serial.base import Serializer
from repro.simtime import Category
from repro.spark.partitioner import stable_hash
from repro.flink.types import BuiltinRowSerializer, RowType

Row = Tuple[Any, ...]


class Table:
    """A named, typed input relation."""

    def __init__(self, row_type: RowType, rows: List[Row]) -> None:
        self.row_type = row_type
        self.rows = rows

    @property
    def name(self) -> str:
        return self.row_type.name

    def __len__(self) -> int:
        return len(self.rows)


class FlinkEnvironment:
    """Cluster-bound execution environment.

    ``mode`` selects the data serializer: "builtin" (Flink's optimized
    per-field serializers) or "skyway" (requires Skyway runtimes attached
    to the cluster JVMs).
    """

    def __init__(
        self,
        cluster: Cluster,
        mode: str = "builtin",
        parallelism: Optional[int] = None,
        skyway_serializer: Optional[Serializer] = None,
        record_op_cost: float = 150e-9,
        sort_compare_cost: float = 24e-9,
        channel_overhead: float = 1.2e-6,
        network_overlap: float = 0.85,
    ) -> None:
        if mode not in ("builtin", "skyway"):
            raise ValueError(f"unknown serializer mode: {mode}")
        self.cluster = cluster
        self.mode = mode
        self.parallelism = (
            parallelism if parallelism is not None else 2 * len(cluster.workers)
        )
        self.skyway_serializer = skyway_serializer
        self.record_op_cost = record_op_cost
        self.sort_compare_cost = sort_compare_cost
        #: Per-channel setup/teardown cost (Flink result partitions are
        #: network channels, not Spark-style per-reducer disk files).
        self.channel_overhead = channel_overhead
        #: Fraction of transfer time hidden by Flink's pipelined shuffle
        #: (producers stream into channels while consumers drain them).
        self.network_overlap = network_overlap
        self._shuffle_ids = itertools.count()
        self.bytes_shuffled = 0
        self.rows_shuffled = 0

    # -- sources --------------------------------------------------------------

    def from_table(self, table: Table) -> "DataSet":
        partitions: List[List[Row]] = [[] for _ in range(self.parallelism)]
        for i, row in enumerate(table.rows):
            partitions[i % self.parallelism].append(row)
        return DataSet(self, table.row_type, partitions)

    # -- infrastructure ----------------------------------------------------------

    def node_for(self, partition: int) -> Node:
        workers = self.cluster.workers
        return workers[partition % len(workers)]

    def charge_compute(self, node: Node, rows: int) -> None:
        node.clock.charge(rows * self.record_op_cost, Category.COMPUTATION)

    # -- the shuffle -----------------------------------------------------------------

    def shuffle(
        self,
        dataset: "DataSet",
        key_fn: Callable[[Row], Any],
        accessed_fields: Optional[Sequence[int]] = None,
    ) -> List[List[Row]]:
        """Repartition rows by key hash through the serializer path.

        ``accessed_fields``: the downstream operator's field usage — what
        lazy deserialization charges for under the built-in serializer.
        """
        shuffle_id = next(self._shuffle_ids)
        n = self.parallelism
        cost = self.cluster.cost_model
        # Produce side: bucket, serialize into result-partition channels.
        channels: Dict[Tuple[int, int], Tuple[Node, bytes]] = {}
        for p, rows in enumerate(dataset.partitions):
            node = self.node_for(p)
            if rows:
                node.clock.charge(
                    len(rows) * max(1.0, math.log2(len(rows)))
                    * self.sort_compare_cost,
                    Category.COMPUTATION,
                )
            buckets: List[List[Row]] = [[] for _ in range(n)]
            for row in rows:
                buckets[stable_hash(key_fn(row)) % n].append(row)
            for r, bucket in enumerate(buckets):
                data = self._serialize_bucket(node, dataset.row_type, bucket)
                # Batch results spill through the channel's write buffer.
                node.clock.charge(
                    self.channel_overhead
                    + len(data) * cost.disk_write_per_byte,
                    Category.WRITE_IO,
                )
                channels[(p, r)] = (node, data)
                self.bytes_shuffled += len(data)
                self.rows_shuffled += len(bucket)

        # Consume side: drain channels (pipelined: most transfer time is
        # hidden behind production/consumption) + deserialize.
        out: List[List[Row]] = []
        for r in range(n):
            dst = self.node_for(r)
            rows: List[Row] = []
            for p in range(len(dataset.partitions)):
                src, data = channels[(p, r)]
                dst.clock.charge(
                    self.channel_overhead
                    + len(data) * cost.disk_read_per_byte,
                    Category.READ_IO,
                )
                if src is not dst:
                    dst.remote_bytes_fetched += len(data)
                    dst.clock.charge(
                        (1.0 - self.network_overlap)
                        * cost.network_transfer(len(data)),
                        Category.NETWORK,
                    )
                else:
                    dst.local_bytes_fetched += len(data)
                rows.extend(
                    self._deserialize_bucket(
                        dst, dataset.row_type, data, accessed_fields
                    )
                )
            out.append(rows)
        return out

    def _serialize_bucket(
        self, node: Node, row_type: RowType, bucket: List[Row]
    ) -> bytes:
        jvm = node.jvm
        if self.mode == "builtin":
            serializer = BuiltinRowSerializer(row_type)
            out = ByteOutputStream()
            with node.clock.phase(Category.SERIALIZATION):
                out.write_varint(len(bucket))
                for row in bucket:
                    serializer.write_row(out, row, jvm)
            return out.getvalue()
        # Skyway: rows become typed heap objects (Flink rows are POJOs with
        # primitive fields, not boxed tuples) and move heap-to-heap.
        # Repeated strings (flags, priorities) are shared, as interned
        # literals are on a real heap.
        assert self.skyway_serializer is not None
        class_name = _ensure_row_class(jvm, row_type)
        with node.clock.phase(Category.COMPUTATION):
            objs = [
                Obj(class_name,
                    {f"c{i}": _field_value(row_type, i, v)
                     for i, v in enumerate(row)})
                for row in bucket
            ]
            addrs = to_heap_many(jvm, objs, charge=True)
            pins = [jvm.pin(a) for a in addrs]
        try:
            with node.clock.phase(Category.SERIALIZATION):
                stream = self.skyway_serializer.new_stream(jvm)
                for pin in pins:
                    stream.write_object(pin.address)
                return stream.close()
        finally:
            for pin in pins:
                jvm.unpin(pin)

    def _deserialize_bucket(
        self,
        node: Node,
        row_type: RowType,
        data: bytes,
        accessed_fields: Optional[Sequence[int]],
    ) -> List[Row]:
        jvm = node.jvm
        if self.mode == "builtin":
            serializer = BuiltinRowSerializer(row_type)
            rows: List[Row] = []
            with node.clock.phase(Category.DESERIALIZATION):
                inp = ByteInputStream(data)
                count = inp.read_varint()
                for _ in range(count):
                    rows.append(serializer.read_row(inp, jvm, accessed_fields))
            return rows
        assert self.skyway_serializer is not None
        rows = []
        with node.clock.phase(Category.DESERIALIZATION):
            reader = self.skyway_serializer.new_reader(jvm, data)
            try:
                while reader.has_next():
                    back = from_heap(jvm, reader.read_object())
                    rows.append(_row_from_obj(row_type, back))
            finally:
                reader.close()
        return rows


class DataSet:
    """A typed, partitioned collection of rows."""

    def __init__(
        self, env: FlinkEnvironment, row_type: RowType,
        partitions: List[List[Row]],
    ) -> None:
        self.env = env
        self.row_type = row_type
        self.partitions = partitions

    # -- narrow ops -------------------------------------------------------------

    def filter(self, predicate: Callable[[Row], bool]) -> "DataSet":
        out = []
        for p, rows in enumerate(self.partitions):
            self.env.charge_compute(self.env.node_for(p), len(rows))
            out.append([row for row in rows if predicate(row)])
        return DataSet(self.env, self.row_type, out)

    def project(self, indices: Sequence[int], name: Optional[str] = None) -> "DataSet":
        new_type = self.row_type.project(indices, name)
        out = []
        for p, rows in enumerate(self.partitions):
            self.env.charge_compute(self.env.node_for(p), len(rows))
            out.append([tuple(row[i] for i in indices) for row in rows])
        return DataSet(self.env, new_type, out)

    def map_rows(
        self, fn: Callable[[Row], Row], new_type: RowType
    ) -> "DataSet":
        out = []
        for p, rows in enumerate(self.partitions):
            self.env.charge_compute(self.env.node_for(p), len(rows))
            out.append([fn(row) for row in rows])
        return DataSet(self.env, new_type, out)

    # -- wide ops ----------------------------------------------------------------

    def join(
        self,
        other: "DataSet",
        left_key: int,
        right_key: int,
        accessed_left: Optional[Sequence[int]] = None,
        accessed_right: Optional[Sequence[int]] = None,
        name: Optional[str] = None,
    ) -> "DataSet":
        """Repartition-hash join; result rows are left fields + right fields."""
        left_parts = self.env.shuffle(self, lambda r: r[left_key], accessed_left)
        right_parts = self.env.shuffle(other, lambda r: r[right_key], accessed_right)
        joined_type = self.row_type.concat(other.row_type, name)
        out: List[List[Row]] = []
        for p in range(self.env.parallelism):
            node = self.env.node_for(p)
            left_rows = left_parts[p]
            right_rows = right_parts[p]
            self.env.charge_compute(node, len(left_rows) + len(right_rows))
            with node.clock.phase(Category.COMPUTATION):
                table: Dict[Any, List[Row]] = {}
                for row in left_rows:
                    table.setdefault(row[left_key], []).append(row)
                joined = []
                for row in right_rows:
                    for lrow in table.get(row[right_key], ()):
                        joined.append(tuple(lrow) + tuple(row))
            out.append(joined)
        return DataSet(self.env, joined_type, out)

    def group_by(
        self,
        key: Callable[[Row], Any],
        accessed_fields: Optional[Sequence[int]] = None,
    ) -> "GroupedDataSet":
        parts = self.env.shuffle(self, key, accessed_fields)
        return GroupedDataSet(self.env, self.row_type, parts, key)

    def union(self, other: "DataSet") -> "DataSet":
        """Concatenate two datasets of the same schema (no shuffle)."""
        if [k for _, k in self.row_type.fields] != [k for _, k in other.row_type.fields]:
            raise TypeError(
                f"union of incompatible schemas: {self.row_type.name} vs "
                f"{other.row_type.name}"
            )
        merged = [list(rows) for rows in self.partitions]
        for i, rows in enumerate(other.partitions):
            merged[i % len(merged)].extend(rows)
        return DataSet(self.env, self.row_type, merged)

    def first(self, n: int) -> List[Row]:
        """First n rows in partition order (Flink's first(n))."""
        out: List[Row] = []
        for rows in self.partitions:
            if len(out) >= n:
                break
            out.extend(rows)
        return out[:n]

    # -- sinks --------------------------------------------------------------------

    def collect(self) -> List[Row]:
        out: List[Row] = []
        for p, rows in enumerate(self.partitions):
            node = self.env.node_for(p)
            self.env.cluster.transfer(node, self.env.cluster.driver,
                                      48 * max(1, len(rows)))
            out.extend(rows)
        return out

    def count(self) -> int:
        return sum(len(rows) for rows in self.partitions)


class GroupedDataSet:
    """Result of group_by: per-key aggregation on the reduce side."""

    def __init__(
        self,
        env: FlinkEnvironment,
        row_type: RowType,
        partitions: List[List[Row]],
        key: Callable[[Row], Any],
    ) -> None:
        self.env = env
        self.row_type = row_type
        self.partitions = partitions
        self.key = key

    def aggregate(
        self,
        fn: Callable[[Any, List[Row]], Row],
        new_type: RowType,
    ) -> DataSet:
        """``fn(key, rows) -> result row`` per group."""
        out: List[List[Row]] = []
        for p, rows in enumerate(self.partitions):
            node = self.env.node_for(p)
            self.env.charge_compute(node, len(rows))
            with node.clock.phase(Category.COMPUTATION):
                groups: Dict[Any, List[Row]] = {}
                for row in rows:
                    groups.setdefault(self.key(row), []).append(row)
                out.append([fn(k, v) for k, v in groups.items()])
        return DataSet(self.env, new_type, out)


# ---------------------------------------------------------------------------
# typed row classes for the Skyway path
# ---------------------------------------------------------------------------

_KIND_DESCRIPTOR = {
    FieldKind.LONG: "J",
    FieldKind.INT: "I",
    FieldKind.DATE: "I",
    FieldKind.DOUBLE: "D",
    FieldKind.STRING: "Ljava.lang.String;",
}


def _row_class_name(row_type: RowType) -> str:
    safe = re.sub(r"[^A-Za-z0-9_]", "_", row_type.name)
    return f"repro.flink.rows.{safe}_{row_type.arity}"


def _ensure_row_class(jvm, row_type: RowType) -> str:
    """Define (once) the POJO row class for a schema: positional field
    names ``c0..cN`` with primitive descriptors per field kind."""
    name = _row_class_name(row_type)
    if name not in jvm.classpath:
        jvm.classpath.define(
            name,
            [(f"c{i}", _KIND_DESCRIPTOR[kind])
             for i, (_, kind) in enumerate(row_type.fields)],
        )
    return name


def _field_value(row_type: RowType, index: int, value: Any) -> Any:
    kind = row_type.fields[index][1]
    if kind is FieldKind.STRING:
        return value
    if kind is FieldKind.DOUBLE:
        return float(value)
    return int(value)


def _row_from_obj(row_type: RowType, obj: "Obj") -> Row:
    out = []
    for i, (_, kind) in enumerate(row_type.fields):
        raw = obj.fields[f"c{i}"]
        if kind is FieldKind.DOUBLE:
            out.append(float(raw))
        elif kind is FieldKind.STRING:
            out.append(raw)
        else:
            out.append(int(raw))
    return tuple(out)
