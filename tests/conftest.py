"""Shared fixtures: JVMs, sample class definitions, graph builders, plus a
per-test wall-clock ceiling (socket-transport tests talk to real worker
processes; a hung worker must fail the test, not the CI job)."""

import signal

import pytest

from repro.jvm.jvm import JVM
from repro.types.classdef import ClassPath
from repro.types.corelib import install_core_classes

try:
    import pytest_timeout  # noqa: F401  (CI installs it; containers may not)
    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

#: Per-test ceiling, seconds.  Generous: the slowest legitimate test is a
#: multi-process transport round trip; only a genuine hang exceeds this.
TEST_TIMEOUT_SECONDS = 120


def pytest_collection_modifyitems(config, items):
    if not _HAVE_PYTEST_TIMEOUT:
        return
    for item in items:
        if item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(TEST_TIMEOUT_SECONDS))


if not _HAVE_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):
    # Fallback when the plugin is unavailable: SIGALRM aborts the test
    # body.  Covers the call phase only, which is where transport tests
    # can block on sockets/processes.
    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item):
        marker = item.get_closest_marker("timeout")
        seconds = int(marker.args[0]) if marker and marker.args \
            else TEST_TIMEOUT_SECONDS

        def _expired(signum, frame):
            raise TimeoutError(
                f"test exceeded the {seconds}s wall-clock ceiling"
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.alarm(seconds)
        try:
            return (yield)
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


# ---------------------------------------------------------------------------
# observability isolation
# ---------------------------------------------------------------------------

@pytest.fixture(autouse=True)
def _obs_isolation():
    """Every test starts and ends with no global tracer and an empty
    metrics registry: JVMs, channels and SparkContexts register snapshot
    sources as a side effect of construction, and a test that enables
    tracing must not leak spans into the next one."""
    from repro import obs

    obs.reset()
    yield
    obs.reset()


# ---------------------------------------------------------------------------
# socket-transport fixtures (worker processes are always reaped)
# ---------------------------------------------------------------------------

@pytest.fixture
def spawned_worker():
    """A live worker process on an ephemeral loopback port."""
    from repro.transport import WorkerHandle, WorkerSpec
    from repro.transport.testing import SAMPLE_FACTORY

    handle = WorkerHandle.spawn(
        WorkerSpec(name="test-worker", classpath_factory=SAMPLE_FACTORY)
    )
    yield handle
    handle.stop()


@pytest.fixture
def make_fleet():
    """Factory for live fleets (coordinator + N worker processes).  Every
    harness spawned through it is reaped at teardown — no coordinator or
    worker outlives the test, even when the test body raises."""
    from repro.cluster.harness import FleetHarness

    harnesses = []

    def _make(size, **kwargs):
        kwargs.setdefault("name", f"tfleet{len(harnesses)}")
        harness = FleetHarness(size, **kwargs)
        harnesses.append(harness)
        return harness

    yield _make
    for harness in harnesses:
        harness.stop()


@pytest.fixture
def transport_driver():
    """A driver-side runtime built from the same recipe workers use."""
    from repro.transport.bootstrap import build_runtime
    from repro.transport.testing import SAMPLE_FACTORY

    return build_runtime("test-driver", SAMPLE_FACTORY)


def sample_classpath() -> ClassPath:
    """A class path with the paper's running example (Figure 2's Date
    parsing classes) plus a linked-list node for graph tests."""
    cp = install_core_classes(ClassPath())
    cp.define("Year4D", [("year", "I")])
    cp.define("Month2D", [("month", "I")])
    cp.define("Day2D", [("day", "I")])
    cp.define(
        "Date",
        [("year", "LYear4D;"), ("month", "LMonth2D;"), ("day", "LDay2D;")],
    )
    cp.define("DateParser", [("parsed", "J")])
    cp.define(
        "ListNode",
        [("payload", "J"), ("next", "LListNode;")],
    )
    cp.define(
        "Mixed",
        [
            ("b", "B"), ("z", "Z"), ("c", "C"), ("s", "S"),
            ("i", "I"), ("f", "F"), ("j", "J"), ("d", "D"),
            ("ref", "Ljava.lang.Object;"),
        ],
    )
    return cp


@pytest.fixture
def classpath() -> ClassPath:
    return sample_classpath()


@pytest.fixture
def jvm(classpath) -> JVM:
    return JVM("test-jvm", classpath=classpath)


@pytest.fixture
def small_jvm(classpath) -> JVM:
    """A JVM with a tiny heap, for exercising GC paths."""
    return JVM("small-jvm", classpath=classpath, young_bytes=48 * 1024, old_bytes=256 * 1024)


def make_date(jvm: JVM, year: int, month: int, day: int) -> int:
    """Build a Date object graph (root + three leaves), returning its addr."""
    date = jvm.new_instance("Date")
    pin = jvm.pin(date)
    try:
        for field, cls, inner, value in (
            ("year", "Year4D", "year", year),
            ("month", "Month2D", "month", month),
            ("day", "Day2D", "day", day),
        ):
            leaf = jvm.new_instance(cls)
            jvm.set_field(leaf, inner, value)
            jvm.set_field(pin.address, field, leaf)
        return pin.address
    finally:
        jvm.unpin(pin)


def read_date(jvm: JVM, date: int) -> tuple:
    out = []
    for field, inner in (("year", "year"), ("month", "month"), ("day", "day")):
        leaf = jvm.get_field(date, field)
        out.append(jvm.get_field(leaf, inner))
    return tuple(out)


def make_list(jvm: JVM, payloads) -> int:
    """Build a singly linked ListNode chain, returning the head address."""
    head = 0
    head_pin = jvm.pin(0)
    try:
        for payload in reversed(list(payloads)):
            node = jvm.new_instance("ListNode")
            jvm.set_field(node, "payload", payload)
            jvm.set_field(node, "next", head_pin.address)
            head_pin.address = node
            head = node
        return head
    finally:
        jvm.unpin(head_pin)


def read_list(jvm: JVM, head: int):
    out = []
    node = head
    while node:
        out.append(jvm.get_field(node, "payload"))
        node = jvm.get_field(node, "next")
    return out
