"""Driver-side handles: spawning workers and talking to them.

:class:`WorkerHandle` owns a spawned worker *process* (start, port
discovery, kill, reap).  :class:`WorkerClient` owns one framed *connection*
to a worker: registry handshake, graph/blob sends through the chunk
pipeline, and the conversion of every mid-stream failure into the typed
error taxonomy.

Byte accounting: a client constructed with ``account_node=`` routes the
stream bytes each send delivers through
:meth:`repro.net.cluster.Node.account_fetch`, so real-socket transfers
land in the same ``local_bytes_fetched``/``remote_bytes_fetched`` counters
the simulated wire reports (Figure 3(b) stays one code path).
"""

from __future__ import annotations

import itertools
import multiprocessing
import zlib
from typing import Optional, Tuple, Type

from repro import obs
from repro.core.runtime import SkywayRuntime
from repro.core.streams import SkywayObjectOutputStream
from repro.net.cluster import Node
from repro.transport import frames, registry_sync
from repro.transport.connection import FrameConnection, connect_with_retry
from repro.transport.errors import TransportError, WorkerStartupError
from repro.transport.metrics import TransportMetrics
from repro.transport.pipeline import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_QUEUE_CHUNKS,
    ChunkPipeline,
)
from repro.transport.worker import WorkerSpec, worker_main


class WorkerHandle:
    """A spawned worker process and the port it listens on."""

    def __init__(self, spec: WorkerSpec, process, port: int) -> None:
        self.spec = spec
        self.process = process
        self.host = spec.host
        self.port = port

    @classmethod
    def spawn(cls, spec: WorkerSpec, startup_timeout: float = 30.0) -> "WorkerHandle":
        """Start the worker (``multiprocessing.spawn`` — a fresh
        interpreter, like a fresh JVM) and wait for its listening port."""
        ctx = multiprocessing.get_context("spawn")
        parent_pipe, child_pipe = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=worker_main, args=(spec, child_pipe),
            name=f"skyway-worker-{spec.name}", daemon=True,
        )
        process.start()
        child_pipe.close()
        try:
            if not parent_pipe.poll(startup_timeout):
                raise WorkerStartupError(
                    f"worker {spec.name!r} reported no port within "
                    f"{startup_timeout}s"
                )
            status, value = parent_pipe.recv()
        except (EOFError, OSError) as exc:
            process.terminate()
            process.join(timeout=5)
            raise WorkerStartupError(
                f"worker {spec.name!r} died during startup: {exc}"
            ) from exc
        finally:
            parent_pipe.close()
        if status != "ok":
            process.join(timeout=5)
            raise WorkerStartupError(
                f"worker {spec.name!r} failed to start: {value}"
            )
        return cls(spec, process, int(value))

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL — the fault-injection path (worker dies mid-stream)."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5)

    def stop(self, timeout: float = 5.0) -> None:
        """Terminate and reap (fixtures call this; no zombie workers)."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=timeout)


_client_ids = itertools.count(1)


class WorkerClient:
    """One framed connection from a driver runtime to a worker."""

    def __init__(
        self,
        runtime: SkywayRuntime,
        host: str,
        port: int,
        node_name: str = "driver",
        connect_timeout: float = 2.0,
        connect_attempts: int = 1,
        connect_backoff: float = 0.05,
        read_timeout: float = 10.0,
        metrics: Optional[TransportMetrics] = None,
        account_node: Optional[Node] = None,
        account_remote: bool = True,
        connection_cls: Type[FrameConnection] = FrameConnection,
    ) -> None:
        self.runtime = runtime
        self.host = host
        self.port = port
        self.node_name = node_name
        self.metrics = metrics if metrics is not None else TransportMetrics()
        self.account_node = account_node
        self.account_remote = account_remote
        self._connect_timeout = connect_timeout
        self._connect_attempts = connect_attempts
        self._connect_backoff = connect_backoff
        self._read_timeout = read_timeout
        self._connection_cls = connection_cls
        self._conn: Optional[FrameConnection] = None
        #: Names synced by the last HELLO on this connection; None means
        #: no HELLO yet (an empty frozenset would make a driver with an
        #: empty registry skip the handshake entirely and learn nothing
        #: from the worker's extras).
        self._synced_names: Optional[frozenset] = None
        self.peer_name: Optional[str] = None
        self._obs_source: Optional[str] = None

    # -- connection & handshake -------------------------------------------

    def connect(self) -> "WorkerClient":
        with self.metrics.phase("connect"):
            sock = connect_with_retry(
                self.host, self.port,
                connect_timeout=self._connect_timeout,
                attempts=self._connect_attempts,
                backoff=self._connect_backoff,
                metrics=self.metrics,
            )
        self._conn = self._connection_cls(
            sock, read_timeout=self._read_timeout, metrics=self.metrics,
        )
        self._synced_names = None
        self._sync_registry()
        if self._obs_source is None:
            # Feed this connection's wall-clock phase ledger into the obs
            # snapshot; deregistered on close() so nothing outlives the
            # connection.
            self._obs_source = (
                f"transport.{self.node_name}->{self.host}:{self.port}"
                f"#{next(_client_ids)}"
            )
            obs.registry().register_source(
                self._obs_source, self.metrics.as_dict
            )
        return self

    def _require_conn(self) -> FrameConnection:
        if self._conn is None:
            raise TransportError("client is not connected (call connect())")
        return self._conn

    def _sync_registry(self) -> None:
        """HELLO/HELLO_ACK whenever this side knows names it has not yet
        synced — including classes loaded *after* the initial handshake
        (a stream must never carry a tID the worker cannot resolve)."""
        conn = self._require_conn()
        snapshot = self.runtime.view.snapshot()
        if self._synced_names is not None \
                and frozenset(snapshot) == self._synced_names:
            return
        with self.metrics.phase("handshake"):
            conn.send_frame(
                frames.HELLO,
                frames.encode_hello(self.node_name, snapshot),
            )
            peer, extras = frames.decode_hello_ack(
                conn.expect_frame(frames.HELLO_ACK)
            )
            merged = registry_sync.merge_registries(snapshot, extras)
            registry_sync.install_merged(self.runtime, merged)
        self.peer_name = peer
        self._synced_names = frozenset(merged)

    # -- ops ---------------------------------------------------------------

    def _send_trace(self, conn: FrameConnection) -> None:
        """Propagate the driver's trace context (TRACE frame, v2) so the
        worker's spans for the next CALL stitch under the current span.
        Not sent when tracing is disabled — zero wire overhead."""
        if obs.enabled():
            trace_id, span_id = obs.current_context()
            conn.send_frame(frames.TRACE,
                            frames.encode_trace(trace_id, span_id))

    def call_op(self, op: str, **params) -> dict:
        """One plain CALL/RESULT op (no DATA stream), trace-propagated.
        The building block under ping/stats and the fleet control ops."""
        conn = self._require_conn()
        self._send_trace(conn)
        conn.send_frame(
            frames.CALL, frames.encode_json({"op": op, **params})
        )
        return frames.decode_json(
            conn.expect_frame(frames.RESULT), what="RESULT"
        )

    def ping(self, echo=None) -> dict:
        return self.call_op("ping", echo=echo)

    def stats(self) -> dict:
        return self.call_op("stats")

    # -- fleet ops (repro.cluster) ----------------------------------------

    def admit_channel(self, channel_id: int) -> dict:
        """Tell the worker to expect EPOCH frames on ``channel_id`` (the
        coordinator assigned it); required in strict-channels fleet mode."""
        return self.call_op("admit_channel", channel_id=channel_id)

    def put_blob(self, key: str, data: bytes,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> dict:
        """Store opaque bytes under ``key`` on the worker (the fleet's
        shuffle-bucket mirror); the worker answers size + CRC."""
        conn = self._require_conn()
        with obs.span("wire.put_blob", key=key, bytes=len(data),
                      destination=f"{self.host}:{self.port}") as sp:
            self._send_trace(conn)
            conn.send_frame(
                frames.CALL,
                frames.encode_json({"op": "put_blob", "key": key}),
            )
            pipeline = ChunkPipeline(
                conn, chunk_bytes=chunk_bytes, metrics=self.metrics,
            )
            try:
                with self.metrics.phase("traverse+send"):
                    pipeline.feed(data)
                    pipeline.finish(len(data), zlib.crc32(data))
            except TransportError as exc:
                pipeline.abort()
                remote = conn.pending_remote_error()
                if remote is not None:
                    raise remote from exc
                raise
            result = frames.decode_json(
                conn.expect_frame(frames.RESULT), what="RESULT"
            )
            obs.absorb_remote(result, sp)
        if result.get("crc32") != zlib.crc32(data):
            raise TransportError(
                "worker acknowledged a blob with a different CRC"
            )
        if self.account_node is not None:
            self.account_node.account_fetch(
                len(data), remote=self.account_remote
            )
        return result

    def send_peer(self, peer: str, peer_host: str, peer_port: int,
                  channel_id: int, roots) -> dict:
        """Ask *this* worker to clone ``roots`` (addresses on its heap)
        straight into another worker — the peer-to-peer shuffle route."""
        with obs.span("wire.send_peer", peer=peer, channel=channel_id,
                      via=f"{self.host}:{self.port}") as sp:
            result = self.call_op(
                "send_peer", peer=peer, peer_host=peer_host,
                peer_port=peer_port, channel_id=channel_id,
                roots=[int(r) for r in roots],
            )
            obs.absorb_remote(result, sp)
        return result

    def send_blob_peer(self, key: str, peer: str, peer_host: str,
                       peer_port: int) -> dict:
        """Ask this worker to push its stored blob ``key`` to a peer."""
        with obs.span("wire.send_blob_peer", peer=peer, key=key,
                      via=f"{self.host}:{self.port}") as sp:
            result = self.call_op(
                "send_blob_peer", key=key, peer=peer,
                peer_host=peer_host, peer_port=peer_port,
            )
            obs.absorb_remote(result, sp)
        return result

    def begin_graph(
        self,
        retain: bool = False,
        thread_id: int = 0,
        fresh_phase: bool = True,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        queue_chunks: int = DEFAULT_QUEUE_CHUNKS,
        store_and_forward: bool = False,
        throttle_mbps: Optional[float] = None,
    ) -> "GraphSendStream":
        """Open a ``recv_graph`` stream and return a handle the caller
        drives root by root.

        This is the building block under both :meth:`send_graph` (one
        stream, all roots) and the multi-stream parallel send (N clients,
        each with its own ``thread_id``, interleaving roots).  With
        ``fresh_phase=False`` the caller owns the shuffling phase —
        parallel streams must share one ``shuffle_start`` so their baddr
        words carry the same sID and foreign-stream baddrs resolve through
        the §4.2 shared-object crossover instead of being rejected as
        stale.
        """
        conn = self._require_conn()
        self._sync_registry()
        if fresh_phase:
            # Each socket send is its own shuffling phase: bumping the sID
            # invalidates baddr words left in driver-heap objects by
            # earlier sends (including aborted ones) — without this,
            # re-sending a graph emits references into a buffer that no
            # longer exists.
            self.runtime.shuffle_start()
        # The wire span stays open for the whole stream: write_object
        # traversal spans nest under it on this thread, pipeline writer
        # spans parent to it explicitly, and the worker's spans graft
        # under it at finish().
        wire_span = obs.start_span(
            "wire.send_graph", destination=f"{self.host}:{self.port}",
            thread_id=thread_id,
        )
        self._send_trace(conn)
        conn.send_frame(
            frames.CALL,
            frames.encode_json({"op": "recv_graph", "retain": retain}),
        )
        pipeline = ChunkPipeline(
            conn, chunk_bytes=chunk_bytes, queue_chunks=queue_chunks,
            store_and_forward=store_and_forward, throttle_mbps=throttle_mbps,
            metrics=self.metrics,
        )
        out = SkywayObjectOutputStream(
            self.runtime, destination=f"socket:{self.host}:{self.port}",
            thread_id=thread_id, transport=pipeline,
        )
        return GraphSendStream(self, conn, pipeline, out, wire_span)

    def send_graph(
        self,
        roots,
        retain: bool = False,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        queue_chunks: int = DEFAULT_QUEUE_CHUNKS,
        store_and_forward: bool = False,
        throttle_mbps: Optional[float] = None,
    ) -> Tuple[dict, bytes]:
        """Serialize ``roots`` (heap addresses) straight into the chunk
        pipeline and return ``(worker result, framed stream bytes)``.

        The returned bytes are what an in-process ``accept()`` would have
        consumed — callers use them for the byte-identical cross-check.
        """
        stream = self.begin_graph(
            retain=retain, chunk_bytes=chunk_bytes,
            queue_chunks=queue_chunks, store_and_forward=store_and_forward,
            throttle_mbps=throttle_mbps,
        )
        with self.metrics.phase("traverse+send"):
            for root in roots:
                stream.write_object(root)
            return stream.finish()

    def send_blob(
        self,
        data: bytes,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        store_and_forward: bool = False,
    ) -> dict:
        """Ship opaque bytes (the Spark broadcast path) through the same
        chunk pipeline; the worker answers size + CRC."""
        conn = self._require_conn()
        with obs.span("wire.send_blob", bytes=len(data),
                      destination=f"{self.host}:{self.port}") as sp:
            self._send_trace(conn)
            conn.send_frame(frames.CALL,
                            frames.encode_json({"op": "recv_blob"}))
            pipeline = ChunkPipeline(
                conn, chunk_bytes=chunk_bytes,
                store_and_forward=store_and_forward, metrics=self.metrics,
            )
            try:
                with self.metrics.phase("traverse+send"):
                    pipeline.feed(data)
                    pipeline.finish(len(data), zlib.crc32(data))
            except TransportError as exc:
                pipeline.abort()
                remote = conn.pending_remote_error()
                if remote is not None:
                    raise remote from exc
                raise
            result = frames.decode_json(
                conn.expect_frame(frames.RESULT), what="RESULT"
            )
            obs.absorb_remote(result, sp)
        if result.get("crc32") != zlib.crc32(data):
            raise TransportError(
                "worker acknowledged a blob with a different CRC"
            )
        if self.account_node is not None:
            self.account_node.account_fetch(
                len(data), remote=self.account_remote
            )
        return result

    def send_epoch(
        self,
        frame_bytes: bytes,
        channel_id: int,
        epoch: int,
        digest: bool = True,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        queue_chunks: int = DEFAULT_QUEUE_CHUNKS,
        store_and_forward: bool = False,
        throttle_mbps: Optional[float] = None,
    ) -> dict:
        """Ship one already-framed FULL/DELTA epoch to the worker's delta
        endpoint: CALL, an EPOCH frame naming (channel, epoch, kind), then
        the frame bytes as DATA chunks + TRAILER.

        A stale receiver answers ERROR naming ``DeltaStaleError`` — raised
        here as :class:`RemoteWorkerError` with that ``kind`` (the NACK);
        the worker closes the connection afterwards, so recovery is
        reconnect + forced-full resend.
        """
        conn = self._require_conn()
        self._sync_registry()
        kind = frame_bytes[0] if frame_bytes else 0
        with obs.span("wire.send_epoch", channel=channel_id, epoch=epoch,
                      bytes=len(frame_bytes),
                      destination=f"{self.host}:{self.port}") as sp:
            self._send_trace(conn)
            conn.send_frame(
                frames.CALL,
                frames.encode_json({"op": "recv_epoch", "digest": digest}),
            )
            conn.send_frame(
                frames.EPOCH,
                frames.encode_epoch_header(channel_id, epoch, kind),
            )
            pipeline = ChunkPipeline(
                conn, chunk_bytes=chunk_bytes, queue_chunks=queue_chunks,
                store_and_forward=store_and_forward,
                throttle_mbps=throttle_mbps, metrics=self.metrics,
            )
            try:
                with self.metrics.phase("traverse+send"):
                    pipeline.feed(frame_bytes)
                    pipeline.finish(len(frame_bytes),
                                    zlib.crc32(frame_bytes))
            except TransportError as exc:
                pipeline.abort()
                remote = conn.pending_remote_error()
                if remote is not None:
                    raise remote from exc
                raise
            result = frames.decode_json(
                conn.expect_frame(frames.RESULT), what="RESULT"
            )
            obs.absorb_remote(result, sp)
        if self.account_node is not None:
            self.account_node.account_fetch(
                len(frame_bytes), remote=self.account_remote
            )
        return result

    def shutdown_worker(self) -> dict:
        conn = self._require_conn()
        conn.send_frame(frames.CALL, frames.encode_json({"op": "shutdown"}))
        return frames.decode_json(
            conn.expect_frame(frames.RESULT), what="RESULT"
        )

    def close(self) -> None:
        if self._obs_source is not None:
            obs.registry().deregister_source(self._obs_source)
            self._obs_source = None
        if self._conn is None:
            return
        try:
            self._conn.send_frame(frames.BYE)
        except TransportError:
            pass
        self._conn.close()
        self._conn = None

    def __enter__(self) -> "WorkerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class GraphSendStream:
    """One open ``recv_graph`` stream on one connection.

    Drive it with :meth:`write_object` per root, then :meth:`finish` to
    flush the tail, read the worker's RESULT, and account the bytes.  Any
    mid-stream transport failure aborts the pipeline and surfaces the
    worker's ERROR frame if one is pending.
    """

    def __init__(
        self,
        client: "WorkerClient",
        conn: FrameConnection,
        pipeline: ChunkPipeline,
        out: SkywayObjectOutputStream,
        wire_span=None,
    ) -> None:
        self._client = client
        self._conn = conn
        self._pipeline = pipeline
        self._out = out
        self._done = False
        self._wire_span = wire_span

    @property
    def thread_id(self) -> int:
        return self._out.sender.thread_id

    @property
    def objects_sent(self) -> int:
        return self._out.sender.objects_sent

    def write_object(self, root: int) -> int:
        """Traverse-and-stream one root; returns its stream offset."""
        try:
            return self._out.write_object(root)
        except TransportError as exc:
            self._fail(exc)

    def finish(self) -> Tuple[dict, bytes]:
        """Close the stream and return ``(worker result, framed bytes)``."""
        if self._done:
            raise TransportError("finish() called twice on a graph stream")
        self._done = True
        try:
            data = self._out.close()
        except TransportError as exc:
            self._fail(exc)
        result = frames.decode_json(
            self._conn.expect_frame(frames.RESULT), what="RESULT"
        )
        if self._wire_span is not None:
            self._wire_span.set(stream_bytes=len(data))
            obs.absorb_remote(result, self._wire_span)
            obs.end_span(self._wire_span)
            self._wire_span = None
        client = self._client
        if client.account_node is not None:
            client.account_node.account_fetch(
                len(data), remote=client.account_remote
            )
        return result, data

    def abort(self) -> None:
        """Tear down the writer without a TRAILER (stream abandoned)."""
        self._done = True
        self._pipeline.abort()
        self._end_wire_span(error="aborted")

    def _end_wire_span(self, **attrs) -> None:
        if self._wire_span is not None:
            self._wire_span.set(**attrs)
            obs.end_span(self._wire_span)
            self._wire_span = None

    def _fail(self, exc: TransportError) -> None:
        self._done = True
        self._pipeline.abort()
        self._end_wire_span(error=type(exc).__name__)
        remote = self._conn.pending_remote_error()
        if remote is not None:
            raise remote from exc
        raise exc
