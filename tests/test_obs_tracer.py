"""Tracer semantics: the no-op fast path, span nesting, the dual clocks,
per-thread draining, and cross-process grafting."""

import threading

import pytest

from repro import obs
from repro.obs.tracer import NOOP_SPAN, Tracer
from repro.simtime import SimClock


class TestDisabledFastPath:
    def test_span_returns_the_shared_noop(self):
        assert obs.span("anything") is NOOP_SPAN
        assert obs.span("other", clock=object(), wire_bytes=5) is NOOP_SPAN

    def test_noop_span_is_a_context_manager_with_set(self):
        with obs.span("region") as sp:
            assert sp.set(bytes=1) is sp
        assert obs.start_span("region") is None
        obs.end_span(None)  # must not raise

    def test_current_context_is_empty(self):
        assert obs.current_context() == ("", "")

    def test_absorb_remote_leaves_result_alone(self):
        result = {"trace": {"spans": []}, "op": "ping"}
        obs.absorb_remote(result)
        assert "trace" in result


class TestEnableDisable:
    def test_enable_is_idempotent(self):
        t1 = obs.enable("driver")
        assert obs.enable("driver") is t1
        assert obs.enabled()

    def test_enable_repoints_trace_id(self):
        tracer = obs.enable("worker:w0")
        obs.enable("worker:w0", trace_id="cafe0001")
        assert tracer.trace_id == "cafe0001"

    def test_reset_detaches_tracer_and_registry(self):
        obs.enable()
        with obs.span("x"):
            pass
        obs.registry().counter("c")
        obs.reset()
        assert not obs.enabled()
        snap = obs.registry().snapshot()
        assert snap["counters"] == {}
        assert snap["sources"] == {}


class TestSpans:
    def test_nesting_sets_parent_ids(self):
        tracer = obs.enable()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        outer_s, inner_s = tracer.spans()
        assert outer_s.parent_id is None
        assert outer_s.closed and inner_s.closed
        assert {s.trace_id for s in (outer_s, inner_s)} == {tracer.trace_id}

    def test_sim_clock_delta_recorded(self):
        tracer = obs.enable()
        clock = SimClock("t")
        with obs.span("charged", clock=clock):
            clock.charge(0.25)
        (span,) = tracer.spans()
        assert span.sim_duration_us == pytest.approx(0.25e6)
        assert span.duration_us >= 0

    def test_exception_marks_error_attr(self):
        tracer = obs.enable()
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.closed
        assert span.attrs["error"] == "ValueError"

    def test_current_context_names_innermost_span(self):
        tracer = obs.enable()
        with obs.span("outer"), obs.span("inner") as inner:
            assert obs.current_context() == (tracer.trace_id, inner.span_id)
        assert obs.current_context() == (tracer.trace_id, "")

    def test_finish_is_idempotent(self):
        tracer = obs.enable()
        span = tracer.start("once")
        end = tracer.finish(span).end_us
        assert tracer.finish(span).end_us == end

    def test_span_ids_unique_across_threads(self):
        tracer = obs.enable()

        def work():
            for _ in range(50):
                with obs.span("t"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = [s.span_id for s in tracer.spans()]
        assert len(ids) == len(set(ids)) == 200

    def test_adopt_remote_parents_root_spans(self):
        tracer = obs.enable()
        tracer.adopt_remote("feed00000001")
        with obs.span("op") as sp:
            assert sp.parent_id == "feed00000001"
            with obs.span("nested") as nested:
                assert nested.parent_id == sp.span_id
        tracer.clear_remote()
        with obs.span("after") as after:
            assert after.parent_id is None


class TestDrainAndGraft:
    def test_drain_removes_only_this_threads_spans(self):
        tracer = obs.enable()
        mark = tracer.mark()
        with obs.span("mine"):
            pass

        def other():
            with obs.span("theirs"):
                pass

        t = threading.Thread(target=other)
        t.start()
        t.join()
        drained = tracer.drain(mark)
        assert [s.name for s in drained] == ["mine"]
        assert [s.name for s in tracer.spans()] == ["theirs"]

    def test_graft_rebases_skewed_clocks_into_parent(self):
        driver = Tracer(process="driver")
        worker = Tracer(process="worker:w0", trace_id=driver.trace_id)
        parent = driver.start("wire.send")
        remote = worker.start("worker.op")
        worker.finish(remote)
        payload = worker.export_payload(worker.spans())
        payload["now_us"] += 3_600e6  # worker clock an hour ahead
        (grafted,) = driver.graft(payload, parent=parent)
        driver.finish(parent)
        assert grafted.process == "worker:w0"
        assert grafted.trace_id == driver.trace_id
        assert grafted.start_us >= parent.start_us
        assert grafted.end_us <= parent.end_us
        assert grafted in driver.spans()

    def test_absorb_remote_pops_payload(self):
        tracer = obs.enable()
        worker = Tracer(process="worker:w0", trace_id=tracer.trace_id)
        with worker.span("worker.op"):
            pass
        with obs.span("wire") as wire:
            result = {"trace": worker.export_payload(worker.spans())}
            obs.absorb_remote(result, wire)
        assert "trace" not in result
        names = {s.name: s for s in tracer.spans()}
        assert names["worker.op"].process == "worker:w0"
