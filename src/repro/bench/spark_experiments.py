"""Spark experiment runners: Figure 3, Figure 8(a), Table 2 (paper §2.2, §5.2)."""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps import connected_components, page_rank, triangle_count, word_count
from repro.core.adapter import SkywaySerializer
from repro.core.runtime import attach_skyway
from repro.datasets import GRAPH_PROFILES, generate_graph, generate_text_corpus
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.serial import JavaSerializer, KryoSerializer
from repro.simtime import Breakdown
from repro.spark.context import SparkConfig, SparkContext
from repro.spark.metrics import measure_job
from repro.types.corelib import standard_classpath

#: The paper's four analytical tasks (§5.2).
SPARK_APPS = ("WC", "CC", "PR", "TC")
SPARK_GRAPHS = ("LJ", "OR", "UK", "TW")
SERIALIZERS = ("java", "kryo", "skyway")


@dataclasses.dataclass(frozen=True)
class SparkRunResult:
    app: str
    graph: str
    serializer: str
    breakdown: Breakdown
    result_digest: object


def _make_context(serializer_name: str, workers: int,
                  partitions: int) -> SparkContext:
    classpath = standard_classpath()
    cluster = Cluster(lambda name: JVM(name, classpath=classpath),
                      worker_count=workers)
    if serializer_name == "java":
        serializer = JavaSerializer()
    elif serializer_name == "kryo":
        serializer = KryoSerializer(registration_required=False)
    elif serializer_name == "skyway":
        attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                      cluster=cluster)
        serializer = SkywaySerializer()
    else:
        raise ValueError(serializer_name)
    return SparkContext(cluster, serializer, default_parallelism=partitions)


def _run_app(sc: SparkContext, app: str, graph_key: str, scale: float,
             pr_iterations: int) -> object:
    if app == "WC":
        profile = GRAPH_PROFILES[graph_key]
        lines = generate_text_corpus(
            lines=max(40, int(profile.edges * scale) // 4),
            words_per_line=8,
        )
        return len(word_count(sc, lines))
    edges = generate_graph(GRAPH_PROFILES[graph_key], scale=scale)
    if app == "PR":
        ranks = page_rank(sc, edges, iterations=pr_iterations)
        return round(sum(ranks.values()), 3)
    if app == "CC":
        return len(set(connected_components(sc, edges).values()))
    if app == "TC":
        return triangle_count(sc, edges)
    raise ValueError(app)


def run_spark_app(
    app: str,
    graph_key: str,
    serializer_name: str,
    scale: float = 0.05,
    workers: int = 3,
    partitions: int = 4,
    pr_iterations: int = 3,
) -> SparkRunResult:
    """One cell of Figure 8(a): (app, graph, serializer) -> breakdown.

    ``scale`` further reduces the generated graphs (1.0 = the documented
    per-profile scale-down); identical across serializers, so normalized
    comparisons match the paper's methodology.
    """
    sc = _make_context(serializer_name, workers, partitions)
    digest_holder: List[object] = []

    def job():
        digest_holder.append(_run_app(sc, app, graph_key, scale, pr_iterations))

    _, metrics = measure_job(
        sc.cluster, job, shuffle_bytes_source=lambda: sc.shuffle.bytes_shuffled
    )
    return SparkRunResult(
        app=app, graph=graph_key, serializer=serializer_name,
        breakdown=metrics.breakdown, result_digest=digest_holder[0],
    )


def run_figure3(
    scale: float = 0.05, workers: int = 3, partitions: int = 4
) -> Dict[str, SparkRunResult]:
    """Figure 3: TriangleCounting over LiveJournal, Java vs Kryo — the
    motivation experiment (performance breakdown + bytes shuffled)."""
    return {
        name: run_spark_app("TC", "LJ", name, scale=scale, workers=workers,
                            partitions=partitions)
        for name in ("kryo", "java")
    }


def run_figure8a(
    scale: float = 0.03,
    apps: Tuple[str, ...] = SPARK_APPS,
    graphs: Tuple[str, ...] = SPARK_GRAPHS,
    serializers: Tuple[str, ...] = SERIALIZERS,
    workers: int = 3,
    partitions: int = 4,
    pr_iterations: int = 3,
) -> Dict[Tuple[str, str, str], SparkRunResult]:
    """Figure 8(a): every (app, graph, serializer) combination."""
    results: Dict[Tuple[str, str, str], SparkRunResult] = {}
    for app in apps:
        for graph in graphs:
            for serializer in serializers:
                results[(app, graph, serializer)] = run_spark_app(
                    app, graph, serializer, scale=scale, workers=workers,
                    partitions=partitions, pr_iterations=pr_iterations,
                )
    return results


def summarize_table2(
    results: Dict[Tuple[str, str, str], SparkRunResult],
) -> Dict[str, List[Dict[str, float]]]:
    """Table 2: per (app, graph) pair, Kryo and Skyway normalized to the
    Java-serializer baseline; returns the per-system normalized rows
    (ranges/geomeans are computed by the report renderer)."""
    combos = sorted({(r.app, r.graph) for r in results.values()})
    out: Dict[str, List[Dict[str, float]]] = {"Kryo": [], "Skyway": []}
    for app, graph in combos:
        base = results.get((app, graph, "java"))
        if base is None:
            continue
        for system, key in (("Kryo", "kryo"), ("Skyway", "skyway")):
            run = results.get((app, graph, key))
            if run is not None:
                out[system].append(run.breakdown.normalized_to(base.breakdown))
    return out


def check_results_agree(
    results: Dict[Tuple[str, str, str], SparkRunResult],
) -> List[Tuple[str, str]]:
    """Sanity check: all serializers must compute identical app results.
    Returns the (app, graph) combos that disagree (should be empty)."""
    bad = []
    combos = {(r.app, r.graph) for r in results.values()}
    for app, graph in combos:
        digests = {
            r.serializer: r.result_digest
            for r in results.values()
            if r.app == app and r.graph == graph
        }
        if len(set(map(repr, digests.values()))) > 1:
            bad.append((app, graph))
    return bad
