"""Property-based tests on the buffer pair: relativize/absolutize are exact
inverses under random object sizes, chunk sizes, and flush patterns."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.input_buffer import InputBuffer
from repro.core.output_buffer import LOGICAL_BASE, OutputBuffer
from repro.heap.layout import OBJECT_ALIGNMENT, align_up
from repro.jvm.jvm import JVM
from repro.types.corelib import standard_classpath

_SETTINGS = settings(max_examples=40, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


class TestOutputBufferProperties:
    @_SETTINGS
    @given(sizes=st.lists(st.integers(min_value=24, max_value=400),
                          min_size=1, max_size=40),
           capacity=st.integers(min_value=64, max_value=2048))
    def test_logical_space_is_dense_and_aligned(self, sizes, capacity):
        buf = OutputBuffer("d", capacity=capacity, sink=lambda s: None)
        expected = LOGICAL_BASE
        for size in sizes:
            addr = buf.reserve(size)
            assert addr == expected
            assert addr % OBJECT_ALIGNMENT == 0
            expected += align_up(size, OBJECT_ALIGNMENT)
        assert buf.logical_size == expected - LOGICAL_BASE

    @_SETTINGS
    @given(sizes=st.lists(st.integers(min_value=24, max_value=300),
                          min_size=1, max_size=30),
           capacity=st.integers(min_value=512, max_value=4096))
    def test_segments_concatenate_to_logical_image(self, sizes, capacity):
        segments = []
        buf = OutputBuffer("d", capacity=capacity, sink=segments.append)
        payloads = []
        for i, size in enumerate(sizes):
            aligned = align_up(size, OBJECT_ALIGNMENT)
            payload = bytes([i % 251]) * aligned
            addr = buf.reserve(size)
            buf.write_object(addr, payload)
            payloads.append(payload)
        buf.flush()
        assert b"".join(segments) == b"".join(payloads)


class TestPlacementTranslationInverse:
    @_SETTINGS
    @given(lengths=st.lists(st.integers(min_value=0, max_value=200),
                            min_size=1, max_size=25),
           chunk_size=st.integers(min_value=256, max_value=4096))
    def test_translate_inverts_placement(self, lengths, chunk_size):
        """Placing sender-ordered objects then translating each object's
        logical address yields exactly its physical placement address."""
        jvm = JVM("buf-prop", classpath=standard_classpath(),
                  old_bytes=8 * 1024 * 1024)
        long_array = jvm.loader.load("[J")
        buffer = InputBuffer(jvm.heap, chunk_size=chunk_size)

        logical = LOGICAL_BASE
        expected = []  # (logical address, physical address)
        for length in lengths:
            size = long_array.object_size(length)
            # Fabricate the wire image of a long[length] object.
            payload = bytearray(size)
            payload[8:16] = (long_array.klass_id or 0).to_bytes(8, "little")
            payload[jvm.layout.array_length_offset:
                    jvm.layout.array_length_offset + 4] = \
                length.to_bytes(4, "little")
            physical = buffer.place(bytes(payload))
            expected.append((logical, physical))
            logical += align_up(size, OBJECT_ALIGNMENT)

        buffer.freeze()
        for logical_addr, physical_addr in expected:
            assert buffer.translate(logical_addr) == physical_addr

    @_SETTINGS
    @given(lengths=st.lists(st.integers(min_value=0, max_value=50),
                            min_size=2, max_size=15))
    def test_interior_offsets_translate_too(self, lengths):
        """Relative addresses inside an object (never produced by the
        sender, but exercised for the arithmetic) map into the same
        object's body."""
        jvm = JVM("buf-prop2", classpath=standard_classpath(),
                  old_bytes=8 * 1024 * 1024)
        long_array = jvm.loader.load("[J")
        buffer = InputBuffer(jvm.heap, chunk_size=512)
        placements = []
        logical = LOGICAL_BASE
        for length in lengths:
            size = long_array.object_size(length)
            payload = bytearray(size)
            payload[8:16] = (long_array.klass_id or 0).to_bytes(8, "little")
            payload[jvm.layout.array_length_offset:
                    jvm.layout.array_length_offset + 4] = \
                length.to_bytes(4, "little")
            phys = buffer.place(bytes(payload))
            placements.append((logical, phys, size))
            logical += align_up(size, OBJECT_ALIGNMENT)
        buffer.freeze()
        for logical_addr, phys, size in placements:
            probe = min(size - 8, 8)
            assert buffer.translate(logical_addr + probe) == phys + probe
