"""Skyway output buffers (paper §3.2, §4.2).

One output buffer exists per destination per sending thread, in *native*
(off-heap) memory — "they will not interfere with the GC, which could
reclaim data objects before they are sent if these buffers were in the
managed heap."  Objects are bump-committed at logical addresses; when the
physical buffer fills, its content is *flushed* (streamed) to the sink and
the buffer reused, with ``flushed_bytes`` tracking what left the buffer so
logical addresses keep growing monotonically (Algorithm 2's
``addr - ob.flushedBytes``).

The physical window is a fixed-size ``bytearray`` *segment* checked out of
a process-wide :class:`SegmentArena` and returned on :meth:`clear` (i.e. at
``shuffleStart``), so steady-state sending allocates no buffer memory.  The
clone fast path (:meth:`begin_clone`) hands the caller the raw segment and
a write offset, letting kernels copy an object image straight from the
heap's ``memoryview`` into the outgoing segment — one copy, no intermediate
``bytearray``/``bytes`` round-trips.  :meth:`write_object` (the interpreted
path) is a thin wrapper over the same primitive and keeps its historical
eager-flush timing.

Logical address 0 is reserved for null references; the logical space
therefore starts at one word.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.heap.layout import OBJECT_ALIGNMENT, WORD, align_up

#: First logical address handed out (0 encodes null on the wire).
LOGICAL_BASE = WORD

FlushSink = Callable[[bytes], None]


class SegmentArena:
    """A pool of reusable output-buffer segments, keyed by capacity.

    Buffers check segments out lazily and return them on :meth:`clear`
    (the shuffle-phase boundary), so consecutive phases — and the N
    per-thread buffers of a multi-stream send — recycle the same handful
    of ``bytearray`` windows instead of reallocating them.
    """

    #: At most this many idle segments are retained per capacity class.
    MAX_POOLED = 32

    def __init__(self) -> None:
        self._pools: Dict[int, List[bytearray]] = {}

    def acquire(self, capacity: int) -> bytearray:
        """A segment of exactly ``capacity`` bytes (contents are stale —
        callers must overwrite every byte they later emit)."""
        pool = self._pools.get(capacity)
        if pool:
            return pool.pop()
        return bytearray(capacity)

    def release(self, segment: bytearray) -> None:
        pool = self._pools.setdefault(len(segment), [])
        if len(pool) < self.MAX_POOLED:
            pool.append(segment)

    def pooled_segments(self) -> int:
        return sum(len(p) for p in self._pools.values())


#: Process-wide default arena shared by all output buffers.
_DEFAULT_ARENA = SegmentArena()


def default_arena() -> SegmentArena:
    return _DEFAULT_ARENA


class OutputBuffer:
    """A per-destination, per-thread native output buffer."""

    def __init__(
        self,
        destination: str,
        capacity: int = 256 * 1024,
        sink: Optional[FlushSink] = None,
        arena: Optional[SegmentArena] = None,
    ) -> None:
        if capacity < 64:
            raise ValueError("output buffer capacity too small")
        self.destination = destination
        self.capacity = capacity
        self._arena = arena if arena is not None else _DEFAULT_ARENA
        #: Current physical segment (checked out lazily) and its fill level.
        self._seg: Optional[bytearray] = None
        self._fill = 0
        #: Whether ``_seg`` belongs to the arena (oversized one-offs don't).
        self._seg_pooled = False
        #: Next logical address to hand out (paper: ob.allocableAddr).
        self.allocable_addr = LOGICAL_BASE
        #: Logical bytes already streamed out (paper: ob.flushedBytes).
        self.flushed_bytes = LOGICAL_BASE
        self._sink = sink
        self._pending_segments: List[bytes] = []
        self.flush_count = 0

    # -- allocation -------------------------------------------------------------

    def reserve(self, size: int) -> int:
        """Claim ``size`` bytes at the next logical address (pre-announced
        during traversal, before the object is actually cloned)."""
        aligned = align_up(size, OBJECT_ALIGNMENT)
        addr = self.allocable_addr
        self.allocable_addr += aligned
        return addr
    # -- cloning ----------------------------------------------------------------

    def begin_clone(self, logical_addr: int, size: int) -> Tuple[bytearray, int]:
        """Open a ``size``-byte clone window at ``logical_addr`` and return
        ``(segment, offset)`` for the caller to fill in place (Algorithm 2's
        CLONEINBUFFER, minus the copy).  Flushes first if the object would
        overflow the physical segment; objects larger than the whole buffer
        get a one-off segment that streams through on the next flush.

        The caller must overwrite all ``size`` bytes at ``offset`` — the
        segment is recycled between flushes and carries stale content.
        """
        if logical_addr < self.flushed_bytes:
            raise ValueError(
                f"logical address {logical_addr} was already flushed"
            )
        offset = logical_addr - self.flushed_bytes
        seg = self._seg
        if seg is not None and offset < self._fill:
            # Out-of-order completion within the resident window (can
            # happen for padding differences) — plain in-place write.
            end = offset + size
            if end > len(seg):
                seg.extend(bytes(end - len(seg)))
                self._seg_pooled = False  # grown: no longer capacity-sized
            if end > self._fill:
                self._fill = end
            return seg, offset
        if seg is None or offset + size > len(seg):
            self.flush()
            offset = logical_addr - self.flushed_bytes
            seg = self._checkout(offset + size)
        if offset > self._fill:
            # Alignment gap: zero explicitly, the segment is recycled.
            seg[self._fill : offset] = bytes(offset - self._fill)
        end = offset + size
        if end > self._fill:
            self._fill = end
        return seg, offset

    def write_object(self, logical_addr: int, payload: bytes) -> None:
        """Clone object bytes at ``logical_addr`` (the interpreted path).
        Flushes first if the object would overflow the physical buffer;
        objects larger than the whole buffer stream through in one
        oversized segment."""
        seg, offset = self.begin_clone(logical_addr, len(payload))
        seg[offset : offset + len(payload)] = payload
        if self._fill >= self.capacity:
            self.flush()

    def patch_word(self, logical_addr: int, value: int) -> bool:
        """Rewrite one word if it is still resident; returns False if that
        region was already flushed (the caller must have relativized it
        before commit — this is why Algorithm 2 fills references when the
        *referencing* object is cloned, not later)."""
        offset = logical_addr - self.flushed_bytes
        if offset < 0:
            return False
        if offset + WORD > self._fill or self._seg is None:
            return False
        self._seg[offset : offset + WORD] = (value & (2**64 - 1)).to_bytes(
            8, "little"
        )
        return True

    def _checkout(self, min_size: int) -> bytearray:
        """Attach a fresh physical segment sized for ``min_size`` bytes."""
        if min_size <= self.capacity:
            seg = self._arena.acquire(self.capacity)
            self._seg_pooled = True
        else:
            seg = bytearray(min_size)
            self._seg_pooled = False
        self._seg = seg
        self._fill = 0
        return seg

    def _recycle(self) -> None:
        if self._seg is not None and self._seg_pooled:
            self._arena.release(self._seg)
        self._seg = None
        self._seg_pooled = False
        self._fill = 0

    # -- streaming ------------------------------------------------------------

    def flush(self) -> None:
        """Stream the resident bytes to the sink and reset the window."""
        if not self._fill or self._seg is None:
            return
        segment = bytes(memoryview(self._seg)[: self._fill])
        self.flushed_bytes += self._fill
        self._recycle()
        self.flush_count += 1
        if self._sink is not None:
            self._sink(segment)
        else:
            self._pending_segments.append(segment)

    def drain_segments(self) -> List[bytes]:
        """Segments accumulated while no sink was attached."""
        out, self._pending_segments = self._pending_segments, []
        return out

    def set_sink(self, sink: FlushSink) -> None:
        self._sink = sink
        for segment in self.drain_segments():
            sink(segment)

    @property
    def resident_bytes(self) -> int:
        return self._fill

    @property
    def logical_size(self) -> int:
        """Total logical bytes committed so far (excludes the null word)."""
        return self.allocable_addr - LOGICAL_BASE

    def clear(self) -> None:
        """Reset for a new shuffle phase (paper: buffers are cleared after
        their objects are sent / at shuffleStart).  Returns the physical
        segment to the arena for the next phase's buffers."""
        self._recycle()
        self._pending_segments = []
        self.allocable_addr = LOGICAL_BASE
        self.flushed_bytes = LOGICAL_BASE
