"""The exchange layer on its socket substrate, against live worker
processes: cross-substrate frame/digest parity, the worker-restart NACK
recovery, the typed staleness error on a replayed epoch, and
``Exchange.parallel_send`` with merged wire metrics."""

import pytest

from repro.exchange import (
    ChannelCapabilities,
    Exchange,
    LoopbackGraphChannel,
    SocketGraphChannel,
)
from repro.core.runtime import SkywayRuntime
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.transport import WorkerClient, WorkerHandle, WorkerSpec
from repro.transport.errors import RemoteWorkerError
from repro.transport.testing import SAMPLE_FACTORY, sample_worker_classpath

from tests.conftest import make_list, sample_classpath

DELTA_REQUEST = ChannelCapabilities(kernel=True, delta=True)


def _loopback_receiver(driver, tag):
    jvm = JVM(f"parity-recv-{tag}", classpath=sample_worker_classpath())
    return SkywayRuntime(jvm, driver.driver_registry, is_driver=False)


def test_frame_and_digest_parity_across_substrates(
    spawned_worker, transport_driver
):
    """With pinned channel ids and one sender heap, the loopback and
    socket channels must frame byte-identical epochs (FULL and DELTA) and
    their receivers must agree digest-wise."""
    driver = transport_driver
    head = make_list(driver.jvm, range(30))
    pin = driver.jvm.pin(head)
    client = WorkerClient(
        driver, spawned_worker.host, spawned_worker.port,
    ).connect()
    loop = LoopbackGraphChannel(
        driver, destination="parity", requested=DELTA_REQUEST,
        receiver_runtime=_loopback_receiver(driver, "a"), channel_id=7101,
    )
    sock = SocketGraphChannel(
        driver, client, requested=DELTA_REQUEST, channel_id=7101,
        destination="parity",
    )
    try:
        first = {"loop": loop.send([head], digest=True),
                 "sock": sock.send([head], digest=True)}
        assert first["loop"].mode == first["sock"].mode == "full"
        assert first["loop"].frame == first["sock"].frame
        assert first["loop"].digest == first["sock"].digest is not None

        driver.jvm.set_field(head, "payload", 4242)
        second = {"loop": loop.send([head], digest=True),
                  "sock": sock.send([head], digest=True)}
        assert second["loop"].mode == second["sock"].mode == "delta"
        assert second["loop"].frame == second["sock"].frame
        assert second["loop"].digest == second["sock"].digest is not None
        assert second["loop"].digest != first["loop"].digest

        socket_metrics = sock.metrics().as_dict()
        assert socket_metrics["substrate"] == "socket"
        assert socket_metrics["transport"] is not None  # wire counters
    finally:
        loop.close()
        sock.close()
        client.close()
        driver.jvm.unpin(pin)


def test_worker_restart_converges_through_forced_full(transport_driver):
    """A restarted worker has no epoch state: the next delta draws the
    staleness NACK and one ``send()`` recovers with a forced FULL, after
    which the channel goes back to shipping deltas."""
    driver = transport_driver
    head = make_list(driver.jvm, range(25))
    pin = driver.jvm.pin(head)
    spec = WorkerSpec(name="restart-worker", classpath_factory=SAMPLE_FACTORY)
    handle = WorkerHandle.spawn(spec)
    client = WorkerClient(driver, handle.host, handle.port).connect()
    channel = SocketGraphChannel(
        driver, client, requested=DELTA_REQUEST, destination="restart",
    )
    try:
        assert channel.send([head]).mode == "full"
        driver.jvm.set_field(head, "payload", 1)
        assert channel.send([head]).mode == "delta"

        handle.stop()
        handle = WorkerHandle.spawn(spec)
        replacement = WorkerClient(driver, handle.host, handle.port).connect()
        client.close()
        client = replacement
        channel.rebind(replacement)

        driver.jvm.set_field(head, "payload", 2)
        receipt = channel.send([head], digest=True)
        assert receipt.nack_recovered
        assert receipt.mode == "full"
        assert receipt.digest is not None
        assert channel.nack_recoveries == 1

        driver.jvm.set_field(head, "payload", 3)
        after = channel.send([head])
        assert after.mode == "delta" and not after.nack_recovered
    finally:
        channel.close()
        client.close()
        handle.stop()
        driver.jvm.unpin(pin)


def test_replayed_delta_epoch_draws_typed_nack(
    spawned_worker, transport_driver
):
    """Re-shipping an epoch the worker already applied is a staleness
    error with a *named* kind — the NACK the channel's recovery keys on —
    not a generic failure."""
    driver = transport_driver
    head = make_list(driver.jvm, range(10))
    pin = driver.jvm.pin(head)
    client = WorkerClient(
        driver, spawned_worker.host, spawned_worker.port,
    ).connect()
    channel = SocketGraphChannel(
        driver, client, requested=DELTA_REQUEST, destination="replay",
    )
    try:
        channel.send([head])
        driver.jvm.set_field(head, "payload", 9)
        receipt = channel.send([head])
        assert receipt.mode == "delta"
        with pytest.raises(RemoteWorkerError) as excinfo:
            client.send_epoch(receipt.frame, channel.channel_id,
                              channel.epoch)
        assert excinfo.value.kind == "DeltaStaleError"
    finally:
        channel.close()
        client.close()
        driver.jvm.unpin(pin)


def test_exchange_parallel_send_merges_wire_metrics(
    spawned_worker, transport_driver
):
    """``Exchange.parallel_send`` on the socket substrate shards roots
    over real connections and the report carries merged wire counters."""
    cluster = Cluster(
        lambda name: JVM(name, classpath=sample_classpath()), worker_count=1,
    )
    client = WorkerClient(
        transport_driver, spawned_worker.host, spawned_worker.port,
    ).connect()
    exchange = Exchange.socket(cluster, {"worker-0": client})
    try:
        roots = [make_list(transport_driver.jvm, range(6))
                 for _ in range(4)]
        report = exchange.parallel_send("worker-0", roots, streams=2)
        assert len(report.streams) == 2
        assert sum(s.roots for s in report.streams) == 4
        assert report.transport is not None
        merged = report.transport.as_dict()
        assert merged["bytes_sent"] > 0
        assert report.as_dict()["transport"] == merged
    finally:
        exchange.close()  # also closes the registered client
