"""Tests for receiver-side delta apply (patch-in-place + GC re-marking)."""

import pytest

from repro.core.runtime import attach_skyway
from repro.delta import DeltaReceiveEndpoint, DeltaSendChannel
from repro.delta.apply import DeltaApplyError
from repro.delta.wire import DeltaFrame, parse_frame
from repro.heap.verify import verify_heap
from repro.jvm.jvm import JVM

from tests.conftest import make_list, read_list


@pytest.fixture
def pair(classpath):
    src = JVM("apply-src", classpath=classpath)
    dst = JVM("apply-dst", classpath=classpath,
              young_bytes=64 * 1024, old_bytes=4 * 1024 * 1024)
    attach_skyway(src, [dst])
    return src, dst


@pytest.fixture
def session(pair):
    """A channel with one full epoch already applied on the receiver."""
    src, dst = pair
    channel = DeltaSendChannel(src.skyway, "dst")
    endpoint = DeltaReceiveEndpoint.for_runtime(dst.skyway)
    head = src.pin(make_list(src, list(range(50))))
    roots = endpoint.receive(channel.send([head.address]))
    return src, dst, channel, endpoint, head, roots


class TestPatchInPlace:
    def test_patched_values_visible(self, session):
        src, dst, channel, endpoint, head, roots = session
        src.set_field(head.address, "payload", 777)
        new_roots = endpoint.receive(channel.send([head.address]))
        assert read_list(dst, new_roots[0]) == [777] + list(range(1, 50))

    def test_patch_preserves_receiver_address(self, session):
        src, dst, channel, endpoint, head, roots = session
        src.set_field(head.address, "payload", 1)
        new_roots = endpoint.receive(channel.send([head.address]))
        assert new_roots[0] == roots[0]

    def test_new_objects_append_to_retained_buffer(self, session):
        src, dst, channel, endpoint, head, roots = session
        retained = dst.skyway.retained_input_bytes()
        fresh = src.new_instance("ListNode")
        src.set_field(fresh, "payload", -1)
        src.set_field(fresh, "next", head.address)
        new_roots = endpoint.receive(channel.send([fresh]))
        assert read_list(dst, new_roots[0]) == [-1] + list(range(50))
        assert dst.skyway.retained_input_buffers == 1
        assert dst.skyway.retained_input_bytes() > retained

    def test_apply_result_accounting(self, session):
        src, dst, channel, endpoint, head, roots = session
        src.set_field(head.address, "payload", 5)
        endpoint.receive(channel.send([head.address]))
        result = endpoint.state_of(channel.channel_id).last_apply
        assert result.patched_objects >= 1
        assert result.new_objects == 0
        assert result.cards_marked_bytes > 0


class TestGCIntegration:
    def test_apply_remarks_gc_card_table(self, session):
        """Paper §4.3 per epoch: every patched/appended span is re-marked
        in the receiver's old-generation card table."""
        src, dst, channel, endpoint, head, roots = session
        dst.heap.card_table.clear()
        src.set_field(head.address, "payload", 123)
        new_roots = endpoint.receive(channel.send([head.address]))
        assert dst.heap.card_table.is_dirty(new_roots[0])

    def test_scavenge_after_delta_apply_heap_verifies(self, session):
        """The acceptance test: a minor collection right after a delta
        apply must leave a verifiable heap and intact data."""
        src, dst, channel, endpoint, head, roots = session
        src.set_field(head.address, "payload", 31337)
        fresh = src.new_instance("ListNode")
        src.set_field(fresh, "payload", -7)
        src.set_field(fresh, "next", head.address)
        new_roots = endpoint.receive(channel.send([fresh]))

        # Allocate young garbage, then scavenge.
        for i in range(50):
            make_list(dst, range(5))
        dst.gc.minor()

        verify_heap(dst.heap)
        assert read_list(dst, new_roots[0]) == [-7, 31337] + list(range(1, 50))

    def test_full_gc_after_apply_keeps_retained_graph(self, session):
        src, dst, channel, endpoint, head, roots = session
        src.set_field(head.address, "payload", 9)
        new_roots = endpoint.receive(channel.send([head.address]))
        dst.gc.full()
        verify_heap(dst.heap)
        assert read_list(dst, new_roots[0])[0] == 9


class TestApplyErrors:
    def _delta_frame(self, session) -> DeltaFrame:
        src, dst, channel, endpoint, head, roots = session
        src.set_field(head.address, "payload", 4)
        frame = parse_frame(channel.send([head.address]))
        assert isinstance(frame, DeltaFrame)
        return frame

    def test_wrong_base_logical_end_rejected(self, session):
        src, dst, channel, endpoint, head, roots = session
        frame = self._delta_frame(session)
        frame.base_logical_end += 8
        applier = endpoint.state_of(channel.channel_id).applier
        with pytest.raises(DeltaApplyError):
            applier.apply(frame)

    def test_new_record_offset_gap_rejected(self, session):
        src, dst, channel, endpoint, head, roots = session
        fresh = src.new_instance("ListNode")
        src.set_field(fresh, "next", head.address)
        frame = parse_frame(channel.send([fresh]))
        new_records = [r for r in frame.records if r.tag == 2]
        assert new_records
        new_records[0].offset += 8  # tear a hole in the append sequence
        applier = endpoint.state_of(channel.channel_id).applier
        with pytest.raises(DeltaApplyError):
            applier.apply(frame)

    def test_bad_patch_offset_rejected(self, session):
        src, dst, channel, endpoint, head, roots = session
        frame = self._delta_frame(session)
        patches = [r for r in frame.records if r.tag == 1]
        patches[0].offset = frame.base_logical_end + 104_729  # out of buffer
        applier = endpoint.state_of(channel.channel_id).applier
        with pytest.raises(DeltaApplyError):
            applier.apply(frame)
