"""Skyway's developer-facing stream API (paper §3.3).

``SkywayObjectOutputStream`` / ``SkywayObjectInputStream`` are the
Java-serializer-compatible entry points: ``write_object(o)`` on one side,
``read_object()`` on the other, with file and socket variants.  Switching a
program to Skyway is "instantiate stream to be a SkywayFileOutputStream
object instead of any other type of ObjectOutputStream" — the call sites do
not change.

Wire framing (this reproduction's equivalent of the paper's stream
protocol): a sequence of varint-length-prefixed segments (each a flush of
the output buffer, containing whole objects), a zero terminator, then a
trailer carrying the top marks — the sender-side root index that saves the
receiver a graph traversal (§4.2 "Root Object Recognition") — and the total
logical size.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.compact import CompactSegmentCodec
from repro.core.receiver import ObjectGraphReceiver
from repro.core.runtime import SkywayRuntime
from repro.core.sender import ObjectGraphSender
from repro.heap.handles import Handle
from repro.heap.layout import HeapLayout
from repro.net.cluster import Cluster, Node
from repro.net.disk import Disk
from repro.net.streams import ByteInputStream, ByteOutputStream


class SkywayStreamError(RuntimeError):
    pass


class SkywayObjectOutputStream:
    """Object-writing side, framing flushed segments into a byte stream.

    ``compress_headers`` enables the compact transfer encoding (the §5.2
    future-work option): headers/padding are deflated per segment at extra
    per-field CPU cost.  The frame's first byte carries the codec id so
    receivers self-configure.
    """

    def __init__(
        self,
        runtime: SkywayRuntime,
        destination: str,
        thread_id: int = 0,
        target_layout: Optional[HeapLayout] = None,
        compress_headers: bool = False,
    ) -> None:
        self.runtime = runtime
        self._frame = ByteOutputStream()
        self.sender: ObjectGraphSender = runtime.new_sender(
            destination, thread_id=thread_id, target_layout=target_layout,
            fresh_buffer=True,
        )
        self._codec: Optional[CompactSegmentCodec] = None
        if compress_headers:
            self._codec = CompactSegmentCodec(
                runtime.jvm, runtime.view, self.sender.target_layout
            )
        self._frame.write_u8(1 if compress_headers else 0)
        self.sender.buffer.set_sink(self._on_flush)
        self._closed = False

    def _on_flush(self, segment: bytes) -> None:
        if self._codec is not None:
            segment = self._codec.compress(segment)
        self._frame.write_varint(len(segment))
        self._frame.write_bytes(segment)

    def write_object(self, root: int) -> int:
        """Paper-compatible ``stream.writeObject(o)``."""
        if self._closed:
            raise SkywayStreamError("stream is closed")
        return self.sender.write_object(root)

    def close(self) -> bytes:
        """Flush, append the trailer, and return the framed bytes."""
        if self._closed:
            raise SkywayStreamError("stream already closed")
        self._closed = True
        self.sender.buffer.flush()
        self._frame.write_varint(0)  # segment terminator
        self._frame.write_varint(len(self.sender.top_marks))
        for mark in self.sender.top_marks:
            self._frame.write_varint(mark)
        self._frame.write_varint(self.sender.buffer.logical_size)
        return self._frame.getvalue()

    @property
    def bytes_written(self) -> int:
        return len(self._frame)


class SkywayObjectInputStream:
    """Object-reading side: feed framed bytes, then pop root objects."""

    def __init__(self, runtime: SkywayRuntime) -> None:
        self.runtime = runtime
        self.receiver: ObjectGraphReceiver = runtime.new_receiver()
        self._roots: List[Handle] = []
        self._cursor = 0
        self._finished = False
        self._buffer_token: Optional[int] = None

    def accept(self, data: bytes) -> None:
        """Consume a complete framed byte stream (segments + trailer)."""
        if self._finished:
            raise SkywayStreamError("stream already finished")
        inp = ByteInputStream(data)
        codec: Optional[CompactSegmentCodec] = None
        if inp.read_u8():
            codec = CompactSegmentCodec(
                self.runtime.jvm, self.runtime.view, self.runtime.jvm.layout
            )
        while True:
            seg_len = inp.read_varint()
            if seg_len == 0:
                break
            segment = inp.read_bytes(seg_len)
            if codec is not None:
                segment = codec.decompress(segment)
            self.receiver.feed(segment)
        n_roots = inp.read_varint()
        marks = [inp.read_varint() for _ in range(n_roots)]
        expected = inp.read_varint()
        if self.receiver.buffer.logical_size != expected:
            raise SkywayStreamError(
                f"stream carried {self.receiver.buffer.logical_size} logical "
                f"bytes, trailer promised {expected}"
            )
        self._roots = self.receiver.finish(marks)
        self._buffer_token = self.runtime.track_input_buffer(
            self.receiver, self._roots
        )
        self._finished = True

    def read_object(self) -> int:
        """Paper-compatible ``stream.readObject()``: next top object."""
        if not self._finished:
            raise SkywayStreamError(
                "read_object before the stream finished (absolutization "
                "must complete first, paper §4.3)"
            )
        if self._cursor >= len(self._roots):
            raise SkywayStreamError("no more top objects in this stream")
        root = self._roots[self._cursor]
        self._cursor += 1
        return root.address

    def has_next(self) -> bool:
        return self._finished and self._cursor < len(self._roots)

    @property
    def buffer_token(self) -> Optional[int]:
        """The runtime retention token for this stream's input buffer
        (delta channels keep the buffer alive across epochs)."""
        return self._buffer_token

    def close(self) -> None:
        """Free this stream's input buffer (the explicit API of §3.2)."""
        if self._buffer_token is not None:
            self.runtime.free_input_buffer(self._buffer_token)
            self._buffer_token = None
        self._roots = []


# ---------------------------------------------------------------------------
# file variants
# ---------------------------------------------------------------------------

class SkywayFileOutputStream(SkywayObjectOutputStream):
    """Writes the framed stream to a simulated disk file on close."""

    def __init__(
        self,
        runtime: SkywayRuntime,
        disk: Disk,
        filename: str,
        thread_id: int = 0,
        target_layout: Optional[HeapLayout] = None,
    ) -> None:
        super().__init__(
            runtime, destination=f"file:{filename}", thread_id=thread_id,
            target_layout=target_layout,
        )
        self._disk = disk
        self._filename = filename

    def close(self) -> bytes:
        data = super().close()
        self._disk.write_file(self._filename, data)
        return data


class SkywayFileInputStream(SkywayObjectInputStream):
    """Reads a framed stream from a simulated disk file."""

    def __init__(self, runtime: SkywayRuntime, disk: Disk, filename: str) -> None:
        super().__init__(runtime)
        self.accept(disk.read_file(filename))


# ---------------------------------------------------------------------------
# socket variants
# ---------------------------------------------------------------------------

class SkywaySocketOutputStream(SkywayObjectOutputStream):
    """Streams over the cluster network to a peer node on close."""

    def __init__(
        self,
        runtime: SkywayRuntime,
        cluster: Cluster,
        src: Node,
        dst: Node,
        thread_id: int = 0,
        target_layout: Optional[HeapLayout] = None,
    ) -> None:
        if target_layout is None:
            # Consult the cluster format config (paper §3.1) so senders
            # re-format clones for destinations with different layouts.
            target_layout = runtime.layout_for_destination(dst.name)
        super().__init__(
            runtime, destination=f"node:{dst.name}", thread_id=thread_id,
            target_layout=target_layout,
        )
        self._cluster = cluster
        self._src = src
        self._dst = dst
        self.sent_bytes: Optional[bytes] = None

    def close(self) -> bytes:
        data = super().close()
        self._cluster.transfer(self._src, self._dst, len(data))
        self.sent_bytes = data
        return data


class SkywaySocketInputStream(SkywayObjectInputStream):
    """Receiving end of a socket transfer."""

    def __init__(self, runtime: SkywayRuntime, data: bytes) -> None:
        super().__init__(runtime)
        self.accept(data)
