"""GC configuration behavior: tenuring thresholds, survivor overflow,
allocation fallbacks, and JVM-level diagnostics."""

import pytest

from repro.heap import markword
from repro.heap.gc import GarbageCollector
from repro.heap.heap import OutOfMemoryError
from repro.jvm.jvm import JVM, baseline_jvm
from repro.simtime import Category

from tests.conftest import make_date, read_date


class TestTenuringThreshold:
    def test_low_threshold_promotes_sooner(self, classpath):
        fast = JVM("fast", classpath=classpath)
        fast.gc = GarbageCollector(fast.heap, fast.handles,
                                   tenuring_threshold=1)
        pin = fast.pin(make_date(fast, 1, 1, 1))
        fast.gc.minor()
        assert fast.heap.old.contains(pin.address)

    def test_high_threshold_keeps_in_survivors(self, classpath):
        slow = JVM("slow", classpath=classpath)
        slow.gc = GarbageCollector(slow.heap, slow.handles,
                                   tenuring_threshold=10)
        pin = slow.pin(make_date(slow, 1, 1, 1))
        for _ in range(3):
            slow.gc.minor()
        assert slow.heap.is_young(pin.address)
        assert markword.get_age(slow.heap.read_mark(pin.address)) == 3

    def test_invalid_threshold_rejected(self, jvm):
        with pytest.raises(ValueError):
            GarbageCollector(jvm.heap, jvm.handles, tenuring_threshold=0)
        with pytest.raises(ValueError):
            GarbageCollector(jvm.heap, jvm.handles,
                             tenuring_threshold=markword.MAX_AGE + 1)


class TestSurvivorOverflow:
    def test_overflow_promotes_rather_than_failing(self, classpath):
        # Survivor space is young/8; fill young with live data larger than
        # one survivor and scavenge: the excess must land in old.
        jvm = JVM("overflow", classpath=classpath, young_bytes=64 * 1024,
                  old_bytes=2 * 1024 * 1024)
        pins = []
        for i in range(300):
            try:
                pins.append(jvm.pin(make_date(jvm, i, 1, 1)))
            except OutOfMemoryError:  # pragma: no cover - sizing guard
                break
        jvm.gc.minor()
        assert jvm.gc.stats.bytes_promoted > 0
        for i, pin in enumerate(pins):
            assert read_date(jvm, pin.address) == (i, 1, 1)


class TestPromotionFailureRecovery:
    def test_failed_scavenge_rolls_back_cleanly(self, classpath):
        """With the old generation nearly full, a scavenge that cannot
        promote must roll back (no forwarding pointers or torn roots left)
        and a subsequent full GC must still see a consistent heap."""
        from repro.heap.verify import verify_heap

        jvm = JVM("pf", classpath=classpath, young_bytes=64 * 1024,
                  old_bytes=96 * 1024)
        # Nearly fill the old generation with live data.
        old_pins = []
        while jvm.heap.old.free > 4 * 1024:
            old_pins.append(
                jvm.pin(jvm.heap.allocate(jvm.loader.load("Mixed"),
                                          old_gen=True)))
        # Live young data exceeding survivor space plus what's left in the
        # old generation: the scavenge must fail.
        young_pins = [jvm.pin(make_date(jvm, i, 1, 1)) for i in range(140)]
        with pytest.raises(OutOfMemoryError):
            jvm.gc.minor()
        verify_heap(jvm.heap)  # rollback left no forwarding/torn state
        for i, pin in enumerate(young_pins):
            assert read_date(jvm, pin.address) == (i, 1, 1)
        # Dropping the old-gen roots lets a full collection recover.
        for pin in old_pins:
            jvm.unpin(pin)
        jvm.gc.full()
        verify_heap(jvm.heap)
        for i, pin in enumerate(young_pins):
            assert read_date(jvm, pin.address) == (i, 1, 1)


class TestAllocationFallbacks:
    def test_huge_object_goes_to_old_gen(self, classpath):
        jvm = JVM("huge", classpath=classpath, young_bytes=64 * 1024,
                  old_bytes=8 * 1024 * 1024)
        big = jvm.new_array("J", 20_000)  # ~160KB > young gen
        assert jvm.heap.old.contains(big)

    def test_hard_oom_raises(self, classpath):
        jvm = JVM("doomed", classpath=classpath, young_bytes=48 * 1024,
                  old_bytes=64 * 1024)
        with pytest.raises(OutOfMemoryError, match="heap exhausted"):
            pins = []
            for i in range(10_000):
                pins.append(jvm.pin(jvm.new_instance("Mixed")))

    def test_allocation_charges_clock(self, jvm):
        before = jvm.clock.total(Category.COMPUTATION)
        jvm.new_instance("Date")
        assert jvm.clock.total(Category.COMPUTATION) == pytest.approx(
            before + jvm.cost_model.object_alloc
        )

    def test_uncharged_allocation(self, jvm):
        before = jvm.clock.total()
        jvm.new_instance("Date", charge=False)
        assert jvm.clock.total() == before


class TestJvmDiagnostics:
    def test_heap_usage_keys(self, jvm):
        jvm.new_instance("Date")
        usage = jvm.heap_usage()
        assert set(usage) == {"eden", "survivor0", "survivor1", "old"}
        assert usage["eden"] > 0

    def test_baseline_jvm_has_smaller_objects(self, classpath):
        sky = JVM("sky", classpath=classpath)
        base = baseline_jvm("base", classpath=classpath)
        assert base.loader.load("Date").instance_size < \
            sky.loader.load("Date").instance_size

    def test_baseline_jvm_has_no_baddr(self, classpath):
        base = baseline_jvm("base2", classpath=classpath)
        addr = base.new_instance("Date")
        with pytest.raises(AttributeError):
            base.heap.read_baddr(addr)
