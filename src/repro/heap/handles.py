"""GC-stable handles.

Objects move during collection, so code that must hold an object across a
potential GC holds a :class:`Handle` registered with the JVM's
:class:`HandleTable` (the root set).  The collector updates handle addresses
when it moves objects — mirroring JNI global refs / HotSpot ``Handle``\\ s.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.heap.heap import NULL


class Handle:
    """A movable reference to a heap object (or null)."""

    __slots__ = ("address",)

    def __init__(self, address: int = NULL) -> None:
        self.address = address

    @property
    def is_null(self) -> bool:
        return self.address == NULL

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Handle({self.address:#x})"


class HandleTable:
    """The root set: every live handle the mutator holds."""

    def __init__(self) -> None:
        self._handles: List[Handle] = []

    def create(self, address: int = NULL) -> Handle:
        handle = Handle(address)
        self._handles.append(handle)
        return handle

    def register(self, handle: Handle) -> Handle:
        if handle not in self._handles:
            self._handles.append(handle)
        return handle

    def release(self, handle: Handle) -> None:
        try:
            self._handles.remove(handle)
        except ValueError:
            pass

    def __iter__(self) -> Iterator[Handle]:
        return iter(self._handles)

    def __len__(self) -> int:
        return len(self._handles)

    def roots(self) -> List[Handle]:
        return [h for h in self._handles if not h.is_null]
