"""The sort-based shuffle (paper §2.2: "Tungsten sort was used").

Map side, per map partition: records are sorted by key, split into
per-reducer buckets, materialized as heap object graphs, serialized with
the configured data serializer into one disk file per (map, reduce) pair.
Reduce side, per reduce partition: every map's bucket file is fetched —
local or remote (the Figure 3(b) "Local/Remote Bytes" distinction) — and
deserialized back into records.

Phase accounting matches the paper's breakdown exactly:

* sorting and bucketing → computation (map node);
* turning records into bytes → serialization (map node);
* writing bucket files → write I/O (map node);
* fetching files → read I/O + network (reduce node);
* turning bytes back into records → deserialization (reduce node).

When the serializer is Skyway, each map task opens a shuffling phase
(``shuffle_start``), mirroring the paper's one-line integration point.

With a fleet attached to the context (:mod:`repro.cluster`), every bucket
file is mirrored onto the map node's fleet worker (``put_blob``) and a
*remote* fetch also routes the bytes peer-to-peer between the two fleet
workers — worker A pushes straight to worker B, CRC-checked against the
simulated bucket, never bouncing through the driver.  A dead peer demotes
that one fetch to the simulated path (with a ``fleet_route_failed``
event); the shuffle itself never fails on a fleet casualty.
"""

from __future__ import annotations

import itertools
import math
import zlib
from typing import Any, Dict, List, Sequence, Tuple, TYPE_CHECKING

from repro.jvm.marshal import from_heap, to_heap
from repro.simtime import Category
from repro.spark.partitioner import HashPartitioner, stable_hash

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.cluster import Node
    from repro.spark.context import SparkContext

Record = Tuple[Any, Any]


class ShuffleService:
    """Writes and serves shuffle files across the cluster."""

    def __init__(self, sc: "SparkContext") -> None:
        self.sc = sc
        self._ids = itertools.count()
        #: shuffle id -> {(map_partition, reduce_partition): (node, file)}
        self._index: Dict[int, Dict[Tuple[int, int], Tuple["Node", str]]] = {}
        self.records_shuffled = 0
        self.bytes_shuffled = 0
        #: Fleet routing tallies (zero without a fleet on the context).
        self.fleet_routes = 0
        self.fleet_route_bytes = 0
        self.fleet_route_failures = 0

    def new_shuffle_id(self) -> int:
        return next(self._ids)

    # ------------------------------------------------------------------
    # map side
    # ------------------------------------------------------------------

    def write_map_output(
        self,
        shuffle_id: int,
        map_partition: int,
        records: Sequence[Record],
        partitioner: HashPartitioner,
    ) -> None:
        sc = self.sc
        node = sc.node_for_partition(map_partition)
        jvm = node.jvm

        # Sort by key hash (Tungsten sorts binary prefixes), charged as
        # comparisons to computation.
        n = len(records)
        if n > 1:
            node.clock.charge(
                n * max(1.0, math.log2(n)) * sc.config.sort_compare_cost,
                Category.COMPUTATION,
            )
        ordered = sorted(records, key=lambda kv: stable_hash(kv[0]))

        buckets: List[List[Record]] = [[] for _ in range(partitioner.num_partitions)]
        for key, value in ordered:
            buckets[partitioner.partition_of(key)].append((key, value))

        files = self._index.setdefault(shuffle_id, {})
        if jvm.skyway is not None and self.sc.serializer.name == "skyway":
            # The paper's integration point: mark the shuffling phase.
            jvm.skyway.shuffle_start()
        for reduce_partition, bucket in enumerate(buckets):
            thread_id = reduce_partition % max(1, self.sc.config.shuffle_threads)
            data = self._serialize_bucket(node, bucket, thread_id)
            filename = f"shuffle-{sc.app_id}-{shuffle_id}-{map_partition}-{reduce_partition}"
            node.disk.write_file(filename, data)
            files[(map_partition, reduce_partition)] = (node, filename)
            self._mirror_to_fleet(node, filename, data)
            self.records_shuffled += len(bucket)
            self.bytes_shuffled += len(data)
            sc.events.emit(
                "shuffle_write", shuffle_id=shuffle_id,
                map_partition=map_partition,
                reduce_partition=reduce_partition,
                node=node.name, records=len(bucket), bytes=len(data),
            )

    def _serialize_bucket(self, node: "Node", bucket: Sequence[Record],
                          thread_id: int = 0) -> bytes:
        jvm = node.jvm
        with node.clock.phase(Category.COMPUTATION):
            # Records exist as objects before serialization in real Spark;
            # materialization is charged as (cheap) computation here.
            pins = [jvm.pin(to_heap(jvm, record, charge=True)) for record in bucket]
        try:
            with node.clock.phase(Category.SERIALIZATION):
                node.clock.charge(len(pins) * self.sc.config.record_ser_overhead)
                stream = self.sc.serializer.new_stream(jvm, thread_id=thread_id)
                for pin in pins:
                    stream.write_object(pin.address)
                return stream.close()
        finally:
            for pin in pins:
                jvm.unpin(pin)

    # ------------------------------------------------------------------
    # reduce side
    # ------------------------------------------------------------------

    def read_reduce_input(
        self, shuffle_id: int, reduce_partition: int, num_map_partitions: int
    ) -> List[Record]:
        sc = self.sc
        dst = sc.node_for_partition(reduce_partition)
        out: List[Record] = []
        files = self._index.get(shuffle_id, {})
        for map_partition in range(num_map_partitions):
            entry = files.get((map_partition, reduce_partition))
            if entry is None:
                continue
            src, filename = entry
            data = self._fetch(src, dst, filename)
            sc.events.emit(
                "shuffle_fetch", shuffle_id=shuffle_id,
                map_partition=map_partition,
                reduce_partition=reduce_partition,
                src=src.name, dst=dst.name, bytes=len(data),
                remote=src is not dst,
            )
            out.extend(self._deserialize_bucket(dst, data))
        return out

    def _mirror_to_fleet(self, node: "Node", filename: str,
                         data: bytes) -> None:
        """Land the bucket bytes on the map node's fleet worker, so a
        later remote fetch can route peer-to-peer.  Best-effort: a fleet
        casualty here only disables p2p for this bucket."""
        sc = self.sc
        worker = sc.fleet_worker_for(node)
        if worker is None:
            return
        from repro.cluster.errors import ClusterError

        try:
            sc.fleet.put_blob(worker, filename, data)
        except ClusterError as exc:
            self.fleet_route_failures += 1
            sc.events.emit(
                "fleet_route_failed", op="put_blob", worker=worker,
                file=filename, error=type(exc).__name__,
            )

    def _fetch(self, src: "Node", dst: "Node", filename: str) -> bytes:
        data = bytes(src.disk.open(filename).data)
        # The reducer pays the read; remote fetches also pay the network
        # (folded into read I/O in reports, as in the paper).
        dst.clock.charge(dst.disk._cost.disk_read(len(data)), Category.READ_IO)
        dst.disk.bytes_read += len(data)
        self.sc.cluster.transfer(src, dst, len(data))
        if src is not dst:
            self._route_via_fleet(src, dst, filename, data)
        return data

    def _route_via_fleet(self, src: "Node", dst: "Node", filename: str,
                         data: bytes) -> None:
        """The p2p mirror of a remote fetch: the source node's fleet
        worker pushes the bucket straight to the destination's, and the
        peer's CRC must match the simulated bytes.  A gone peer demotes
        this one fetch to the simulated path; the shuffle completes."""
        sc = self.sc
        src_worker = sc.fleet_worker_for(src)
        dst_worker = sc.fleet_worker_for(dst)
        if src_worker is None or dst_worker is None \
                or src_worker == dst_worker:
            return
        from repro.cluster.errors import ClusterError

        try:
            result = sc.fleet.peer_blob(src_worker, dst_worker, filename)
        except ClusterError as exc:
            self.fleet_route_failures += 1
            sc.events.emit(
                "fleet_route_failed", op="peer_blob", src=src_worker,
                dst=dst_worker, file=filename, error=type(exc).__name__,
            )
            return
        if result["crc32"] != zlib.crc32(data):
            raise RuntimeError(
                f"fleet p2p route delivered different bytes for "
                f"{filename}: peer CRC {result['crc32']:#x}, "
                f"simulated {zlib.crc32(data):#x}"
            )
        self.fleet_routes += 1
        self.fleet_route_bytes += len(data)
        sc.events.emit(
            "fleet_shuffle_route", src=src_worker, dst=dst_worker,
            file=filename, bytes=len(data),
        )

    def _deserialize_bucket(self, node: "Node", data: bytes) -> List[Record]:
        jvm = node.jvm
        records: List[Record] = []
        with node.clock.phase(Category.DESERIALIZATION):
            reader = self.sc.serializer.new_reader(jvm, data)
            try:
                while reader.has_next():
                    records.append(from_heap(jvm, reader.read_object()))
            finally:
                reader.close()
            node.clock.charge(len(records) * self.sc.config.record_des_overhead)
        return records
