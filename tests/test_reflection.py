"""Direct tests for the reflective access service (the baselines' path)."""

import pytest

from repro.jvm.reflection import Reflection
from repro.types.loader import ClassNotFoundError


class TestReflectiveAccess:
    def test_get_set_field(self, jvm):
        reflect = Reflection(jvm)
        addr = jvm.new_instance("Mixed")
        reflect.set_field(addr, "i", 77)
        assert reflect.get_field(addr, "i") == 77

    def test_every_access_charges(self, jvm):
        reflect = Reflection(jvm)
        addr = jvm.new_instance("Mixed")
        before = jvm.clock.total()
        reflect.get_field(addr, "i")
        reflect.set_field(addr, "i", 1)
        spent = jvm.clock.total() - before
        assert spent == pytest.approx(2 * jvm.cost_model.reflective_access)

    def test_direct_access_does_not_charge(self, jvm):
        addr = jvm.new_instance("Mixed")
        before = jvm.clock.total()
        jvm.set_field(addr, "i", 5)
        jvm.get_field(addr, "i")
        assert jvm.clock.total() == before

    def test_fields_of_enumerates(self, jvm):
        reflect = Reflection(jvm)
        fields = reflect.fields_of(jvm.loader.load("Mixed"))
        assert {f.name for f in fields} >= {"b", "z", "i", "j", "d", "ref"}

    def test_class_for_name_charges_resolution(self, jvm):
        reflect = Reflection(jvm)
        before = jvm.clock.total()
        klass = reflect.class_for_name("Date")
        assert klass.name == "Date"
        assert jvm.clock.total() - before == pytest.approx(
            jvm.cost_model.reflective_type_resolve
        )

    def test_class_for_name_unknown(self, jvm):
        with pytest.raises(ClassNotFoundError):
            Reflection(jvm).class_for_name("missing.Class")

    def test_new_instance_rejects_arrays(self, jvm):
        reflect = Reflection(jvm)
        with pytest.raises(TypeError):
            reflect.new_instance(jvm.loader.load("[I"))

    def test_reflective_new_array(self, jvm):
        reflect = Reflection(jvm)
        arr = reflect.new_array("J", 4)
        assert jvm.heap.array_length(arr) == 4


class TestHeapHistogram:
    def test_census_counts_and_ordering(self, jvm):
        for _ in range(5):
            jvm.new_instance("Date")
        jvm.new_array("J", 1000)  # the biggest single object
        histogram = jvm.heap_histogram()
        by_name = {name: (count, total) for name, count, total in histogram}
        assert by_name["Date"][0] == 5
        assert histogram[0][0] == "[J"  # sorted by bytes desc
        assert all(b > 0 for _, _, b in histogram)

    def test_histogram_reflects_gc(self, jvm):
        for _ in range(50):
            jvm.new_instance("Date")
        jvm.gc.full()  # no roots: everything dies
        assert jvm.heap_histogram() == []
