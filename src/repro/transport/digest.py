"""Position-independent digest of a received object graph.

The acceptance check for the socket transport is that a graph round-tripped
driver -> worker over loopback is *byte-identical* to the in-process
receive path: same input-buffer contents, same restored klass and pointer
words.  Raw heap bytes can't be compared directly across processes — klass
words hold loader-assigned klass IDs and pointers hold physical addresses,
both of which depend on local allocation history — so the digest
normalizes exactly those two word kinds:

* each object contributes its class *name* (not the klass word);
* each reference word is translated back to its buffer-*logical* offset
  (the coordinate system the wire format itself uses);
* everything else — mark words with their preserved hashcodes, primitive
  fields, array payloads, padding — is hashed as-is.

Two receivers that placed and absolutized the same stream produce the same
digest, whatever their heaps looked like beforehand.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.core.receiver import ObjectGraphReceiver
from repro.heap.layout import KLASS_OFFSET, MARK_OFFSET
from repro.jvm.jvm import JVM


def graph_digest(jvm: JVM, receiver: ObjectGraphReceiver) -> str:
    """SHA-256 over the received buffer in logical coordinates."""
    heap = jvm.heap
    buffer = receiver.buffer
    spans = [
        (chunk.physical_start, chunk.filled, chunk.logical_start)
        for chunk in buffer.chunks
    ]

    def to_logical(pointer: int) -> int:
        if pointer == 0:
            return 0
        for physical, filled, logical in spans:
            if physical <= pointer < physical + filled:
                return logical + (pointer - physical)
        raise ValueError(
            f"pointer {pointer:#x} leads outside the input buffer"
        )

    digest = hashlib.sha256()
    for address in buffer.placed_objects:
        klass = heap.klass_of(address)
        size = heap.object_size(address)
        image = bytearray(heap.read_bytes(address, size))
        image[KLASS_OFFSET:KLASS_OFFSET + 8] = b"\x00" * 8
        for offset in heap.reference_offsets(address):
            pointer = int.from_bytes(image[offset:offset + 8], "little")
            image[offset:offset + 8] = to_logical(pointer).to_bytes(8, "little")
        digest.update(klass.name.encode("utf-8"))
        digest.update(len(image).to_bytes(8, "little"))
        digest.update(bytes(image))
    return digest.hexdigest()


def semantic_graph_digest(jvm: JVM, roots: Sequence[int]) -> str:
    """SHA-256 over the object graph *reachable from roots*, in traversal
    coordinates.

    :func:`graph_digest` hashes a received input buffer in placement order,
    which ties it to one receive event: a heap patched in place by delta
    epochs has no placement order matching a hypothetical fresh full
    receive.  This digest instead canonicalizes by a deterministic BFS from
    the given roots — every address maps to its visit index, so two heaps
    holding semantically identical graphs (same classes, same primitive
    bytes, same shape) digest identically regardless of where or in what
    order their objects were placed, or which epochs built them.

    Normalized per object: the mark word (hashcodes differ per allocation
    history), the klass word (hashed as the class *name*), the ``baddr``
    word if the layout carries one (sender-side scratch state), and every
    reference word (rewritten to the referent's visit index; 0 for null).
    """
    heap = jvm.heap
    layout = heap.layout
    index: dict = {}
    order: list = []
    queue: list = []
    for root in roots:
        if root and root not in index:
            index[root] = len(order) + 1
            order.append(root)
            queue.append(root)
    head = 0
    while head < len(queue):
        address = queue[head]
        head += 1
        for offset in heap.reference_offsets(address):
            target = heap.read_word(address + offset)
            if target and target not in index:
                index[target] = len(order) + 1
                order.append(target)
                queue.append(target)

    digest = hashlib.sha256()
    digest.update(len(roots).to_bytes(8, "little"))
    for root in roots:
        digest.update(index.get(root, 0).to_bytes(8, "little"))
    for address in order:
        klass = heap.klass_of(address)
        size = heap.object_size(address)
        image = bytearray(heap.read_bytes(address, size))
        image[MARK_OFFSET:MARK_OFFSET + 8] = b"\x00" * 8
        image[KLASS_OFFSET:KLASS_OFFSET + 8] = b"\x00" * 8
        if layout.has_baddr:
            off = layout.baddr_offset
            image[off:off + 8] = b"\x00" * 8
        for offset in heap.reference_offsets(address):
            pointer = int.from_bytes(image[offset:offset + 8], "little")
            image[offset:offset + 8] = index.get(pointer, 0).to_bytes(
                8, "little"
            )
        digest.update(klass.name.encode("utf-8"))
        digest.update(len(image).to_bytes(8, "little"))
        digest.update(bytes(image))
    return digest.hexdigest()
