"""End-to-end policy plane: ``sc.send`` over the loopback cluster, the
deprecation shims on the legacy entry points, and the per-channel
mutation-rate / bytes-per-epoch gauges."""

import warnings

import pytest

from repro import obs
from repro.apps.incremental import (
    IncrementalPageRank,
    build_vertex_graph,
    install_incremental_classes,
    read_ranks,
)
from repro.core.adapter import SkywaySerializer
from repro.core.runtime import attach_skyway
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.policy import PolicyEngine
from repro.policy.shims import reset_deprecation_warnings
from repro.spark.context import SparkContext
from repro.types.classdef import ClassPath
from repro.types.corelib import install_core_classes

# A ring alone is a PageRank fixed point (every rank stays 1.0, nothing
# ever dirties); the hub/spoke edges make every sweep move real bytes.
N = 120
EDGES = (
    [(i, (i + 1) % N) for i in range(N)]
    + [(0, j) for j in range(2, 40)]
    + [(j, 0) for j in range(40, 80)]
)


@pytest.fixture
def classpath():
    return install_incremental_classes(install_core_classes(ClassPath()))


def make_context(classpath, workers=2):
    cluster = Cluster(lambda name: JVM(name, classpath=classpath),
                      worker_count=workers)
    attach_skyway(cluster.driver.jvm,
                  [w.jvm for w in cluster.workers], cluster=cluster)
    return cluster, SparkContext(cluster, SkywaySerializer())


class TestPolicySend:
    def test_adaptive_lifecycle_with_parity(self, classpath):
        """Bootstrap FULL, sparse step delta, saturated step FULL — the
        worker copy byte-tracks the driver at every point."""
        cluster, sc = make_context(classpath)
        driver = cluster.driver.jvm
        graph = build_vertex_graph(driver, EDGES)
        pagerank = IncrementalPageRank(driver, graph)
        send = sc.send(graph)
        try:
            bootstrap = send.push()
            assert set(bootstrap.modes.values()) == {"full"}

            pagerank.step(active_fraction=0.02)
            sparse = send.push()
            assert set(sparse.modes.values()) == {"delta"}
            assert sparse.wire_bytes < bootstrap.wire_bytes / 5

            pagerank.step(active_fraction=1.0)
            saturated = send.push()
            assert set(saturated.modes.values()) == {"full"}

            expected = read_ranks(driver, graph)
            for worker in cluster.workers:
                local = send.value_on(worker)
                assert read_ranks(worker.jvm, local) == expected
        finally:
            send.close()

    def test_no_call_site_picks_a_mode(self, classpath):
        """Every epoch's mode comes out of the engine: the push reports
        and the channel's last_plan agree, and the decision count equals
        pushes x workers."""
        cluster, sc = make_context(classpath)
        driver = cluster.driver.jvm
        graph = build_vertex_graph(driver, EDGES)
        send = sc.send(graph, policy="crossover")
        try:
            send.push()
            send.push()
            assert send.engine.decisions == 2 * len(cluster.workers)
            for name, metrics in send.metrics().items():
                plan = metrics["last_plan"]
                assert plan is not None
                assert plan["policy"] == "crossover"
                assert plan["mode"] == send.pushes[-1].modes[name]
        finally:
            send.close()

    def test_shared_engine_across_sends(self, classpath):
        cluster, sc = make_context(classpath)
        driver = cluster.driver.jvm
        engine = PolicyEngine("adaptive")
        a = sc.send(build_vertex_graph(driver, EDGES), policy=engine)
        b = sc.send(build_vertex_graph(driver, EDGES), policy=engine)
        try:
            assert a.engine is engine and b.engine is engine
            a.push()
            b.push()
            # One engine, distinct per-channel histories.
            assert len(engine.snapshot()["channels"]) == \
                2 * len(cluster.workers)
        finally:
            a.close()
            b.close()

    def test_send_requires_skyway(self, classpath):
        cluster = Cluster(lambda name: JVM(name, classpath=classpath),
                          worker_count=1)
        sc = SparkContext(cluster, SkywaySerializer())
        with pytest.raises(RuntimeError, match="attach_skyway"):
            sc.send(1234)


class TestChannelGauges:
    def test_mutation_and_bytes_gauges_registered(self, classpath):
        obs.reset()
        try:
            cluster, sc = make_context(classpath)
            driver = cluster.driver.jvm
            graph = build_vertex_graph(driver, EDGES)
            pagerank = IncrementalPageRank(driver, graph)
            send = sc.send(graph)
            send.push()
            pagerank.step(active_fraction=0.02)
            send.push()

            gauges = obs.registry().snapshot()["gauges"]
            for worker in cluster.workers:
                labels = f"{{destination={worker.name},substrate=loopback}}"
                per_epoch = gauges[f"exchange.bytes_per_epoch{labels}"]
                assert per_epoch > 0
                assert f"exchange.mutation_rate{labels}" in gauges
            send.close()
        finally:
            obs.reset()


class TestDeprecationShims:
    def test_delta_broadcast_warns_once(self, classpath):
        cluster, sc = make_context(classpath)
        graph = build_vertex_graph(cluster.driver.jvm, EDGES)
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning,
                          match=r"delta_broadcast.*send\(policy="):
            first = sc.delta_broadcast(graph)
        first.close()
        # Warn-once: the second call is silent.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            second = sc.delta_broadcast(graph)
        second.close()
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]

    def test_parallel_send_warns(self, classpath):
        cluster, sc = make_context(classpath, workers=1)
        driver = cluster.driver.jvm
        roots = [build_vertex_graph(driver, [(0, 1), (1, 0)])
                 for _ in range(2)]
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="parallel_send"):
            report = sc.parallel_send(cluster.workers[0].name, roots,
                                      streams=2)
        assert len(report.streams) == 2

    def test_serializer_delta_flag_warns(self):
        reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning,
                          match=r"SkywaySerializer\(delta=True\)"):
            SkywaySerializer(delta=True)
