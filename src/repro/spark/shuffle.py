"""The sort-based shuffle (paper §2.2: "Tungsten sort was used").

Map side, per map partition: records are sorted by key, split into
per-reducer buckets, materialized as heap object graphs, serialized with
the configured data serializer into one disk file per (map, reduce) pair.
Reduce side, per reduce partition: every map's bucket file is fetched —
local or remote (the Figure 3(b) "Local/Remote Bytes" distinction) — and
deserialized back into records.

Phase accounting matches the paper's breakdown exactly:

* sorting and bucketing → computation (map node);
* turning records into bytes → serialization (map node);
* writing bucket files → write I/O (map node);
* fetching files → read I/O + network (reduce node);
* turning bytes back into records → deserialization (reduce node).

When the serializer is Skyway, each map task opens a shuffling phase
(``shuffle_start``), mirroring the paper's one-line integration point.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Dict, List, Sequence, Tuple, TYPE_CHECKING

from repro.jvm.marshal import from_heap, to_heap
from repro.simtime import Category
from repro.spark.partitioner import HashPartitioner, stable_hash

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.cluster import Node
    from repro.spark.context import SparkContext

Record = Tuple[Any, Any]


class ShuffleService:
    """Writes and serves shuffle files across the cluster."""

    def __init__(self, sc: "SparkContext") -> None:
        self.sc = sc
        self._ids = itertools.count()
        #: shuffle id -> {(map_partition, reduce_partition): (node, file)}
        self._index: Dict[int, Dict[Tuple[int, int], Tuple["Node", str]]] = {}
        self.records_shuffled = 0
        self.bytes_shuffled = 0

    def new_shuffle_id(self) -> int:
        return next(self._ids)

    # ------------------------------------------------------------------
    # map side
    # ------------------------------------------------------------------

    def write_map_output(
        self,
        shuffle_id: int,
        map_partition: int,
        records: Sequence[Record],
        partitioner: HashPartitioner,
    ) -> None:
        sc = self.sc
        node = sc.node_for_partition(map_partition)
        jvm = node.jvm

        # Sort by key hash (Tungsten sorts binary prefixes), charged as
        # comparisons to computation.
        n = len(records)
        if n > 1:
            node.clock.charge(
                n * max(1.0, math.log2(n)) * sc.config.sort_compare_cost,
                Category.COMPUTATION,
            )
        ordered = sorted(records, key=lambda kv: stable_hash(kv[0]))

        buckets: List[List[Record]] = [[] for _ in range(partitioner.num_partitions)]
        for key, value in ordered:
            buckets[partitioner.partition_of(key)].append((key, value))

        files = self._index.setdefault(shuffle_id, {})
        if jvm.skyway is not None and self.sc.serializer.name == "skyway":
            # The paper's integration point: mark the shuffling phase.
            jvm.skyway.shuffle_start()
        for reduce_partition, bucket in enumerate(buckets):
            thread_id = reduce_partition % max(1, self.sc.config.shuffle_threads)
            data = self._serialize_bucket(node, bucket, thread_id)
            filename = f"shuffle-{sc.app_id}-{shuffle_id}-{map_partition}-{reduce_partition}"
            node.disk.write_file(filename, data)
            files[(map_partition, reduce_partition)] = (node, filename)
            self.records_shuffled += len(bucket)
            self.bytes_shuffled += len(data)
            sc.events.emit(
                "shuffle_write", shuffle_id=shuffle_id,
                map_partition=map_partition,
                reduce_partition=reduce_partition,
                node=node.name, records=len(bucket), bytes=len(data),
            )

    def _serialize_bucket(self, node: "Node", bucket: Sequence[Record],
                          thread_id: int = 0) -> bytes:
        jvm = node.jvm
        with node.clock.phase(Category.COMPUTATION):
            # Records exist as objects before serialization in real Spark;
            # materialization is charged as (cheap) computation here.
            pins = [jvm.pin(to_heap(jvm, record, charge=True)) for record in bucket]
        try:
            with node.clock.phase(Category.SERIALIZATION):
                node.clock.charge(len(pins) * self.sc.config.record_ser_overhead)
                stream = self.sc.serializer.new_stream(jvm, thread_id=thread_id)
                for pin in pins:
                    stream.write_object(pin.address)
                return stream.close()
        finally:
            for pin in pins:
                jvm.unpin(pin)

    # ------------------------------------------------------------------
    # reduce side
    # ------------------------------------------------------------------

    def read_reduce_input(
        self, shuffle_id: int, reduce_partition: int, num_map_partitions: int
    ) -> List[Record]:
        sc = self.sc
        dst = sc.node_for_partition(reduce_partition)
        out: List[Record] = []
        files = self._index.get(shuffle_id, {})
        for map_partition in range(num_map_partitions):
            entry = files.get((map_partition, reduce_partition))
            if entry is None:
                continue
            src, filename = entry
            data = self._fetch(src, dst, filename)
            sc.events.emit(
                "shuffle_fetch", shuffle_id=shuffle_id,
                map_partition=map_partition,
                reduce_partition=reduce_partition,
                src=src.name, dst=dst.name, bytes=len(data),
                remote=src is not dst,
            )
            out.extend(self._deserialize_bucket(dst, data))
        return out

    def _fetch(self, src: "Node", dst: "Node", filename: str) -> bytes:
        data = bytes(src.disk.open(filename).data)
        # The reducer pays the read; remote fetches also pay the network
        # (folded into read I/O in reports, as in the paper).
        dst.clock.charge(dst.disk._cost.disk_read(len(data)), Category.READ_IO)
        dst.disk.bytes_read += len(data)
        self.sc.cluster.transfer(src, dst, len(data))
        return data

    def _deserialize_bucket(self, node: "Node", data: bytes) -> List[Record]:
        jvm = node.jvm
        records: List[Record] = []
        with node.clock.phase(Category.DESERIALIZATION):
            reader = self.sc.serializer.new_reader(jvm, data)
            try:
                while reader.has_next():
                    records.append(from_heap(jvm, reader.read_object()))
            finally:
                reader.close()
            node.clock.charge(len(records) * self.sc.config.record_des_overhead)
        return records
