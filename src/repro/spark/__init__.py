"""A Spark-like RDD engine over the simulated cluster (paper §2, §5.2).

The engine reproduces exactly the boundary where S/D cost arises in Spark:
narrow transformations pipeline within a stage on each partition's executor;
wide transformations cut stages and run a **sort-based shuffle** — map tasks
sort and serialize records into per-reducer disk files, reducers fetch them
(locally or over the network) and deserialize.  The data serializer is
pluggable (Java / Kryo / Skyway), closures always travel via the Java
serializer (as in the paper's setup), and every phase charges the owning
node's clock so Figure 3/Figure 8-style breakdowns fall out of the run.
"""

from repro.spark.context import SparkConfig, SparkContext
from repro.spark.rdd import RDD
from repro.spark.metrics import JobMetrics

__all__ = ["SparkContext", "SparkConfig", "RDD", "JobMetrics"]
