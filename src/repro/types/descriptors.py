"""JVM-style field type descriptors.

The simulated heap uses the JVM's descriptor grammar:

===========  =============  =====  =========
descriptor   Java type      bytes  alignment
===========  =============  =====  =========
``Z``        boolean        1      1
``B``        byte           1      1
``C``        char           2      2
``S``        short          2      2
``I``        int            4      4
``F``        float          4      4
``J``        long           8      8
``D``        double         8      8
``L<name>;`` reference      8      8
``[<desc>``  array (ref)    8      8
===========  =============  =====  =========

References are 8 bytes (64-bit HotSpot without compressed oops, matching the
paper's Figure 6 which shows an ``Integer[3]`` payload of three 8-byte
references).
"""

from __future__ import annotations

from typing import Dict

#: Reference (pointer) width in bytes.
REFERENCE_SIZE = 8

ARRAY_PREFIX = "["

#: Primitive descriptor -> (size, java name).
PRIMITIVE_DESCRIPTORS: Dict[str, int] = {
    "Z": 1,
    "B": 1,
    "C": 2,
    "S": 2,
    "I": 4,
    "F": 4,
    "J": 8,
    "D": 8,
}

_PRIMITIVE_NAMES = {
    "Z": "boolean",
    "B": "byte",
    "C": "char",
    "S": "short",
    "I": "int",
    "F": "float",
    "J": "long",
    "D": "double",
}


def is_primitive(descriptor: str) -> bool:
    return descriptor in PRIMITIVE_DESCRIPTORS


def is_array(descriptor: str) -> bool:
    return descriptor.startswith(ARRAY_PREFIX)


def is_reference(descriptor: str) -> bool:
    """True for object references and arrays (both stored as pointers)."""
    return descriptor.startswith("L") or is_array(descriptor)


def validate(descriptor: str) -> None:
    if is_primitive(descriptor):
        return
    if descriptor.startswith("L") and descriptor.endswith(";") and len(descriptor) > 2:
        return
    if is_array(descriptor):
        validate(descriptor[1:])
        return
    raise ValueError(f"malformed field descriptor: {descriptor!r}")


def size_of(descriptor: str) -> int:
    """Storage size of a field of this type, in bytes."""
    if is_primitive(descriptor):
        return PRIMITIVE_DESCRIPTORS[descriptor]
    validate(descriptor)
    return REFERENCE_SIZE


def alignment_of(descriptor: str) -> int:
    """Natural alignment equals size for primitives; 8 for references."""
    return size_of(descriptor)


def object_descriptor(class_name: str) -> str:
    """Descriptor for a reference to ``class_name`` (dotted form kept)."""
    if not class_name:
        raise ValueError("empty class name")
    return f"L{class_name};"


def referenced_class(descriptor: str) -> str:
    """Class name inside an ``L...;`` descriptor (arrays resolve to their
    array-class name, e.g. ``[I`` -> ``[I``, ``[Ljava.lang.Integer;`` kept)."""
    if descriptor.startswith("L") and descriptor.endswith(";"):
        return descriptor[1:-1]
    if is_array(descriptor):
        return descriptor
    raise ValueError(f"not a reference descriptor: {descriptor!r}")


def component_of(array_descriptor: str) -> str:
    """Element descriptor of an array descriptor (``[I`` -> ``I``)."""
    if not is_array(array_descriptor):
        raise ValueError(f"not an array descriptor: {array_descriptor!r}")
    return array_descriptor[1:]


def java_name(descriptor: str) -> str:
    """Human-readable Java name (``[I`` -> ``int[]``)."""
    if is_primitive(descriptor):
        return _PRIMITIVE_NAMES[descriptor]
    if is_array(descriptor):
        return java_name(component_of(descriptor)) + "[]"
    return referenced_class(descriptor)
