"""Pipelined chunk streaming — the transport half of the paper's §4.2.

"Skyway starts streaming an output buffer while the sender is still
traversing the graph": here that is literal.  The sender's stream bytes
arrive via ``feed()`` on the *traversal* thread, get cut into fixed-size
chunks, and go into a bounded queue drained by a writer thread that pushes
DATA frames down the socket.  Traversal and socket I/O overlap in measured
wall-clock time; a full queue blocks the traversal (counted as a stall —
the wire is the bottleneck), an empty one idles the writer (traversal is).

``store_and_forward=True`` is the ablation: buffer the whole stream, then
send — the baseline Skyway §4.2 improves on.  The benchmark compares the
two over loopback.

Both modes end with one TRAILER frame carrying total bytes, a
whole-stream CRC32, and the chunk count, so the receiver can prove it
reassembled exactly what the sender traversed.
"""

from __future__ import annotations

import queue
import threading
import time
import zlib
from typing import Optional

from repro import obs
from repro.transport import frames
from repro.transport.connection import FrameConnection
from repro.transport.errors import TransportClosed, TransportError
from repro.transport.metrics import TransportMetrics

DEFAULT_CHUNK_BYTES = 64 * 1024
DEFAULT_QUEUE_CHUNKS = 8

_CLOSE = object()  # queue sentinel


class ChunkPipeline:
    """The ``transport=`` sink for :class:`SkywayObjectOutputStream`.

    Implements the stream-transport protocol: ``feed(data)`` for each new
    run of stream bytes, ``finish(total, crc)`` once after close.
    """

    def __init__(
        self,
        connection: FrameConnection,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        queue_chunks: int = DEFAULT_QUEUE_CHUNKS,
        store_and_forward: bool = False,
        throttle_mbps: Optional[float] = None,
        metrics: Optional[TransportMetrics] = None,
    ) -> None:
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        self._conn = connection
        self._chunk_bytes = chunk_bytes
        self._store_and_forward = store_and_forward
        #: Pacing in bytes/second; models a finite-bandwidth wire (the
        #: paper's testbed Ethernet) on an effectively infinite loopback.
        #: Applied per chunk in BOTH modes — it is the wire's speed, not
        #: the writer thread's.
        self._pace = throttle_mbps * 1e6 / 8.0 if throttle_mbps else None
        self.metrics = metrics if metrics is not None else connection.metrics
        self._staging = bytearray()
        self._held: list = []  # store-and-forward chunk list
        self._chunks = 0
        self._finished = False
        self._writer_error: Optional[Exception] = None
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_chunks)
        #: Writer-thread spans can't inherit the constructing thread's span
        #: stack, so capture the current span id here and parent wire
        #: writes to it explicitly.
        self._obs_parent = obs.current_context()[1] or None
        self._writer: Optional[threading.Thread] = None
        if not store_and_forward:
            self._writer = threading.Thread(
                target=self._drain, name="skyway-chunk-writer", daemon=True
            )
            self._writer.start()

    # -- traversal-thread side --------------------------------------------

    def feed(self, data: bytes) -> None:
        if self._finished:
            raise TransportError("feed() after finish()")
        self._raise_writer_error()
        self._staging.extend(data)
        while len(self._staging) >= self._chunk_bytes:
            chunk = bytes(self._staging[:self._chunk_bytes])
            del self._staging[:self._chunk_bytes]
            self._dispatch(chunk)

    def finish(self, total_bytes: int, stream_crc: int) -> None:
        """Flush the tail chunk, wait out the writer, send the TRAILER."""
        if self._finished:
            raise TransportError("finish() called twice")
        self._finished = True
        if self._staging:
            self._dispatch(bytes(self._staging))
            self._staging.clear()
        if self._store_and_forward:
            with self.metrics.phase("send"):
                for chunk in self._held:
                    self._send_chunk(chunk)
            self._held.clear()
        else:
            assert self._writer is not None
            self._queue.put(_CLOSE)
            self._writer.join()
            self._raise_writer_error()
        self._conn.send_frame(
            frames.TRAILER,
            frames.encode_trailer(total_bytes, stream_crc, self._chunks),
        )

    def abort(self) -> None:
        """Tear down the writer without sending a TRAILER (caller is
        abandoning the stream after an error)."""
        self._finished = True
        if self._writer is not None and self._writer.is_alive():
            self._queue.put(_CLOSE)
            self._writer.join()

    # -- internals ---------------------------------------------------------

    def _dispatch(self, chunk: bytes) -> None:
        self._chunks += 1
        if self._store_and_forward:
            self._held.append(chunk)
            return
        try:
            self._queue.put_nowait(chunk)
        except queue.Full:
            start = time.perf_counter()
            with obs.span("pipeline.stall", bytes=len(chunk)):
                self._queue.put(chunk)
            self.metrics.note_stall(time.perf_counter() - start)
        self._raise_writer_error()

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is _CLOSE:
                return
            if self._writer_error is not None:
                continue  # swallow the rest; feed()/finish() re-raise
            try:
                self._send_chunk(item)
            except Exception as exc:  # surfaces on the feeding thread
                self._writer_error = exc

    def _send_chunk(self, chunk: bytes) -> None:
        started = time.perf_counter()
        with obs.span("wire.write", parent=self._obs_parent,
                      bytes=len(chunk)):
            self._conn.send_frame(frames.DATA, chunk)
        self.metrics.note_chunk_sent()
        if self._pace:
            budget = len(chunk) / self._pace
            elapsed = time.perf_counter() - started
            if elapsed < budget:
                time.sleep(budget - elapsed)

    def _raise_writer_error(self) -> None:
        if self._writer_error is not None:
            error = self._writer_error
            if isinstance(error, TransportError):
                raise error
            raise TransportClosed(f"chunk writer failed: {error}") from error

    @property
    def chunks(self) -> int:
        return self._chunks


def pump_stream(connection: FrameConnection, decoder,
                metrics: Optional[TransportMetrics] = None) -> int:
    """The ``transport=`` source for :class:`SkywayObjectInputStream`.

    Reads DATA frames, feeding each payload to the incremental stream
    decoder as it lands (placement overlaps arrival), until the TRAILER —
    then cross-checks byte count, whole-stream CRC32, and chunk count.
    Returns total stream bytes received.
    """
    if metrics is None:
        metrics = connection.metrics
    running_crc = 0
    total = 0
    chunks = 0
    while True:
        payload = connection.expect_frame_oneof((frames.DATA, frames.TRAILER))
        ftype, body = payload
        if ftype == frames.DATA:
            chunks += 1
            total += len(body)
            running_crc = zlib.crc32(body, running_crc)
            metrics.note_chunk_received()
            decoder.feed(body)
            continue
        expected_total, expected_crc, expected_chunks = frames.decode_trailer(body)
        if total != expected_total:
            raise TransportClosed(
                f"trailer promised {expected_total} stream bytes, "
                f"received {total}"
            )
        if chunks != expected_chunks:
            raise TransportClosed(
                f"trailer promised {expected_chunks} chunks, received {chunks}"
            )
        if running_crc != expected_crc:
            raise TransportClosed(
                f"whole-stream CRC mismatch: trailer {expected_crc:#010x}, "
                f"received {running_crc:#010x}"
            )
        return total
