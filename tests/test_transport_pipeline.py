"""Chunk pipeline mechanics: exact chunking, mode equivalence, stall
accounting, writer-thread error propagation, and the receive pump's
trailer cross-checks — all without a worker process (a recording fake and
``socket.socketpair`` keep these deterministic and fast).  The end-to-end
"pipelining actually overlaps" measurement lives in the transport
benchmark."""

import socket
import threading
import zlib

import pytest

from repro.transport import frames
from repro.transport.connection import FrameConnection
from repro.transport.errors import (
    RemoteWorkerError,
    TransportClosed,
    TransportError,
)
from repro.transport.metrics import TransportMetrics
from repro.transport.pipeline import ChunkPipeline, pump_stream


class RecordingConnection:
    """A ChunkPipeline-shaped sink that records frames instead of sending.

    ``delay_per_frame`` simulates a slow wire (for stall tests);
    ``fail_after`` raises on the Nth send (for writer-error tests).
    """

    def __init__(self, delay_per_frame=0.0, fail_after=None, error=None):
        self.metrics = TransportMetrics()
        self.frames = []
        self.delay_per_frame = delay_per_frame
        self.fail_after = fail_after
        self.error = error or TransportClosed("injected send failure")

    def send_frame(self, ftype, payload=b""):
        if self.fail_after is not None and len(self.frames) >= self.fail_after:
            raise self.error
        if self.delay_per_frame:
            import time
            time.sleep(self.delay_per_frame)
        self.frames.append((ftype, bytes(payload)))


def _run(conn, payload_pieces, total, chunk_bytes=4096, **kwargs):
    pipeline = ChunkPipeline(conn, chunk_bytes=chunk_bytes, **kwargs)
    crc = 0
    for piece in payload_pieces:
        pipeline.feed(piece)
        crc = zlib.crc32(piece, crc)
    pipeline.finish(total, crc)
    return pipeline


@pytest.mark.parametrize("store", [False, True],
                         ids=["pipelined", "store_and_forward"])
def test_exact_chunking_and_trailer(store):
    conn = RecordingConnection()
    data = bytes(range(256)) * 40  # 10240 bytes; odd-sized feeds
    pieces = [data[:3000], data[3000:3001], data[3001:9000], data[9000:]]
    pipeline = _run(conn, pieces, len(data), chunk_bytes=4096,
                    store_and_forward=store)
    types = [t for t, _ in conn.frames]
    assert types == [frames.DATA, frames.DATA, frames.DATA, frames.TRAILER]
    bodies = [p for t, p in conn.frames if t == frames.DATA]
    assert [len(b) for b in bodies] == [4096, 4096, 2048]
    assert b"".join(bodies) == data
    assert frames.decode_trailer(conn.frames[-1][1]) == \
        (len(data), zlib.crc32(data), 3)
    assert pipeline.chunks == 3


def test_modes_emit_identical_frame_sequences():
    data = b"skyway" * 5000
    results = []
    for store in (False, True):
        conn = RecordingConnection()
        _run(conn, [data[:7777], data[7777:]], len(data), chunk_bytes=1024,
             store_and_forward=store)
        results.append(conn.frames)
    assert results[0] == results[1]


def test_queue_full_stalls_are_counted():
    """A slow wire with a 1-deep queue must block the feeding thread and
    count every blocked enqueue as a stall."""
    conn = RecordingConnection(delay_per_frame=0.005)
    _run(conn, [b"x" * 640], 640, chunk_bytes=64, queue_chunks=1)
    assert conn.metrics.queue_full_stalls > 0
    assert conn.metrics.stall_seconds > 0.0
    assert conn.metrics.chunks_sent == 10


def test_writer_error_surfaces_on_finish():
    conn = RecordingConnection(fail_after=0)
    pipeline = ChunkPipeline(conn, chunk_bytes=8)
    pipeline.feed(b"abcdefgh")  # dispatched; the writer thread will fail
    with pytest.raises(TransportClosed, match="injected"):
        pipeline.finish(8, zlib.crc32(b"abcdefgh"))


def test_writer_error_surfaces_while_feeding():
    conn = RecordingConnection(fail_after=0)
    pipeline = ChunkPipeline(conn, chunk_bytes=8, queue_chunks=1)
    with pytest.raises(TransportClosed, match="injected"):
        # The bounded queue forces feed() to interleave with the (failing)
        # writer, so the error surfaces here rather than at finish().
        for _ in range(1000):
            pipeline.feed(b"abcdefgh")
    pipeline.abort()


def test_non_transport_writer_error_is_wrapped():
    conn = RecordingConnection(fail_after=0, error=ValueError("boom"))
    pipeline = ChunkPipeline(conn, chunk_bytes=8)
    pipeline.feed(b"abcdefgh")
    with pytest.raises(TransportClosed, match="chunk writer failed"):
        pipeline.finish(8, zlib.crc32(b"abcdefgh"))


def test_feed_after_finish_is_refused():
    conn = RecordingConnection()
    pipeline = _run(conn, [b"data"], 4)
    with pytest.raises(TransportError, match="feed\\(\\) after finish"):
        pipeline.feed(b"more")
    with pytest.raises(TransportError, match="finish\\(\\) called twice"):
        pipeline.finish(4, 0)


# ---------------------------------------------------------------------------
# pump_stream over a real socketpair
# ---------------------------------------------------------------------------

class _Sink:
    def __init__(self):
        self.data = bytearray()

    def feed(self, chunk):
        self.data.extend(chunk)


def _pump_against(sender_script):
    """Run ``sender_script(FrameConnection)`` in a thread against one end
    of a socketpair; pump the other end and return (result-or-raise, sink)."""
    left, right = socket.socketpair()
    send_conn = FrameConnection(left, read_timeout=5.0)
    recv_conn = FrameConnection(right, read_timeout=5.0)
    sink = _Sink()
    thread = threading.Thread(target=sender_script, args=(send_conn,))
    thread.start()
    try:
        return pump_stream(recv_conn, sink), sink
    finally:
        thread.join()
        send_conn.close()
        recv_conn.close()


def test_pump_stream_happy_path():
    data = b"payload" * 1000

    def sender(conn):
        conn.send_frame(frames.DATA, data[:4096])
        conn.send_frame(frames.DATA, data[4096:])
        conn.send_frame(
            frames.TRAILER,
            frames.encode_trailer(len(data), zlib.crc32(data), 2),
        )

    total, sink = _pump_against(sender)
    assert total == len(data)
    assert bytes(sink.data) == data


@pytest.mark.parametrize("trailer,expect", [
    ((5, 0, 1), "promised 5 stream bytes"),
    ((4, 0, 2), "promised 2 chunks"),
    ((4, 0xBADBAD, 1), "CRC mismatch"),
], ids=["total", "chunks", "crc"])
def test_pump_stream_rejects_bad_trailers(trailer, expect):
    def sender(conn):
        conn.send_frame(frames.DATA, b"data")
        conn.send_frame(frames.TRAILER, frames.encode_trailer(*trailer))

    with pytest.raises(TransportClosed, match=expect):
        _pump_against(sender)


def test_pump_stream_surfaces_remote_error_mid_stream():
    def sender(conn):
        conn.send_frame(frames.DATA, b"data")
        conn.send_frame(
            frames.ERROR,
            frames.encode_error("SkywayStreamError", "remote decode blew up"),
        )

    with pytest.raises(RemoteWorkerError, match="remote decode blew up"):
        _pump_against(sender)


def test_pump_stream_peer_death_is_typed():
    def sender(conn):
        conn.send_frame(frames.DATA, b"data")
        conn.close()  # vanish without a TRAILER

    with pytest.raises(TransportClosed):
        _pump_against(sender)
