"""One simulated JVM process.

Owns a managed heap, a class loader, a GC, a handle (root) table, a
simulated clock, and — when Skyway is attached — the Skyway runtime.  All
allocation should go through :meth:`JVM.new_instance` / :meth:`JVM.new_array`
so that an out-of-memory condition triggers collection exactly as HotSpot
would: scavenge, retry, full collection, retry, then a hard OOM.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
import weakref
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.heap.gc import GarbageCollector
from repro.heap.handles import Handle, HandleTable
from repro.heap.heap import MB, ManagedHeap, NULL, OutOfMemoryError
from repro.heap.klass import Klass
from repro.heap.layout import BASELINE_LAYOUT, HeapLayout, SKYWAY_LAYOUT
from repro.simtime import Category, CostModel, DEFAULT_COST_MODEL, SimClock
from repro.types.classdef import ClassPath
from repro.types.corelib import standard_classpath
from repro.types.loader import ClassLoader


_jvm_obs_ids = itertools.count(1)


class JVM:
    """A managed runtime instance ("node-local JVM process")."""

    def __init__(
        self,
        name: str = "jvm",
        classpath: Optional[ClassPath] = None,
        layout: HeapLayout = SKYWAY_LAYOUT,
        young_bytes: int = 4 * MB,
        old_bytes: int = 64 * MB,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        clock: Optional[SimClock] = None,
        hash_seed: int = 0x5EED,
    ) -> None:
        self.name = name
        self.classpath = classpath if classpath is not None else standard_classpath()
        self.layout = layout
        self.heap = ManagedHeap(layout, young_bytes=young_bytes, old_bytes=old_bytes)
        self.loader = ClassLoader(self.classpath, layout)
        self.heap.klass_resolver = self.loader.by_klass_id
        self.handles = HandleTable()
        self.gc = GarbageCollector(self.heap, self.handles)
        self.clock = clock if clock is not None else SimClock(name)
        self.cost_model = cost_model
        self._hash_rng = random.Random(hash_seed ^ hash(name))
        #: Attached Skyway runtime, if any (set by SkywayRuntime.attach).
        self.skyway: Optional[Any] = None
        # GC pauses and tallies feed the obs snapshot alongside the wire
        # ledgers; keyed uniquely so same-named JVMs don't collide, and
        # held through a weakref so the registry never pins a heap alive.
        ref = weakref.ref(self)

        def _gc_source() -> dict:
            jvm = ref()
            if jvm is None:
                return {"collected": True}
            return {
                "jvm": jvm.name,
                "sim_seconds": jvm.clock.total(),
                **dataclasses.asdict(jvm.gc.stats),
            }

        obs.registry().register_source(
            f"gc.{name}#{next(_jvm_obs_ids)}", _gc_source
        )

    # ------------------------------------------------------------------
    # allocation with GC
    # ------------------------------------------------------------------

    def new_instance(self, class_name: str, charge: bool = True) -> int:
        klass = self.loader.load(class_name)
        if klass.is_array:
            raise TypeError(f"use new_array for array class {class_name}")
        return self._allocate(lambda old: self.heap.allocate(klass, old_gen=old), charge)

    def new_array(self, element_descriptor: str, length: int, charge: bool = True) -> int:
        klass = self.loader.load("[" + element_descriptor)
        return self._allocate(
            lambda old: self.heap.allocate(klass, array_length=length, old_gen=old),
            charge,
        )

    def _allocate(self, attempt: Callable[[bool], int], charge: bool) -> int:
        if charge:
            self.clock.charge(self.cost_model.object_alloc)
        try:
            return attempt(False)
        except OutOfMemoryError:
            pass
        try:
            self.gc.minor()
            return attempt(False)
        except OutOfMemoryError:
            # A failed scavenge (promotion with a full old generation) or a
            # still-full eden both fall through to the slower paths.
            pass
        # Large objects (or a full young gen) go straight to the old gen.
        try:
            return attempt(True)
        except OutOfMemoryError:
            pass
        try:
            self.gc.full()
            return attempt(True)
        except OutOfMemoryError as exc:
            raise OutOfMemoryError(f"{self.name}: heap exhausted") from exc

    # ------------------------------------------------------------------
    # roots
    # ------------------------------------------------------------------

    def pin(self, address: int) -> Handle:
        """Create a GC root keeping ``address`` (and its graph) alive."""
        return self.handles.create(address)

    def unpin(self, handle: Handle) -> None:
        self.handles.release(handle)

    # ------------------------------------------------------------------
    # object services
    # ------------------------------------------------------------------

    def klass_of(self, address: int) -> Klass:
        return self.heap.klass_of(address)

    def identity_hash(self, address: int) -> int:
        """Identity hashcode, lazily computed and cached in the mark word."""
        return self.heap.identity_hash(address, self._hash_rng.getrandbits(31).__int__)

    def get_field(self, address: int, field_name: str):
        """Direct (compiled) field read — no reflection charge."""
        klass = self.klass_of(address)
        return self.heap.read_field(address, klass.field(field_name))

    def set_field(self, address: int, field_name: str, value) -> None:
        klass = self.klass_of(address)
        self.heap.write_field(address, klass.field(field_name), value)

    # String support ------------------------------------------------------

    def new_string(self, text: str, charge: bool = True) -> int:
        """Allocate a java.lang.String backed by a char[] (UTF-16 units)."""
        units = _utf16_units(text)
        chars = self.new_array("C", len(units), charge=charge)
        pin = self.pin(chars)
        try:
            for i, unit in enumerate(units):
                self.heap.write_element(chars, i, unit)
            string = self.new_instance("java.lang.String", charge=charge)
            self.set_field(string, "value", pin.address)
            self.set_field(string, "hash", _java_string_hash(text))
        finally:
            self.unpin(pin)
        return string

    def read_string(self, address: int) -> str:
        klass = self.klass_of(address)
        if klass.name != "java.lang.String":
            raise TypeError(f"not a String: {klass.name}")
        chars = self.get_field(address, "value")
        if chars == NULL:
            return ""
        units = [
            self.heap.read_element(chars, i)
            for i in range(self.heap.array_length(chars))
        ]
        return _units_to_str(units)

    # diagnostics ----------------------------------------------------------

    def heap_usage(self) -> Dict[str, int]:
        return {r.name: r.used for r in self.heap.regions()}

    def heap_histogram(self) -> List[tuple]:
        """Per-class live-object census (the ``jmap -histo`` analog):
        ``[(class_name, instances, bytes), ...]`` sorted by bytes desc."""
        census: Dict[str, List[int]] = {}
        for address in self.heap.live_objects():
            klass = self.heap.klass_of(address)
            row = census.setdefault(klass.name, [0, 0])
            row[0] += 1
            row[1] += self.heap.object_size(address)
        return sorted(
            ((name, count, total) for name, (count, total) in census.items()),
            key=lambda row: -row[2],
        )

    def charge(self, seconds: float, category: Optional[Category] = None) -> None:
        self.clock.charge(seconds, category)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JVM({self.name}, used={self.heap.used_bytes} bytes)"


def baseline_jvm(name: str = "jvm", **kwargs) -> JVM:
    """A JVM with the unmodified (no-baddr) heap layout."""
    return JVM(name, layout=BASELINE_LAYOUT, **kwargs)


def _utf16_units(text: str) -> List[int]:
    data = text.encode("utf-16-le")
    return [
        int.from_bytes(data[i : i + 2], "little") for i in range(0, len(data), 2)
    ]


def _units_to_str(units: List[int]) -> str:
    raw = b"".join(u.to_bytes(2, "little") for u in units)
    return raw.decode("utf-16-le")


def _java_string_hash(text: str) -> int:
    h = 0
    for unit in _utf16_units(text):
        h = (31 * h + unit) & 0xFFFFFFFF
    if h >= 1 << 31:
        h -= 1 << 32
    return h
