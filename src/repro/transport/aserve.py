"""The async worker front-end: one event loop, thousands of channels.

The thread-per-connection server (:class:`~repro.transport.worker
.WorkerServer.serve_forever`) spends its concurrency budget on OS threads
and its cycles on lock convoys — at a thousand delta channels it is the
saturation wall the managed-server-throughput literature predicts.  This
module serves the *same wire protocol* from a single ``selectors`` event
loop instead:

* **Non-blocking frame codec.**  Each connection owns a
  :class:`~repro.transport.frames.FrameDecoder` (already incremental) and
  an outbound byte buffer; the loop reads/writes whatever the kernel will
  take and the state machine advances one complete frame at a time.

* **Per-connection → per-channel state machine.**  The classic per-call
  protocol (HELLO → TRACE? → CALL → DATA*/TRAILER → RESULT) is served
  exactly as the threaded worker does, one op in flight per connection.
  On top of it, a *multiplexed* mode: an EPOCH frame arriving with no
  classic op active opens a per-channel stream, ``MUX_DATA`` frames
  (channel id + chunk) interleave freely across channels on one socket,
  and ``MUX_TRAILER`` completes a channel's stream.  Each completed epoch
  answers its own RESULT tagged ``channel_id`` — possibly out of order
  with other channels, which is the point.

* **Bounded queues, real backpressure.**  Completed-but-unapplied epochs
  sit in a per-connection ready queue with per-channel pending caps and a
  byte high-water mark; crossing either pauses *reads* on that socket
  (the selector drops read interest) until the loop drains below the
  low-water mark.  A slow worker therefore pushes back through TCP flow
  control instead of buffering unboundedly.  One progress guard keeps
  this deadlock-free: a paused connection whose ready queue is *empty*
  (every buffered byte belongs to still-open interleaved streams, which
  only more reads can complete) resumes immediately — over the mark,
  reads throttle to apply progress rather than stopping outright.

* **Identical heap effects.**  Every byte that mutates the heap goes
  through the same ``WorkerServer.complete_*`` path the threaded ops use,
  under the same state lock, producing the same digests, tallies, and
  clock accounting.  The threaded front-end stays available behind
  ``WorkerSpec(serve_mode="threads")`` as the executable spec.

* **One process, one loop.**  The cluster heartbeat
  (:meth:`WorkerMembership.beat_once`) fires from the loop on the jittered
  cadence, and peer-mode ops (``send_peer``, blob routing) run on the loop
  like any other op — a fleet worker has no second thread.

Failure taxonomy: protocol-fatal conditions (CRC mismatch, unknown frame,
trailer total/CRC/count mismatch, unknown op) answer one ERROR frame and
close the connection, exactly like the threaded worker.  In mux mode a
*per-channel* failure — above all :class:`DeltaStaleError`, the NACK — is
answered as a RESULT with ``ok=false`` naming the error kind, so one stale
channel cannot kill the other thousand sharing the socket.

Divergence from the threaded worker, by design: an idle connection with
no op or stream in flight is kept open indefinitely (the threaded worker
reaps it after ``read_timeout``); only a connection stalled *mid-stream*
is timed out.
"""

from __future__ import annotations

import select
import selectors
import socket
import threading
import time
import zlib
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.streams import IncrementalStreamDecoder
from repro.transport import frames, registry_sync
from repro.transport.bootstrap import bind_listener
from repro.transport.connection import connect_with_retry
from repro.transport.errors import (
    FrameCorruptionError,
    RemoteWorkerError,
    TransportClosed,
    TransportError,
    TransportTimeout,
)
from repro.transport.metrics import TransportMetrics
from repro.transport.worker import WorkerServer, WorkerSpec, _BlobSink

#: Chunk size for multiplexed streams.  Smaller than the classic pipeline
#: default on purpose: mux chunks are the interleaving quantum, and a
#: thousand channels sharing one socket round-robin at this granularity.
DEFAULT_MUX_CHUNK_BYTES = 32 * 1024

#: Completed epochs a single channel may have waiting in the ready queue
#: before its connection's reads pause.
MAX_PENDING_EPOCHS = 4

#: Byte high-water mark across one connection's open mux streams and
#: ready queue; crossing it pauses reads, draining below half resumes.
HIGH_WATER_BYTES = 4 * 1024 * 1024

#: Epochs applied per loop tick.  Bounding the batch is what makes the
#: backpressure real: arrival can outrun application, so the queues (and
#: then the socket) are where the excess shows up, not the heap.
APPLY_BATCH = 16

_STREAM_OPS = ("recv_graph", "recv_blob", "recv_epoch", "put_blob")

_IDLE, _EPOCH_HEADER, _STREAM = "idle", "epoch_header", "stream"


class _MuxStream:
    """One in-flight multiplexed channel stream on one connection."""

    __slots__ = ("channel_id", "epoch", "kind", "buf", "crc", "chunks",
                 "error", "started")

    def __init__(self, channel_id: int, epoch: int, kind: int) -> None:
        self.channel_id = channel_id
        self.epoch = epoch
        self.kind = kind
        self.buf = bytearray()
        self.crc = 0
        self.chunks = 0
        #: EPOCH-header arrival stamp; trailer-minus-this is the stream's
        #: receive duration — the telemetry series straggler detection
        #: reads (a paced wire stretches the chunk arrivals in between).
        self.started = time.monotonic()
        #: Set when admission failed at the EPOCH header: chunks are then
        #: counted but discarded, and the trailer answers ok=false.
        self.error: Optional[Tuple[str, str]] = None


class _ReadyEpoch:
    """A reassembled epoch waiting for its turn on the heap."""

    __slots__ = ("channel_id", "epoch", "kind", "data", "stream_bytes",
                 "digest", "enqueued", "receive_s")

    def __init__(self, channel_id: int, epoch: int, kind: int,
                 data: bytes, stream_bytes: int, digest: bool,
                 receive_s: Optional[float] = None) -> None:
        self.channel_id = channel_id
        self.epoch = epoch
        self.kind = kind
        self.data = data
        self.stream_bytes = stream_bytes
        self.digest = digest
        self.enqueued = time.perf_counter()
        self.receive_s = receive_s


class _AsyncConn:
    """Per-connection state: decoder in, byte buffer out, one state
    machine.  ``send_frame`` matches :class:`FrameConnection`'s signature
    so ``WorkerServer._handshake`` (and the non-streaming op handlers)
    work against either front-end unchanged."""

    def __init__(self, server: "AsyncWorkerServer",
                 sock: socket.socket) -> None:
        self._server = server
        self.sock = sock
        self.decoder = frames.FrameDecoder()
        self.out = bytearray()
        self.paused = False
        self.closing = False  # flush outbound, then close
        self.closed = False
        self.registered = False
        self.events = 0
        self.last_activity = time.monotonic()
        # classic (one-op-at-a-time) state
        self.mode = _IDLE
        self.op: Optional[str] = None
        self.call: Optional[dict] = None
        self.sink = None  # IncrementalStreamDecoder or _BlobSink
        self.stream_total = 0
        self.stream_crc = 0
        self.stream_chunks = 0
        self.epoch_header: Optional[Tuple[int, int, int]] = None
        self.epoch_started = 0.0
        self.trace_pending: Optional[Tuple[str, str]] = None
        self.op_trace: Optional[Tuple[str, str]] = None
        # multiplexed state
        self.mux_trace: Optional[Tuple[str, str]] = None
        self.mux_open: Dict[int, _MuxStream] = {}
        self.ready: deque = deque()
        self.pending_per_channel: Dict[int, int] = {}
        self.queued_bytes = 0

    @property
    def mid_op(self) -> bool:
        return self.mode != _IDLE or bool(self.mux_open) or bool(self.ready)

    def send_frame(self, ftype: int, payload: bytes = b"") -> None:
        data = frames.encode_frame(ftype, payload)
        self.out.extend(data)
        self._server.core.metrics.note_frame_sent(len(data))
        self._server._update_interest(self)


class AsyncWorkerServer:
    """The event loop around a :class:`WorkerServer` core.

    The core owns the runtime, metrics, op handlers, and the state lock;
    this class owns sockets, scheduling, and backpressure.  Everything
    that touches the heap funnels through the core's ``complete_*``
    methods, so the two front-ends are bit-identical where it counts.
    """

    def __init__(
        self,
        core: WorkerServer,
        max_pending_epochs: int = MAX_PENDING_EPOCHS,
        high_water_bytes: int = HIGH_WATER_BYTES,
        apply_batch: int = APPLY_BATCH,
        tick: float = 0.05,
    ) -> None:
        self.core = core
        self.max_pending_epochs = max_pending_epochs
        self.high_water_bytes = high_water_bytes
        self.apply_batch = apply_batch
        self.tick = tick
        self.membership = None
        self._next_beat: Optional[float] = None
        #: Test hook: ``False`` parks the ready queues (reads still run
        #: until the high-water mark pauses them) — how the slow-reader
        #: test proves the queue is bounded.
        self.processing_enabled = True
        self._sel: Optional[selectors.BaseSelector] = None
        self._conns: List[_AsyncConn] = []
        self._rr = 0  # round-robin cursor over connections
        self.conns_accepted = 0
        self.epochs_applied = 0
        self.epoch_failures = 0
        self.reads_paused_total = 0
        self.queue_waits: List[float] = []
        # Surface loop counters through the classic ``stats`` op.
        core.aserve_stats = self.stats_snapshot

    def attach_membership(self, membership) -> None:
        """Adopt a registered :class:`WorkerMembership`: the loop beats it
        on the jittered cadence.  Reconnect budgets are tightened — a dead
        coordinator may cost one beat a short stall, never a long one."""
        membership.connect_attempts = 1
        membership.connect_timeout = 0.5
        self.membership = membership
        self._next_beat = time.monotonic() + membership.next_wait()

    def stats_snapshot(self) -> dict:
        waits = sorted(self.queue_waits)
        snap = {
            "conns_accepted": self.conns_accepted,
            "conns_open": len(self._conns),
            "epochs_applied": self.epochs_applied,
            "epoch_failures": self.epoch_failures,
            "reads_paused_total": self.reads_paused_total,
            "queue_wait_samples": len(waits),
        }
        if waits:
            snap["queue_wait_p50_s"] = waits[len(waits) // 2]
            snap["queue_wait_p99_s"] = waits[min(len(waits) - 1,
                                                 int(len(waits) * 0.99))]
        return snap

    # -- the loop ----------------------------------------------------------

    def serve_forever(self, listener: socket.socket) -> None:
        sel = selectors.DefaultSelector()
        self._sel = sel
        listener.setblocking(False)
        sel.register(listener, selectors.EVENT_READ, None)
        try:
            while self.core._running:
                timeout = self.tick
                if self.processing_enabled and any(
                        c.ready for c in self._conns):
                    timeout = 0.0
                elif self._next_beat is not None:
                    timeout = min(timeout,
                                  max(0.0, self._next_beat - time.monotonic()))
                events = sel.select(timeout)
                for key, mask in events:
                    conn = key.data
                    if conn is None:
                        self._accept(listener)
                        continue
                    if conn.closed:
                        continue
                    if mask & selectors.EVENT_READ:
                        self._on_readable(conn)
                    if not conn.closed and mask & selectors.EVENT_WRITE:
                        self._on_writable(conn)
                self._process_ready()
                self._maybe_beat()
                self._reap_stalled()
        finally:
            self._shutdown_flush()
            sel.unregister(listener)
            sel.close()
            self._sel = None

    def shutdown(self) -> None:
        """Ask the loop to exit (the in-process harness path; over the
        wire the classic ``shutdown`` op does the same)."""
        self.core._running = False

    # -- accept / read / write ---------------------------------------------

    def _accept(self, listener: socket.socket) -> None:
        while True:
            try:
                sock, _addr = listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - e.g. AF_UNIX
                pass
            conn = _AsyncConn(self, sock)
            self._conns.append(conn)
            self.conns_accepted += 1
            self._update_interest(conn)

    def _on_readable(self, conn: _AsyncConn) -> None:
        try:
            data = conn.sock.recv(256 * 1024)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        if not data:
            self._close_conn(conn)
            return
        conn.last_activity = time.monotonic()
        conn.decoder.feed(data)
        self._drain_frames(conn)

    def _drain_frames(self, conn: _AsyncConn) -> None:
        while not conn.closing and not conn.closed:
            try:
                frame = conn.decoder.next_frame()
            except FrameCorruptionError as exc:
                self._fail_conn(conn, exc)
                return
            if frame is None:
                return
            ftype, payload = frame
            self.core.metrics.note_frame_received(
                frames.HEADER_BYTES + len(payload)
            )
            try:
                self._handle_frame(conn, ftype, payload)
            except Exception as exc:  # noqa: BLE001 - reported as ERROR frame
                self._fail_conn(conn, exc)
                return

    def _on_writable(self, conn: _AsyncConn) -> None:
        if conn.out:
            try:
                sent = conn.sock.send(memoryview(conn.out))
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._close_conn(conn)
                return
            del conn.out[:sent]
        if not conn.out and conn.closing:
            self._close_conn(conn)
            return
        self._update_interest(conn)

    def _update_interest(self, conn: _AsyncConn) -> None:
        if conn.closed or self._sel is None:
            return
        events = 0
        if not conn.paused and not conn.closing:
            events |= selectors.EVENT_READ
        if conn.out:
            events |= selectors.EVENT_WRITE
        if events == conn.events and conn.registered == bool(events):
            return
        if conn.registered and not events:
            self._sel.unregister(conn.sock)
            conn.registered = False
        elif conn.registered:
            self._sel.modify(conn.sock, events, conn)
        elif events:
            self._sel.register(conn.sock, events, conn)
            conn.registered = True
        conn.events = events

    def _close_conn(self, conn: _AsyncConn) -> None:
        if conn.closed:
            return
        conn.closed = True
        if conn.registered and self._sel is not None:
            try:
                self._sel.unregister(conn.sock)
            except (KeyError, ValueError):  # pragma: no cover
                pass
            conn.registered = False
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover
            pass
        if conn in self._conns:
            self._conns.remove(conn)

    def _fail_conn(self, conn: _AsyncConn, exc: Exception) -> None:
        """Threaded-worker parity: one ERROR frame naming the exception
        type, then the connection closes (after the buffer flushes)."""
        self.core.log.warning(
            "op failed, answering ERROR: %s: %s", type(exc).__name__, exc,
        )
        obs.record("error", error=type(exc).__name__,
                   detail=str(exc)[:200])
        try:
            conn.send_frame(
                frames.ERROR,
                frames.encode_error(type(exc).__name__, str(exc)),
            )
        except TransportError:  # pragma: no cover - encode failure
            pass
        conn.closing = True
        if not conn.out:
            self._close_conn(conn)
        else:
            self._update_interest(conn)

    # -- frame state machine -----------------------------------------------

    def _handle_frame(self, conn: _AsyncConn, ftype: int,
                      payload: bytes) -> None:
        if ftype == frames.HELLO:
            self.core._handshake(conn, payload)
            return
        if ftype == frames.BYE:
            conn.closing = True
            if not conn.out:
                self._close_conn(conn)
            return
        if ftype == frames.TRACE:
            # Record, don't enable: the tracer is process-global and the
            # loop serves many connections, so it is (re-)pointed at a
            # connection's trace only around that connection's own work —
            # a classic CALL at op time (:meth:`_finish_call`), a mux
            # apply at apply time (:meth:`_apply_one`).  Queued applies
            # from other traced connections keep their own trace ids.
            conn.trace_pending = frames.decode_trace(payload)
            conn.mux_trace = conn.trace_pending
            return
        if conn.mode == _STREAM:
            self._on_stream_frame(conn, ftype, payload)
            return
        if conn.mode == _EPOCH_HEADER:
            if ftype != frames.EPOCH:
                raise TransportError(
                    f"protocol violation: expected EPOCH after a "
                    f"recv_epoch CALL, peer sent {frames.frame_name(ftype)}"
                )
            channel_id, epoch, kind = frames.decode_epoch_header(payload)
            self.core._check_channel_id(channel_id)
            conn.epoch_header = (channel_id, epoch, kind)
            conn.epoch_started = time.monotonic()
            conn.sink = _BlobSink()
            conn.mode = _STREAM
            return
        # idle: a fresh classic CALL, or the multiplexed sub-protocol
        if ftype == frames.CALL:
            self._start_call(conn, frames.decode_json(payload, what="CALL"))
            return
        if ftype == frames.EPOCH:
            self._mux_open(conn, payload)
            return
        if ftype == frames.MUX_DATA:
            self._mux_data(conn, payload)
            return
        if ftype == frames.MUX_TRAILER:
            self._mux_trailer(conn, payload)
            return
        raise TransportError(
            f"protocol violation: unexpected {frames.frame_name(ftype)} "
            f"frame between calls"
        )

    def _start_call(self, conn: _AsyncConn, call: dict) -> None:
        op = call.get("op")
        handler = self.core._OPS.get(op)
        if handler is None:
            raise TransportError(f"unknown op {op!r}")
        self.core.log.debug("serving op %s", op)
        conn.op_trace, conn.trace_pending = conn.trace_pending, None
        if op not in _STREAM_OPS:
            self._finish_call(conn, op,
                              lambda: handler(self.core, conn, call))
            return
        # streaming op: arm the assembly state, complete at the TRAILER
        conn.op = op
        conn.call = call
        conn.stream_total = 0
        conn.stream_crc = 0
        conn.stream_chunks = 0
        if op == "recv_graph":
            conn.sink = self.core.start_recv_graph()
            conn.mode = _STREAM
        elif op == "recv_epoch":
            conn.mode = _EPOCH_HEADER
        else:  # recv_blob / put_blob
            if op == "put_blob" and not call.get("key"):
                from repro.cluster.errors import ClusterProtocolError

                raise ClusterProtocolError(
                    "put_blob requires a non-empty key"
                )
            conn.sink = _BlobSink()
            conn.mode = _STREAM

    def _finish_call(self, conn: _AsyncConn, op: str, run) -> None:
        """Run an op body (immediately for plain CALLs, at the TRAILER for
        streaming ones), honoring a pending TRACE exactly as the threaded
        ``_traced_call`` does, and answer the RESULT."""
        if conn.op_trace is not None:
            trace_id, parent_span = conn.op_trace
            conn.op_trace = None
            tracer = obs.enable(
                process=f"worker:{self.core.spec.name}",
                trace_id=trace_id or None,
            )
            tracer.adopt_remote(parent_span or None)
            try:
                mark = tracer.mark()
                with tracer.span(f"worker.{op}",
                                 clock=self.core.runtime.jvm.clock):
                    result = run()
                result["trace"] = tracer.export_payload(tracer.drain(mark))
            finally:
                tracer.clear_remote()
        else:
            result = run()
        conn.send_frame(frames.RESULT, frames.encode_json(result))

    def _on_stream_frame(self, conn: _AsyncConn, ftype: int,
                         payload: bytes) -> None:
        if ftype == frames.DATA:
            conn.stream_chunks += 1
            conn.stream_total += len(payload)
            conn.stream_crc = zlib.crc32(payload, conn.stream_crc)
            self.core.metrics.note_chunk_received()
            with self.core.metrics.phase("receive"), self.core._state_lock:
                conn.sink.feed(payload)
            return
        if ftype != frames.TRAILER:
            raise TransportError(
                f"protocol violation: expected DATA/TRAILER mid-stream, "
                f"peer sent {frames.frame_name(ftype)}"
            )
        expected_total, expected_crc, expected_chunks = \
            frames.decode_trailer(payload)
        if conn.stream_total != expected_total:
            raise TransportClosed(
                f"trailer promised {expected_total} stream bytes, "
                f"received {conn.stream_total}"
            )
        if conn.stream_chunks != expected_chunks:
            raise TransportClosed(
                f"trailer promised {expected_chunks} chunks, received "
                f"{conn.stream_chunks}"
            )
        if conn.stream_crc != expected_crc:
            raise TransportClosed(
                f"whole-stream CRC mismatch: trailer {expected_crc:#010x}, "
                f"received {conn.stream_crc:#010x}"
            )
        op, call, sink = conn.op, conn.call, conn.sink
        total = conn.stream_total
        header = conn.epoch_header
        conn.mode = _IDLE
        conn.op = conn.call = conn.sink = conn.epoch_header = None
        core = self.core
        clock = core.runtime.jvm.clock
        # ``recv.receive`` parity: the threaded worker's span covers its
        # blocking pump; here arrival overlapped the loop, so the span
        # marks the (short) materialization and says so.
        if op == "recv_graph":
            def run():
                with obs.span("recv.receive", clock=clock,
                              stream_bytes=total, overlapped=True):
                    pass
                return core.complete_recv_graph(
                    sink, total, retain=bool(call.get("retain", False)))
        elif op == "recv_blob":
            def run():
                with obs.span("recv.receive", clock=clock,
                              stream_bytes=total, overlapped=True):
                    data = bytes(sink.data)
                return core.complete_recv_blob(data)
        elif op == "put_blob":
            def run():
                with obs.span("recv.receive", clock=clock,
                              stream_bytes=total, overlapped=True):
                    data = bytes(sink.data)
                return core.complete_put_blob(call.get("key"), data)
        else:  # recv_epoch — DeltaStaleError propagates: ERROR + close
            channel_id, epoch, kind = header
            receive_s = time.monotonic() - conn.epoch_started

            def run():
                with obs.span("recv.receive", clock=clock,
                              channel=channel_id, epoch=epoch,
                              stream_bytes=total, overlapped=True):
                    data = bytes(sink.data)
                return core.complete_recv_epoch(
                    channel_id, epoch, kind, data, total,
                    digest=call.get("digest", True),
                    receive_seconds=receive_s)
        self._finish_call(conn, op, run)

    # -- multiplexed streams -----------------------------------------------

    def _mux_open(self, conn: _AsyncConn, payload: bytes) -> None:
        channel_id, epoch, kind = frames.decode_epoch_header(payload)
        if channel_id in conn.mux_open:
            raise TransportError(
                f"protocol violation: channel {channel_id} opened a second "
                f"mux stream before its trailer"
            )
        stream = _MuxStream(channel_id, epoch, kind)
        try:
            self.core._check_channel_id(channel_id)
        except Exception as exc:  # noqa: BLE001 - per-channel, not fatal
            stream.error = (type(exc).__name__, str(exc))
        conn.mux_open[channel_id] = stream

    def _mux_data(self, conn: _AsyncConn, payload: bytes) -> None:
        channel_id, chunk = frames.decode_mux_data(payload)
        stream = conn.mux_open.get(channel_id)
        if stream is None:
            raise TransportError(
                f"protocol violation: MUX_DATA for channel {channel_id} "
                f"with no open stream"
            )
        stream.chunks += 1
        stream.crc = zlib.crc32(chunk, stream.crc)
        self.core.metrics.note_chunk_received()
        if stream.error is None:
            stream.buf.extend(chunk)
            conn.queued_bytes += len(chunk)
            self._maybe_pause(conn)

    def _mux_trailer(self, conn: _AsyncConn, payload: bytes) -> None:
        channel_id, total, crc, chunks, digest = \
            frames.decode_mux_trailer(payload)
        stream = conn.mux_open.get(channel_id)
        if stream is None:
            raise TransportError(
                f"protocol violation: MUX_TRAILER for channel "
                f"{channel_id} with no open stream"
            )
        del conn.mux_open[channel_id]
        if stream.error is not None:
            self.epoch_failures += 1
            kind, message = stream.error
            obs.record("error", error=kind, channel=channel_id,
                       epoch=stream.epoch, detail=message[:200])
            conn.send_frame(frames.RESULT, frames.encode_json({
                "op": "recv_epoch", "ok": False, "channel_id": channel_id,
                "epoch": stream.epoch, "error_kind": kind, "error": message,
            }))
            return
        received = len(stream.buf)
        if received != total or stream.chunks != chunks \
                or stream.crc != crc:
            raise TransportClosed(
                f"mux trailer for channel {channel_id} promised "
                f"{total} bytes / {chunks} chunks / crc {crc:#010x}, "
                f"received {received} / {stream.chunks} / "
                f"{stream.crc:#010x}"
            )
        conn.ready.append(_ReadyEpoch(
            channel_id, stream.epoch, stream.kind, bytes(stream.buf),
            received, digest,
            receive_s=time.monotonic() - stream.started,
        ))
        conn.pending_per_channel[channel_id] = \
            conn.pending_per_channel.get(channel_id, 0) + 1
        self._maybe_pause(conn)

    def _maybe_pause(self, conn: _AsyncConn) -> None:
        if conn.paused or conn.closing or conn.closed:
            return
        over_bytes = conn.queued_bytes >= self.high_water_bytes
        over_count = conn.pending_per_channel and max(
            conn.pending_per_channel.values()) >= self.max_pending_epochs
        if over_bytes or over_count:
            conn.paused = True
            self.reads_paused_total += 1
            self._update_interest(conn)

    def _maybe_resume(self, conn: _AsyncConn) -> None:
        if not conn.paused or conn.closed:
            return
        if not conn.ready:
            # Every buffered byte belongs to a still-open stream: the
            # applier has nothing to drain, so only more reads can make
            # progress — staying paused would deadlock the connection.
            # Resume; the next trailer completed over the mark re-pauses
            # immediately, so reads throttle to apply progress instead of
            # stopping outright.
            conn.paused = False
            self._update_interest(conn)
            return
        if conn.queued_bytes <= self.high_water_bytes // 2 and (
                not conn.pending_per_channel or max(
                    conn.pending_per_channel.values())
                < self.max_pending_epochs):
            conn.paused = False
            self._update_interest(conn)

    def _process_ready(self) -> None:
        """Apply up to ``apply_batch`` queued epochs, round-robin across
        connections.  This is the only place mux bytes touch the heap."""
        if not self.processing_enabled or not self._conns:
            return
        budget = self.apply_batch
        n = len(self._conns)
        for i in range(n):
            conn = self._conns[(self._rr + i) % n]
            while budget > 0 and conn.ready and not conn.closed:
                self._apply_one(conn, conn.ready.popleft())
                budget -= 1
            self._maybe_resume(conn)
            if budget == 0:
                break
        self._rr = (self._rr + 1) % max(1, len(self._conns))

    def _apply_one(self, conn: _AsyncConn, item: _ReadyEpoch) -> None:
        wait = time.perf_counter() - item.enqueued
        self.queue_waits.append(wait)
        if len(self.queue_waits) > 8192:
            del self.queue_waits[:4096]
        obs.registry().observe("aserve.queue_wait_seconds", wait)
        conn.queued_bytes -= item.stream_bytes
        left = conn.pending_per_channel.get(item.channel_id, 1) - 1
        if left > 0:
            conn.pending_per_channel[item.channel_id] = left
        else:
            conn.pending_per_channel.pop(item.channel_id, None)
        tracer = None
        if conn.mux_trace is not None:
            # Point the process-global tracer at *this connection's*
            # trace for the duration of the apply, so interleaved applies
            # from other traced connections don't land under it.
            trace_id, parent_span = conn.mux_trace
            tracer = obs.enable(process=f"worker:{self.core.spec.name}",
                                trace_id=trace_id or None)
            tracer.adopt_remote(parent_span or None)
        try:
            with obs.span("aserve.apply", channel=item.channel_id,
                          epoch=item.epoch, queue_wait_s=wait,
                          clock=self.core.runtime.jvm.clock):
                result = self.core.complete_recv_epoch(
                    item.channel_id, item.epoch, item.kind, item.data,
                    item.stream_bytes, digest=item.digest,
                    receive_seconds=item.receive_s,
                )
            result["ok"] = True
            result["queue_wait_s"] = wait
            self.epochs_applied += 1
        except Exception as exc:  # noqa: BLE001 - per-channel blast radius
            self.epoch_failures += 1
            # Flight-recorder the NACK (DeltaStaleError above all): the
            # next heartbeat ships it, so a dying worker's channel
            # failures survive at the coordinator.
            obs.record("error", error=type(exc).__name__,
                       channel=item.channel_id, epoch=item.epoch,
                       detail=str(exc)[:200])
            result = {
                "op": "recv_epoch", "ok": False,
                "channel_id": item.channel_id, "epoch": item.epoch,
                "error_kind": type(exc).__name__, "error": str(exc),
            }
        finally:
            if tracer is not None:
                tracer.clear_remote()
        try:
            conn.send_frame(frames.RESULT, frames.encode_json(result))
        except TransportError:  # pragma: no cover - oversized result
            self._close_conn(conn)

    # -- housekeeping ------------------------------------------------------

    def _maybe_beat(self) -> None:
        if self.membership is None or self._next_beat is None:
            return
        if time.monotonic() >= self._next_beat:
            self.membership.beat_once()
            self._next_beat = time.monotonic() + self.membership.next_wait()

    def _reap_stalled(self) -> None:
        """Time out connections stalled *mid-stream* (threaded parity:
        its socket read would have raised after ``read_timeout``).  Idle
        connections between ops live forever — that is the divergence a
        thousand persistent channels rely on."""
        timeout = self.core.spec.read_timeout
        if not timeout:
            return
        now = time.monotonic()
        for conn in list(self._conns):
            if (conn.mode != _IDLE or conn.mux_open) and not conn.paused \
                    and now - conn.last_activity > timeout:
                self._fail_conn(conn, TransportTimeout(
                    f"stream stalled for {timeout:.1f}s mid-op"
                ))

    def _shutdown_flush(self) -> None:
        """Best-effort flush of every outbound buffer (above all the
        final shutdown RESULT), then close everything."""
        for conn in list(self._conns):
            if conn.out and not conn.closed:
                try:
                    conn.sock.setblocking(True)
                    conn.sock.settimeout(2.0)
                    conn.sock.sendall(conn.out)
                except OSError:
                    pass
            self._close_conn(conn)


class LocalAsyncWorker:
    """An in-process async worker for tests: the event loop runs on a
    daemon thread inside *this* interpreter, so a test can reach the
    server object (pause processing, read counters) while real sockets
    carry the protocol.  Mirrors ``LocalCoordinator``."""

    def __init__(self, spec: WorkerSpec, **loop_kwargs) -> None:
        self.spec = spec
        self.server = WorkerServer(spec)
        self.loop = AsyncWorkerServer(self.server, **loop_kwargs)
        self._listener = bind_listener(spec.host, spec.port,
                                       backlog=spec.listen_backlog)
        self.host = spec.host
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(
            target=self.loop.serve_forever, args=(self._listener,),
            name=f"aserve-{spec.name}", daemon=True,
        )

    def start(self) -> "LocalAsyncWorker":
        self._thread.start()
        return self

    def stop(self) -> None:
        self.loop.shutdown()
        self._thread.join(timeout=10.0)
        self._listener.close()

    def __enter__(self) -> "LocalAsyncWorker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class MuxEpochClient:
    """Driver-side endpoint of the multiplexed sub-protocol: one socket,
    many concurrent channel streams.

    ``send_epochs`` interleaves every channel's EPOCH header, MUX_DATA
    chunks, and MUX_TRAILER on the single connection (round-robin by
    default, caller-shuffled for the fuzz tests), draining RESULT frames
    as they arrive — each result is matched back to its channel by the
    ``channel_id`` the worker tags it with, and per-channel latency is
    measured trailer-written → result-read.

    Failures follow the mux taxonomy: a per-channel ``ok=false`` RESULT
    is returned to the caller (or raised as :class:`RemoteWorkerError` by
    the single-channel :meth:`send_epoch`), while an ERROR frame means
    the connection is dead and raises immediately.
    """

    def __init__(
        self,
        runtime,
        host: str,
        port: int,
        node_name: str = "driver",
        connect_timeout: float = 2.0,
        connect_attempts: int = 1,
        connect_backoff: float = 0.05,
        read_timeout: float = 60.0,
        chunk_bytes: int = DEFAULT_MUX_CHUNK_BYTES,
        metrics: Optional[TransportMetrics] = None,
    ) -> None:
        self.runtime = runtime
        self.host = host
        self.port = port
        self.node_name = node_name
        self.chunk_bytes = chunk_bytes
        self.metrics = metrics if metrics is not None else TransportMetrics()
        self._connect_timeout = connect_timeout
        self._connect_attempts = connect_attempts
        self._connect_backoff = connect_backoff
        self._read_timeout = read_timeout
        self._sock: Optional[socket.socket] = None
        self._decoder = frames.FrameDecoder()
        self._synced_names: Optional[frozenset] = None
        self._traced = False
        self.peer_name: Optional[str] = None

    # -- connection --------------------------------------------------------

    def connect(self) -> "MuxEpochClient":
        with self.metrics.phase("connect"):
            sock = connect_with_retry(
                self.host, self.port,
                connect_timeout=self._connect_timeout,
                attempts=self._connect_attempts,
                backoff=self._connect_backoff,
                metrics=self.metrics,
            )
        sock.settimeout(self._read_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover
            pass
        self._sock = sock
        self._decoder = frames.FrameDecoder()
        self._synced_names = None
        self._traced = False
        self._sync_registry()
        return self

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._send_raw(frames.encode_frame(frames.BYE, b""))
        except TransportError:
            pass
        try:
            self._sock.close()
        finally:
            self._sock = None

    def __enter__(self) -> "MuxEpochClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_sock(self) -> socket.socket:
        if self._sock is None:
            raise TransportError("mux client is not connected")
        return self._sock

    def _send_raw(self, data: bytes) -> None:
        sock = self._require_sock()
        try:
            sock.sendall(data)
        except socket.timeout as exc:
            raise TransportTimeout("timed out sending mux frames") from exc
        except OSError as exc:
            raise TransportClosed(
                f"peer closed while sending mux frames: {exc}"
            ) from exc
        self.metrics.note_frame_sent(len(data))

    def _recv_frame(self, timeout: Optional[float]) -> Optional[Tuple[int, bytes]]:
        """One frame; ``timeout=0`` polls (returns None when nothing is
        buffered or readable), otherwise blocks up to ``timeout``.

        Polling probes readability with ``select`` rather than zeroing
        the socket timeout: the socket must stay blocking so that
        ``sendall`` survives a full kernel send buffer — the stall the
        worker's backpressure deliberately creates — instead of raising
        ``BlockingIOError`` after a partial write."""
        sock = self._require_sock()
        while True:
            frame = self._decoder.next_frame()
            if frame is not None:
                self.metrics.note_frame_received(
                    frames.HEADER_BYTES + len(frame[1])
                )
                return frame
            if timeout == 0.0:
                if not select.select([sock], [], [], 0.0)[0]:
                    return None
            else:
                sock.settimeout(timeout)
            try:
                data = sock.recv(256 * 1024)
            except (BlockingIOError, socket.timeout) as exc:
                if timeout == 0.0:
                    return None
                raise TransportTimeout(
                    "timed out waiting for a mux RESULT"
                ) from exc
            except OSError as exc:
                raise TransportClosed(f"connection reset: {exc}") from exc
            if not data:
                raise TransportClosed(
                    "peer closed the connection mid-conversation"
                )
            self._decoder.feed(data)

    def _sync_registry(self) -> None:
        snapshot = self.runtime.view.snapshot()
        if self._synced_names is not None \
                and frozenset(snapshot) == self._synced_names:
            return
        with self.metrics.phase("handshake"):
            self._send_raw(frames.encode_frame(
                frames.HELLO,
                frames.encode_hello(self.node_name, snapshot),
            ))
            got = self._recv_frame(self._read_timeout)
            ftype, payload = got
            if ftype == frames.ERROR:
                kind, message = frames.decode_error(payload)
                raise RemoteWorkerError(kind, message)
            if ftype != frames.HELLO_ACK:
                raise TransportClosed(
                    f"protocol violation: expected HELLO_ACK, peer sent "
                    f"{frames.frame_name(ftype)}"
                )
            peer, extras = frames.decode_hello_ack(payload)
            merged = registry_sync.merge_registries(snapshot, extras)
            registry_sync.install_merged(self.runtime, merged)
        self.peer_name = peer
        self._synced_names = frozenset(merged)

    def _send_trace_once(self) -> None:
        if self._traced or not obs.enabled():
            return
        trace_id, span_id = obs.current_context()
        self._send_raw(frames.encode_frame(
            frames.TRACE, frames.encode_trace(trace_id, span_id)
        ))
        self._traced = True

    # -- the fan-in send ---------------------------------------------------

    def send_epochs(
        self,
        epochs,
        rng=None,
        flush_bytes: int = 256 * 1024,
    ) -> Dict[int, dict]:
        """Ship many epochs concurrently over the one connection.

        ``epochs`` is an iterable of ``(channel_id, epoch, frame_bytes)``
        or ``(channel_id, epoch, frame_bytes, digest)`` tuples (``digest``
        defaults to True and rides the MUX_TRAILER flags byte).  Frames
        interleave round-robin across channels (in-order within each
        channel — the only ordering the worker requires); pass an ``rng``
        (anything with ``randrange``) to randomize the interleaving
        instead, which is how the fuzz test splices.

        Each channel may appear at most once per call: the worker allows
        one open mux stream per channel, and results are keyed by channel
        id — ship a channel's successive epochs in successive calls.

        Returns ``{channel_id: {"result": <worker RESULT>,
        "latency_s": <trailer-sent → result-read>}}``.  ``ok=false``
        results are returned, not raised — per-channel failures are the
        caller's to triage.
        """
        epochs = list(epochs)
        queues: List[List[Tuple[int, bytes]]] = []
        expected: set = set()
        for entry in epochs:
            channel_id, epoch, frame_bytes = entry[:3]
            digest = entry[3] if len(entry) > 3 else True
            if channel_id in expected:
                raise TransportError(
                    f"send_epochs got channel {channel_id} more than once "
                    f"in one call; a channel allows one open mux stream "
                    f"at a time — ship its epochs in successive calls"
                )
            expected.add(channel_id)
            per = [(0, frames.encode_frame(
                frames.EPOCH,
                frames.encode_epoch_header(
                    channel_id, epoch,
                    frame_bytes[0] if frame_bytes else 0),
            ))]
            for off in range(0, max(len(frame_bytes), 1),
                             self.chunk_bytes):
                chunk = frame_bytes[off:off + self.chunk_bytes]
                per.append((0, frames.encode_frame(
                    frames.MUX_DATA,
                    frames.encode_mux_data(channel_id, chunk),
                )))
            chunks = len(per) - 1
            per.append((channel_id, frames.encode_frame(
                frames.MUX_TRAILER,
                frames.encode_mux_trailer(
                    channel_id, len(frame_bytes),
                    zlib.crc32(frame_bytes), chunks, digest=digest),
            )))
            queues.append(per)
        self._sync_registry()
        self._send_trace_once()

        results: Dict[int, dict] = {}
        sent_at: Dict[int, float] = {}
        out = bytearray()

        def drain(timeout: float) -> None:
            while True:
                frame = self._recv_frame(timeout)
                if frame is None:
                    return
                self._absorb_result(frame, results, sent_at)
                timeout = 0.0  # drain whatever else is buffered

        with obs.span("mux.send_epochs", channels=len(expected),
                      destination=f"{self.host}:{self.port}"):
            while queues:
                if rng is not None:
                    idx = rng.randrange(len(queues))
                else:
                    idx = 0
                queue = queues[idx]
                marker, data = queue.pop(0)
                out.extend(data)
                if not queue:
                    # rotate finished queues out; round-robin rotates the
                    # head to the back so channels interleave
                    queues.pop(idx)
                elif rng is None:
                    queues.append(queues.pop(0))
                if marker:
                    # flush through the trailer so the latency clock
                    # starts when the worker can actually see the stream
                    self._send_raw(bytes(out))
                    out.clear()
                    sent_at[marker] = time.perf_counter()
                    drain(0.0)
                elif len(out) >= flush_bytes:
                    self._send_raw(bytes(out))
                    out.clear()
                    drain(0.0)
            if out:
                self._send_raw(bytes(out))
                out.clear()
            while expected - set(results):
                drain(self._read_timeout)
        return results

    def _absorb_result(self, frame: Tuple[int, bytes],
                       results: Dict[int, dict],
                       sent_at: Dict[int, float]) -> None:
        ftype, payload = frame
        if ftype == frames.ERROR:
            kind, message = frames.decode_error(payload)
            raise RemoteWorkerError(kind, message)
        if ftype != frames.RESULT:
            raise TransportClosed(
                f"protocol violation: expected RESULT, peer sent "
                f"{frames.frame_name(ftype)}"
            )
        result = frames.decode_json(payload, what="RESULT")
        channel_id = result.get("channel_id")
        if channel_id is None:
            raise TransportClosed(
                "mux RESULT carries no channel_id; cannot demultiplex"
            )
        now = time.perf_counter()
        started = sent_at.get(channel_id)
        results[channel_id] = {
            "result": result,
            "latency_s": (now - started) if started is not None else None,
        }

    def send_epoch(self, frame_bytes: bytes, channel_id: int,
                   epoch: int, digest: bool = True) -> dict:
        """The single-channel convenience (the exchange substrate's
        via-mux path): one epoch, blocking, classic error semantics — an
        ``ok=false`` result raises :class:`RemoteWorkerError` with the
        remote kind, so :class:`DeltaStaleError` NACKs surface exactly as
        they do on a classic connection (minus the connection teardown:
        the mux socket survives, no reconnect needed)."""
        outcome = self.send_epochs(
            [(channel_id, epoch, frame_bytes, digest)]
        )[channel_id]
        result = outcome["result"]
        if not result.get("ok", False):
            raise RemoteWorkerError(
                result.get("error_kind", "TransportError"),
                result.get("error", "mux epoch failed"),
            )
        result.setdefault("latency_s", outcome["latency_s"])
        return result

    # -- classic ops over the mux socket -----------------------------------

    def call_op(self, op: str, **params) -> dict:
        """A plain CALL/RESULT op on the mux connection (idle state serves
        the classic protocol unchanged) — ``stats`` is the usual guest."""
        self._send_raw(frames.encode_frame(
            frames.CALL, frames.encode_json({"op": op, **params})
        ))
        got = self._recv_frame(self._read_timeout)
        ftype, payload = got
        if ftype == frames.ERROR:
            kind, message = frames.decode_error(payload)
            raise RemoteWorkerError(kind, message)
        if ftype != frames.RESULT:
            raise TransportClosed(
                f"protocol violation: expected RESULT, peer sent "
                f"{frames.frame_name(ftype)}"
            )
        return frames.decode_json(payload, what="RESULT")

    def stats(self) -> dict:
        return self.call_op("stats")
