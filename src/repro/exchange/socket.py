"""The socket substrate: epochs delivered to a worker process.

A :class:`SocketGraphChannel` frames epochs with the same
:class:`~repro.delta.channel.DeltaSendChannel` the loopback substrate uses
and ships each frame through :meth:`WorkerClient.send_epoch` (CALL + EPOCH
header + DATA chunks + TRAILER).  The worker applies it through *its*
runtime's delta endpoint and answers with receiver roots and a semantic
graph digest — the same handle the loopback receipt carries, so the two
substrates are directly comparable.

NACK recovery, socket edition: a stale receiver (worker restarted, full GC
on the worker heap, epoch gap) answers an ERROR frame naming
``DeltaStaleError`` and closes the connection.  ``send()`` catches exactly
that remote kind, reconnects, forces the next epoch full, and resends —
one ``send()`` call, two wire frames, receipt flagged
``nack_recovered=True``.

The channel also speaks the async worker's multiplexed sub-protocol:
construct it with a :class:`~repro.transport.aserve.MuxEpochClient`
instead of a :class:`WorkerClient` and each epoch ships as EPOCH +
MUX_DATA + MUX_TRAILER over the shared connection.  NACK recovery gets
*cheaper* there — a stale channel comes back as a per-channel ``ok=false``
RESULT, the connection survives, and recovery is just the forced-full
resend (no reconnect).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.core.runtime import SkywayRuntime
from repro.delta.channel import DeltaSendChannel
from repro.exchange.capabilities import (
    ChannelCapabilities,
    DEFAULT_REQUEST,
    SOCKET_OFFER,
)
from repro.exchange.channel import GraphChannel, SendReceipt, collect_roots
from repro.exchange.errors import ExchangeConfigError
from repro.policy import SendPlan
from repro.simtime import Category
from repro.transport.aserve import MuxEpochClient
from repro.transport.client import WorkerClient
from repro.transport.errors import RemoteWorkerError
from repro.transport.pipeline import DEFAULT_CHUNK_BYTES, DEFAULT_QUEUE_CHUNKS


class SocketGraphChannel(GraphChannel):
    """One sending endpoint bound to a worker connection — classic
    (:class:`WorkerClient`, one op at a time) or multiplexed
    (:class:`MuxEpochClient`, sharing the async worker's socket)."""

    substrate = "socket"

    def __init__(
        self,
        runtime: SkywayRuntime,
        client: "WorkerClient | MuxEpochClient",
        requested: ChannelCapabilities = DEFAULT_REQUEST,
        policy=None,
        channel_id: Optional[int] = None,
        destination: Optional[str] = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        queue_chunks: int = DEFAULT_QUEUE_CHUNKS,
        store_and_forward: bool = False,
        throttle_mbps: Optional[float] = None,
    ) -> None:
        dest = destination if destination is not None else (
            client.peer_name or f"{client.host}:{client.port}"
        )
        super().__init__(dest, requested, SOCKET_OFFER)
        if client.runtime is not runtime:
            raise ExchangeConfigError(
                f"client speaks for runtime {client.runtime.jvm.name!r}, "
                f"channel for {runtime.jvm.name!r}"
            )
        self.runtime = runtime
        self.client = client
        self._send_opts = dict(
            chunk_bytes=chunk_bytes, queue_chunks=queue_chunks,
            store_and_forward=store_and_forward, throttle_mbps=throttle_mbps,
        )
        self._channel = DeltaSendChannel(
            runtime,
            destination=dest,
            policy=policy,
            channel_id=channel_id,
            delta_enabled=self.capabilities.delta,
            use_kernels=self.capabilities.kernel,
            capabilities=self.capabilities,
        )

    def rebind(self, client: "WorkerClient | MuxEpochClient") -> None:
        """Point this channel at a replacement connection (typically to a
        restarted worker).  The epoch record is kept: the next delta will
        draw the fresh worker's NACK and converge through the forced-full
        path — which is the behavior under test for restarts."""
        if client.runtime is not self.runtime:
            raise ExchangeConfigError(
                f"replacement client speaks for runtime "
                f"{client.runtime.jvm.name!r}, channel for "
                f"{self.runtime.jvm.name!r}"
            )
        self.client = client

    def recover(self, client: "WorkerClient | MuxEpochClient",
                channel_id: Optional[int] = None) -> None:
        """Rebind to a replacement worker incarnation (the fleet restart
        path): point at the new connection and, when the coordinator
        assigned this channel a fresh id, adopt it.  Either way the next
        epoch is forced FULL — a restarted worker retains nothing, and
        waiting for its NACK would cost an extra round trip."""
        self.rebind(client)
        channel = self._require_open()
        if channel_id is not None:
            channel.reassign(channel_id)
        else:
            channel.force_full_next()

    # ------------------------------------------------------------------

    def _send_impl(self, roots: Sequence[int],
                   digest: Optional[bool] = None,
                   plan: Optional[SendPlan] = None) -> SendReceipt:
        channel = self._require_open()
        roots = collect_roots(roots)
        clock = self.runtime.jvm.clock
        snap = clock.snapshot()
        with clock.phase(Category.SERIALIZATION):
            frame = channel.send(roots, plan=plan)
        executed = channel.last_plan
        if digest is None:
            # No explicit override: the plan decides.
            digest = bool(executed.digest) if executed is not None else False
        decision = channel.last_decision
        wire_bytes = len(frame)
        nack = False
        stalls_before = self.client.metrics.stall_seconds
        started = time.perf_counter()
        try:
            result = self._ship(frame, channel, digest)
        except RemoteWorkerError as exc:
            if exc.kind != "DeltaStaleError":
                raise
            nack = True
            if not isinstance(self.client, MuxEpochClient):
                # The worker closed the connection after the ERROR frame,
                # so recovery is reconnect first, forced-full resend
                # second.  A mux NACK is a per-channel RESULT — the
                # connection survives and the resend goes straight out.
                self.client.close()
                self.client.connect()
            channel.force_full_next()
            with clock.phase(Category.SERIALIZATION):
                frame = channel.send(roots)
            decision = channel.last_decision
            executed = channel.last_plan
            wire_bytes += len(frame)
            started = time.perf_counter()
            result = self._ship(frame, channel, digest)
        # Feed the measured wire back into the engine: bandwidth from the
        # shipped bytes, queue wait from the pipeline's back-pressure
        # stalls during this send.
        channel.engine.observe_transfer(
            channel.channel_id, len(frame),
            time.perf_counter() - started,
            queue_wait_seconds=max(
                0.0, self.client.metrics.stall_seconds - stalls_before
            ),
        )
        self._note_sim(clock.since(snap))
        receipt = SendReceipt(
            mode=decision.mode,
            reason=decision.reason,
            epoch=channel.epoch,
            wire_bytes=wire_bytes,
            frame=frame,
            roots=tuple(result.get("root_addresses", ())),
            digest=result.get("digest"),
            nack_recovered=nack,
            result=result,
            plan=executed,
        )
        return self._account_send(receipt)

    def _ship(self, frame: bytes, channel: DeltaSendChannel,
              digest: bool) -> dict:
        if isinstance(self.client, MuxEpochClient):
            # Chunking is the mux client's own (configured at
            # construction); the classic pipeline knobs don't apply.
            return self.client.send_epoch(
                frame, channel.channel_id, channel.epoch, digest=digest,
            )
        return self.client.send_epoch(
            frame, channel.channel_id, channel.epoch, digest=digest,
            **self._send_opts,
        )

    def _transport_dict(self):
        return self.client.metrics.as_dict()
