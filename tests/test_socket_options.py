"""Transport socket options: every path that opens a TCP socket —
classic frame connections (client, worker, coordinator, and peer sides
all go through ``FrameConnection``), the async loop's accepted sockets,
and the mux client — must set ``TCP_NODELAY``.  Delta epochs are small
frames on the latency path; Nagle batching them behind an unacked
segment would put a 40 ms floor under exactly the p99 B-FANIN
measures."""

import socket

from repro.transport import (
    FrameConnection,
    LocalAsyncWorker,
    MuxEpochClient,
    WorkerClient,
    WorkerSpec,
    connect_with_retry,
)
from repro.transport.testing import SAMPLE_FACTORY


def _nodelay(sock: socket.socket) -> bool:
    return sock.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY) != 0


def test_every_transport_socket_sets_nodelay(transport_driver):
    spec = WorkerSpec(name="nodelay-worker",
                      classpath_factory=SAMPLE_FACTORY)
    with LocalAsyncWorker(spec) as local:
        # The classic chokepoint: FrameConnection's constructor — the
        # client, worker serve loop, coordinator RPC, and peer-transfer
        # sockets are all wrapped in one of these.
        conn = FrameConnection(connect_with_retry(local.host, local.port))
        assert _nodelay(conn.raw_socket)
        conn.close()

        # A full WorkerClient rides the same chokepoint.
        client = WorkerClient(
            transport_driver, local.host, local.port).connect()
        assert _nodelay(client._require_conn().raw_socket)

        # The async loop sets it on every *accepted* socket too.
        assert local.loop._conns, "worker accepted no connection"
        assert all(_nodelay(c.sock) for c in local.loop._conns)
        client.close()

        # And the mux client on its own raw socket.
        mux = MuxEpochClient(
            transport_driver, local.host, local.port).connect()
        assert _nodelay(mux._require_sock())
        mux.close()
