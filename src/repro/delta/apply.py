"""Receiver-side delta apply: patch the retained input buffer in place.

The receive path mirrors §4.3's two passes, restricted to the records in
the frame:

1. **Placement**: NEW payloads are appended to the retained
   :class:`~repro.core.input_buffer.InputBuffer` (the logical cursor
   continues where the previous epoch stopped, so sender-assigned offsets
   land exactly); PATCH payloads overwrite their clone's bytes in place.
2. **Absolutization**: after all NEW objects exist, every placed/patched
   object's tID is swapped back to the local klass word and every
   reference slot rewritten through the buffer's chunk arithmetic.

GC integration is the part §4.3 is explicit about — "update the card table
appropriately to represent new pointers generated from each data
transfer" — and it applies to *every* epoch, not just the first: patched
reference slots and appended chunks hold pointers minor collections have
never seen, so each patched object's span and each NEW object's span is
re-marked in the (old-generation) GC card table.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.core.input_buffer import InputBufferError
from repro.core.output_buffer import LOGICAL_BASE
from repro.core.receiver import ObjectGraphReceiver
from repro.delta.wire import (
    REC_NEW,
    REC_PATCH,
    REC_SAMEREF,
    DeltaFrame,
    DeltaWireError,
)
from repro.heap.layout import KLASS_OFFSET, OBJECT_ALIGNMENT, align_up
from repro.jvm.jvm import JVM


class DeltaApplyError(RuntimeError):
    pass


@dataclasses.dataclass
class ApplyResult:
    """What one applied epoch did to the receiver heap."""

    root_addresses: List[int]
    patched_objects: int
    new_objects: int
    cards_marked_bytes: int


class DeltaApplier:
    """Applies DELTA frames onto one retained receive buffer."""

    def __init__(self, jvm: JVM, receiver: ObjectGraphReceiver, registry_view) -> None:
        self.jvm = jvm
        self.receiver = receiver
        self.view = registry_view

    def apply(self, frame: DeltaFrame) -> ApplyResult:
        jvm = self.jvm
        heap = jvm.heap
        cost = jvm.cost_model
        buffer = self.receiver.buffer

        resident_end = LOGICAL_BASE + buffer.logical_size
        if frame.base_logical_end != resident_end:
            raise DeltaApplyError(
                f"frame expects receiver buffer to end at logical "
                f"{frame.base_logical_end:#x}, buffer ends at {resident_end:#x}"
            )

        # Pass 1 — placement.  NEW objects must land at the sender-assigned
        # offsets; PATCH payloads overwrite in place (klass slot still holds
        # the wire tID until pass 2).
        to_absolutize: List[Tuple[int, bytes]] = []  # (physical, payload)
        cursor = resident_end
        patched = 0
        placed = 0
        for record in frame.records:
            if record.tag == REC_SAMEREF:
                self._translate(record.offset)  # validates the reference
                continue
            if record.tag == REC_NEW:
                if record.offset != cursor:
                    raise DeltaApplyError(
                        f"NEW record at {record.offset:#x} but append "
                        f"cursor is at {cursor:#x}"
                    )
                address = buffer.append(record.payload)
                cursor += align_up(len(record.payload), OBJECT_ALIGNMENT)
                placed += 1
            elif record.tag == REC_PATCH:
                address = self._translate(record.offset)
                expected = heap.object_size(address)
                if align_up(len(record.payload), OBJECT_ALIGNMENT) != align_up(
                    expected, OBJECT_ALIGNMENT
                ):
                    raise DeltaApplyError(
                        f"PATCH at {record.offset:#x} carries "
                        f"{len(record.payload)} bytes for a "
                        f"{expected}-byte object"
                    )
                heap.write_bytes(address, record.payload)
                patched += 1
            else:  # pragma: no cover - parse_frame rejects unknown tags
                raise DeltaWireError(f"unknown record tag {record.tag}")
            jvm.clock.charge(cost.memcpy(len(record.payload)))
            to_absolutize.append((address, record.payload))
        if cursor != frame.new_logical_end:
            raise DeltaApplyError(
                f"frame promised logical end {frame.new_logical_end:#x}, "
                f"append cursor reached {cursor:#x}"
            )

        # Pass 2 — absolutization over exactly the touched objects.
        cards_marked = 0
        for address, payload in to_absolutize:
            jvm.clock.charge(cost.skyway_receive_object)
            tid = int.from_bytes(payload[KLASS_OFFSET : KLASS_OFFSET + 8], "little")
            klass = jvm.loader.load(self.view.name_for(tid))
            if klass.klass_id is None:  # pragma: no cover - loader invariant
                raise DeltaApplyError(f"klass {klass.name} not installed")
            heap.write_klass_word(address, klass.klass_id)
            for offset in heap.reference_offsets(address):
                relative = heap.read_word(address + offset)
                jvm.clock.charge(cost.skyway_pointer_fixup)
                if relative == 0:
                    continue
                heap.write_word(address + offset, self._translate(relative))
            # §4.3 GC integration, per epoch: the patched/appended span
            # carries pointers the card table has never seen.
            span = heap.object_size(address)
            heap.card_table.mark_range(address, span)
            jvm.clock.charge(cost.card_table_update)
            cards_marked += span

        roots = [self._root_address(offset) for offset in frame.roots]
        return ApplyResult(
            root_addresses=roots,
            patched_objects=patched,
            new_objects=placed,
            cards_marked_bytes=cards_marked,
        )

    def _translate(self, logical: int) -> int:
        try:
            return self.receiver.buffer.translate(logical)
        except InputBufferError as exc:
            raise DeltaApplyError(f"bad buffer offset {logical:#x}") from exc

    def _root_address(self, logical: int) -> int:
        if logical == 0:
            return 0
        return self._translate(logical)
