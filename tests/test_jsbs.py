"""Tests for the JSBS dataset, library catalog, and harness."""

import pytest

from repro.jsbs.harness import run_jsbs
from repro.jsbs.libraries import LIBRARY_CATALOG, build_serializer, catalog_by_name
from repro.jsbs.media import (
    install_media_classes,
    make_media_content,
    media_content_value,
)
from repro.jvm.jvm import JVM
from repro.jvm.marshal import from_heap
from repro.serial.kryo import KryoRegistrator
from repro.serial.schema_compiled import CycleError, SchemaCompiledSerializer
from repro.types.classdef import ClassPath
from repro.types.corelib import install_core_classes


def media_jvm(name="jsbs"):
    cp = install_media_classes(install_core_classes(ClassPath()))
    return JVM(name, classpath=cp)


class TestMediaDataset:
    def test_structure(self):
        jvm = media_jvm()
        addr = make_media_content(jvm, 0)
        back = from_heap(jvm, addr)
        assert back.class_name == "data.media.MediaContent"
        assert back["media"]["format"] == "video/mpg4"
        assert len(back["images"]) >= 2
        assert back["media"]["persons"][:2] == ["Bill Gates", "Steve Jobs"]

    def test_deterministic(self):
        assert media_content_value(3).fields["media"]["duration"] == \
            media_content_value(3).fields["media"]["duration"]

    def test_varied_by_index(self):
        a = media_content_value(0).fields["media"]["uri"]
        b = media_content_value(1).fields["media"]["uri"]
        assert a != b


class TestSchemaCompiledSerializer:
    def _reg(self):
        reg = KryoRegistrator()
        for n in ("data.media.MediaContent", "data.media.Media",
                  "data.media.Image"):
            reg.register(n)
        return reg

    def test_roundtrip_media(self):
        src, dst = media_jvm("s"), media_jvm("d")
        ser = SchemaCompiledSerializer()
        addr = make_media_content(src, 1)
        received = ser.deserialize(dst, ser.serialize(src, addr))
        assert from_heap(dst, received).fields["media"]["bitrate"] == 262_144

    def test_rejects_cycles(self):
        cp = install_core_classes(ClassPath())
        cp.define("Node", [("next", "LNode;")])
        jvm = JVM("c", classpath=cp)
        a, b = jvm.new_instance("Node"), jvm.new_instance("Node")
        jvm.set_field(a, "next", b)
        jvm.set_field(b, "next", a)
        with pytest.raises(CycleError):
            SchemaCompiledSerializer().serialize(jvm, a)

    def test_more_compact_than_kryo(self):
        from repro.serial.kryo import KryoSerializer
        src = media_jvm("s")
        addr = make_media_content(src, 0)
        schema_bytes = len(SchemaCompiledSerializer().serialize(src, addr))
        kryo_bytes = len(
            KryoSerializer(self._reg(), registration_required=False)
            .serialize(src, addr)
        )
        assert schema_bytes < kryo_bytes * 1.6  # same ballpark, no handles

    def test_null_root(self):
        src, dst = media_jvm("s"), media_jvm("d")
        ser = SchemaCompiledSerializer()
        assert ser.deserialize(dst, ser.serialize(src, 0)) == 0


class TestCatalog:
    def test_28_figure_rows_plus_references(self):
        names = [s.name for s in LIBRARY_CATALOG]
        assert names[0] == "skyway"
        assert "colfer" in names
        assert "kryo-manual" in names
        assert "thrift" in names
        assert len(names) == 30  # 28 figure bars + java + other-63

    def test_build_every_family(self):
        by_name = catalog_by_name()
        for key in ("colfer", "kryo-manual", "java-built-in"):
            serializer = build_serializer(by_name[key])
            assert serializer.name == key or serializer.name in ("java",)

    def test_scaled_kryo_roundtrip(self):
        by_name = catalog_by_name()
        reg = KryoRegistrator()
        for n in ("data.media.MediaContent", "data.media.Media",
                  "data.media.Image"):
            reg.register(n)
        ser = build_serializer(by_name["cbor/jackson/manual"], registrator=reg)
        src, dst = media_jvm("s"), media_jvm("d")
        addr = make_media_content(src, 2)
        received = ser.deserialize(dst, ser.serialize(src, addr))
        assert from_heap(dst, received).fields["media"]["width"] == 640


class TestHarness:
    @pytest.fixture(scope="class")
    def results(self):
        specs = [s for s in LIBRARY_CATALOG
                 if s.name in ("skyway", "colfer", "kryo-manual",
                               "thrift", "java-built-in")]
        return {r.library: r for r in
                run_jsbs(specs, nodes=3, objects=6, rounds=1)}

    def test_skyway_fastest(self, results):
        skyway = results["skyway"]
        for name, r in results.items():
            if name != "skyway":
                assert skyway.total < r.total, name

    def test_figure7_ratios(self, results):
        """Kryo-manual ~2.2x, colfer ~1.5x, java >> 10x slower on S/D."""
        sky = results["skyway"].serialization + results["skyway"].deserialization
        kryo = results["kryo-manual"].serialization + results["kryo-manual"].deserialization
        colfer = results["colfer"].serialization + results["colfer"].deserialization
        java = results["java-built-in"].serialization + results["java-built-in"].deserialization
        assert 1.4 < kryo / sky < 4.0
        assert 1.1 < colfer / sky < 3.0
        assert java / sky > 10
        assert colfer.real if False else colfer < kryo  # colfer beats kryo

    def test_skyway_larger_payload(self, results):
        assert results["skyway"].bytes_per_object > \
            results["colfer"].bytes_per_object

    def test_components_positive(self, results):
        for r in results.values():
            assert r.serialization > 0
            assert r.deserialization > 0
            assert r.network > 0
