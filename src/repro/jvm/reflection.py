"""Reflective object access — the expensive path baseline serializers take.

The paper's first inefficiency (§1): "An S/D library needs to invoke
reflective functions such as Reflection.getField and Reflection.setField to
enumerate and access every field... Reflection is a very expensive runtime
operation [involving] time-consuming string lookups."

Every call here performs the same work the direct API performs *plus* a
charge from the cost model, so the Java-serializer baseline genuinely pays
per-field reflection costs while Skyway pays none.
"""

from __future__ import annotations

from typing import List

from repro.heap.klass import FieldInfo, Klass
from repro.jvm.jvm import JVM


class Reflection:
    """Reflective services bound to one JVM."""

    def __init__(self, jvm: JVM) -> None:
        self.jvm = jvm

    def _charge(self, seconds: float) -> None:
        self.jvm.clock.charge(seconds)

    # -- field access -------------------------------------------------------

    def get_field(self, address: int, field_name: str):
        """``Reflection.getField``: string lookup + checked access."""
        self._charge(self.jvm.cost_model.reflective_access)
        klass = self.jvm.klass_of(address)
        return self.jvm.heap.read_field(address, klass.field(field_name))

    def set_field(self, address: int, field_name: str, value) -> None:
        """``Reflection.setField``."""
        self._charge(self.jvm.cost_model.reflective_access)
        klass = self.jvm.klass_of(address)
        self.jvm.heap.write_field(address, klass.field(field_name), value)

    def fields_of(self, klass: Klass) -> List[FieldInfo]:
        """Enumerate instance fields (``Class.getDeclaredFields`` walk)."""
        self._charge(self.jvm.cost_model.reflective_access)
        return list(klass.all_fields())

    # -- type resolution ------------------------------------------------------

    def class_for_name(self, name: str) -> Klass:
        """``Class.forName``: resolve a type from its string."""
        self._charge(self.jvm.cost_model.reflective_type_resolve)
        return self.jvm.loader.load(name)

    def new_instance(self, klass: Klass) -> int:
        """Reflective instantiation (``Constructor.newInstance``)."""
        self._charge(self.jvm.cost_model.constructor_call)
        if klass.is_array:
            raise TypeError("use new_array for arrays")
        return self.jvm.new_instance(klass.name)

    def new_array(self, element_descriptor: str, length: int) -> int:
        self._charge(self.jvm.cost_model.constructor_call)
        return self.jvm.new_array(element_descriptor, length)
