"""End-to-end tests against real spawned worker processes: round-trip
fidelity (the PageRank-style vertex graph lands byte-identical to an
in-process receive), ops, and every injected fault surfacing as one typed
transport error — corrupted chunk, worker killed mid-stream, connecting to
a dead port, and recovery once a worker returns."""

import threading
import time

import pytest

from repro.apps.incremental import build_vertex_graph
from repro.core.runtime import SkywayRuntime
from repro.core.streams import SkywayObjectInputStream
from repro.jvm.jvm import JVM
from repro.transport import (
    FrameConnection,
    RemoteWorkerError,
    TransportClosed,
    TransportTimeout,
    WorkerClient,
    WorkerHandle,
    WorkerSpec,
    frames,
    graph_digest,
)
from repro.transport.testing import (
    SAMPLE_FACTORY,
    ring_edges,
    sample_worker_classpath,
)

from tests.conftest import make_date, make_list


def _connect(runtime, handle, **kwargs):
    return WorkerClient(
        runtime, handle.host, handle.port,
        node_name=runtime.jvm.name, **kwargs,
    ).connect()


def _vertex_root(runtime, n=400):
    return runtime.jvm.pin(
        build_vertex_graph(runtime.jvm, ring_edges(n, n // 2))
    )


class CorruptingConnection(FrameConnection):
    """Flips one bit in the payload of the 2nd DATA frame sent (after the
    CRC is computed, so the damage happens "on the wire")."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._data_frames = 0

    def send_frame(self, ftype, payload=b""):
        if ftype == frames.DATA:
            self._data_frames += 1
            if self._data_frames == 2:
                raw = bytearray(frames.encode_frame(ftype, payload))
                raw[frames.HEADER_BYTES + len(payload) // 2] ^= 0x40
                self._sock.sendall(bytes(raw))
                self.metrics.frames_sent += 1
                return
        super().send_frame(ftype, payload)


def test_round_trip_matches_in_process_receive(
    spawned_worker, transport_driver
):
    """The acceptance check: a vertex graph shipped over real loopback TCP
    must land byte-identical (position-independent digest over restored
    klass words and pointers) to an in-process accept of the same framed
    bytes."""
    pin = _vertex_root(transport_driver)
    with _connect(transport_driver, spawned_worker) as client:
        result, data = client.send_graph([pin.address])

    ref_jvm = JVM("ref", classpath=sample_worker_classpath())
    ref_runtime = SkywayRuntime(
        ref_jvm, transport_driver.driver_registry, is_driver=False
    )
    stream = SkywayObjectInputStream(ref_runtime)
    stream.accept(data)
    assert result["digest"] == graph_digest(ref_jvm, stream.receiver)
    assert result["roots"] == 1
    assert result["objects"] == stream.receiver.objects_received
    assert result["stream_bytes"] == len(data)


def test_ping_stats_and_blob(spawned_worker, transport_driver):
    with _connect(transport_driver, spawned_worker) as client:
        assert client.ping(echo="marco")["echo"] == "marco"

        import zlib
        blob = b"broadcast payload" * 999
        result = client.send_blob(blob)
        assert result["bytes"] == len(blob)
        assert result["crc32"] == zlib.crc32(blob)

        date = make_date(transport_driver.jvm, 2018, 3, 28)
        head = make_list(transport_driver.jvm, range(8))
        client.send_graph([date, head])

        stats = client.stats()
        assert stats["graphs_received"] == 1
        assert stats["worker"] == "test-worker"
        assert stats["transport"]["chunks_received"] > 0


def test_corrupted_chunk_is_typed_and_reconnect_recovers(
    spawned_worker, transport_driver
):
    """A bit flipped on the wire must surface as a typed error naming the
    CRC failure — and a fresh connection must work immediately after."""
    pin = _vertex_root(transport_driver)
    client = _connect(
        transport_driver, spawned_worker,
        connection_cls=CorruptingConnection,
    )
    try:
        with pytest.raises(
            (RemoteWorkerError, TransportClosed, TransportTimeout)
        ) as excinfo:
            client.send_graph([pin.address], chunk_bytes=8192)
    finally:
        client.close()
    if isinstance(excinfo.value, RemoteWorkerError):
        assert "CRC" in excinfo.value.message

    with _connect(transport_driver, spawned_worker) as client:
        result, _ = client.send_graph([pin.address], chunk_bytes=8192)
        assert result["roots"] == 1


def test_worker_killed_mid_stream_is_typed(transport_driver):
    """SIGKILL the worker while chunks are in flight: the driver must get
    a typed transport error promptly, not hang until the read timeout."""
    handle = WorkerHandle.spawn(
        WorkerSpec(name="doomed", classpath_factory=SAMPLE_FACTORY)
    )
    try:
        client = _connect(transport_driver, handle, read_timeout=10.0)
        pin = _vertex_root(transport_driver, n=3000)
        killer = threading.Timer(0.15, handle.kill)
        killer.start()
        started = time.perf_counter()
        try:
            with pytest.raises((TransportClosed, TransportTimeout)):
                # Throttled so the stream is still mid-flight at kill time.
                client.send_graph(
                    [pin.address], chunk_bytes=4096,
                    queue_chunks=2, throttle_mbps=5.0,
                )
            assert time.perf_counter() - started < 8.0
        finally:
            killer.join()
            client.close()
    finally:
        handle.stop()


def test_connect_to_dead_port_retries_then_typed_timeout(transport_driver):
    handle = WorkerHandle.spawn(
        WorkerSpec(name="shortlived", classpath_factory=SAMPLE_FACTORY)
    )
    host, port = handle.host, handle.port
    handle.stop()  # nothing listens on the port any more

    client = WorkerClient(
        transport_driver, host, port,
        connect_attempts=3, connect_backoff=0.05, connect_timeout=0.5,
    )
    with pytest.raises(TransportTimeout, match="after 3 attempt"):
        client.connect()
    assert client.metrics.connect_attempts == 3
    assert client.metrics.retries == 2


def test_retry_recovers_when_worker_returns(transport_driver):
    """The backoff window is long enough to spawn a replacement worker on
    the same port — the connect loop must land on it."""
    first = WorkerHandle.spawn(
        WorkerSpec(name="original", classpath_factory=SAMPLE_FACTORY)
    )
    port = first.port
    first.stop()

    replacement = {}

    def respawn():
        replacement["handle"] = WorkerHandle.spawn(WorkerSpec(
            name="replacement", classpath_factory=SAMPLE_FACTORY, port=port,
        ))

    spawner = threading.Thread(target=respawn)
    spawner.start()
    try:
        client = WorkerClient(
            transport_driver, "127.0.0.1", port,
            connect_attempts=20, connect_backoff=0.25, connect_timeout=1.0,
        )
        client.connect()
        try:
            assert client.ping(echo="back")["echo"] == "back"
            assert client.metrics.retries > 0
        finally:
            client.close()
    finally:
        spawner.join()
        if "handle" in replacement:
            replacement["handle"].stop()
