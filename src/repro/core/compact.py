"""Compact transfer encoding — the paper's stated future work, implemented.

§5.2: "Since headers and paddings dominate these extra bytes, future work
could focus on compressing headers and paddings during sending."

This module is a *segment codec* layered under the Skyway stream: the
sender's raw object images are re-encoded without the parts a receiver can
reconstruct from class metadata —

* the klass word becomes a varint tID;
* the mark word becomes one flag byte (plus 4 hash bytes only when an
  identity hash was ever computed);
* the baddr word and all alignment padding are elided;
* relativized references become varints (buffer offsets are small);
* primitive fields/elements ship as raw bytes.

The receiver inflates each object back to its native layout before the
ordinary placement/absolutization path runs, so everything downstream
(input buffers, card tables, top marks) is unchanged.  The price is
per-field work on both sides — exactly the CPU-vs-bytes tradeoff the
paper's future-work remark anticipates; `bench_ablation_compact.py`
quantifies it.
"""

from __future__ import annotations

from typing import List

from repro.core.type_registry import RegistryView
from repro.heap import markword
from repro.heap.klass import Klass
from repro.heap.layout import HeapLayout, KLASS_OFFSET, MARK_OFFSET
from repro.jvm.jvm import JVM
from repro.net.streams import ByteInputStream, ByteOutputStream
from repro.types import descriptors
from repro.types.loader import ClassLoader

_FLAG_HAS_HASH = 0x01
_FLAG_IS_ARRAY = 0x02
#: Cap on one inflated object.  Lengths come off the wire as varints, so a
#: bit-flipped length can claim up to 2^70 elements; inflating is the only
#: place this codec allocates from untrusted sizes, and the cap turns a
#: would-be MemoryError into a typed decode error.
_MAX_INFLATED_BYTES = 1 << 30


class CompactCodecError(RuntimeError):
    pass


class CompactSegmentCodec:
    """Deflates/inflates Skyway segments for one (layout, class set)."""

    def __init__(self, jvm: JVM, view: RegistryView,
                 layout: HeapLayout) -> None:
        self.jvm = jvm
        self.view = view
        self.layout = layout
        self._loader = (
            jvm.loader if layout == jvm.layout
            else ClassLoader(jvm.classpath, layout)
        )

    def _klass_for_tid(self, tid: int) -> Klass:
        return self._loader.load(self.view.name_for(tid))

    # ------------------------------------------------------------------
    # deflate (sender side)
    # ------------------------------------------------------------------

    def compress(self, segment: bytes) -> bytes:
        """Re-encode a raw segment (whole native-format objects)."""
        out = ByteOutputStream()
        cost = self.jvm.cost_model
        pos = 0
        n = len(segment)
        while pos < n:
            tid = int.from_bytes(
                segment[pos + KLASS_OFFSET: pos + KLASS_OFFSET + 8], "little")
            klass = self._klass_for_tid(tid)
            mark = int.from_bytes(
                segment[pos + MARK_OFFSET: pos + MARK_OFFSET + 8], "little")

            if klass.is_array:
                lo = pos + self.layout.array_length_offset
                length = int.from_bytes(segment[lo: lo + 4], "little")
                size = klass.object_size(length)
            else:
                length = 0
                size = klass.object_size()

            out.write_varint(tid)
            flags = (_FLAG_IS_ARRAY if klass.is_array else 0)
            hashcode = markword.get_hash(mark)
            if hashcode:
                flags |= _FLAG_HAS_HASH
            out.write_u8(flags)
            if hashcode:
                out.write_u32(hashcode)
            if klass.is_array:
                out.write_varint(length)
                self._deflate_array(out, segment, pos, klass, length)
            else:
                self._deflate_fields(out, segment, pos, klass)
            self.jvm.clock.charge(cost.memcpy(size))
            pos += size
        if pos != n:
            raise CompactCodecError("segment did not parse cleanly")
        return out.getvalue()

    def _deflate_fields(self, out: ByteOutputStream, segment: bytes,
                        base: int, klass: Klass) -> None:
        cost = self.jvm.cost_model
        for field in klass.all_fields():
            self.jvm.clock.charge(cost.generated_access)
            start = base + field.offset
            if field.is_reference:
                rel = int.from_bytes(segment[start: start + 8], "little")
                out.write_varint(rel)
            else:
                out.write_bytes(segment[start: start + field.size])

    def _deflate_array(self, out: ByteOutputStream, segment: bytes,
                       base: int, klass: Klass, length: int) -> None:
        cost = self.jvm.cost_model
        elem = klass.element_descriptor or ""
        payload = base + self.layout.array_payload_offset(elem)
        esize = klass.element_size
        if descriptors.is_reference(elem):
            for i in range(length):
                self.jvm.clock.charge(cost.generated_access)
                start = payload + i * esize
                rel = int.from_bytes(segment[start: start + 8], "little")
                out.write_varint(rel)
        else:
            out.write_bytes(segment[payload: payload + length * esize])
            self.jvm.clock.charge(cost.stream_bytes(length * esize))

    # ------------------------------------------------------------------
    # inflate (receiver side)
    # ------------------------------------------------------------------

    def decompress(self, data: bytes) -> bytes:
        """Inflate a compact segment back into native-format objects."""
        cost = self.jvm.cost_model
        inp = ByteInputStream(data)
        images: List[bytes] = []
        while not inp.at_end():
            tid = inp.read_varint()
            klass = self._klass_for_tid(tid)
            flags = inp.read_u8()
            hashcode = inp.read_u32() if flags & _FLAG_HAS_HASH else 0

            if flags & _FLAG_IS_ARRAY:
                if not klass.is_array:
                    raise CompactCodecError(f"{klass.name}: array flag mismatch")
                length = inp.read_varint()
                size = klass.object_size(length)
            else:
                if klass.is_array:
                    raise CompactCodecError(f"{klass.name}: array flag mismatch")
                length = 0
                size = klass.object_size()
            if size > _MAX_INFLATED_BYTES:
                raise CompactCodecError(
                    f"{klass.name}: inflated object of {size} bytes exceeds "
                    f"the {_MAX_INFLATED_BYTES}-byte bound (corrupt length?)"
                )

            image = bytearray(size)
            mark = markword.set_hash(markword.FRESH_MARK, hashcode)
            image[MARK_OFFSET:MARK_OFFSET + 8] = mark.to_bytes(8, "little")
            image[KLASS_OFFSET:KLASS_OFFSET + 8] = tid.to_bytes(8, "little")
            if klass.is_array:
                lo = self.layout.array_length_offset
                image[lo:lo + 4] = length.to_bytes(4, "little")
                self._inflate_array(inp, image, klass, length)
            else:
                self._inflate_fields(inp, image, klass)
            self.jvm.clock.charge(cost.memcpy(size))
            images.append(bytes(image))
        return b"".join(images)

    def _inflate_fields(self, inp: ByteInputStream, image: bytearray,
                        klass: Klass) -> None:
        cost = self.jvm.cost_model
        for field in klass.all_fields():
            self.jvm.clock.charge(cost.generated_access)
            if field.is_reference:
                rel = inp.read_varint()
                image[field.offset:field.offset + 8] = rel.to_bytes(8, "little")
            else:
                image[field.offset:field.offset + field.size] = \
                    inp.read_bytes(field.size)

    def _inflate_array(self, inp: ByteInputStream, image: bytearray,
                       klass: Klass, length: int) -> None:
        cost = self.jvm.cost_model
        elem = klass.element_descriptor or ""
        payload = self.layout.array_payload_offset(elem)
        esize = klass.element_size
        if descriptors.is_reference(elem):
            for i in range(length):
                self.jvm.clock.charge(cost.generated_access)
                rel = inp.read_varint()
                start = payload + i * esize
                image[start:start + 8] = rel.to_bytes(8, "little")
        else:
            raw = inp.read_bytes(length * esize)
            image[payload:payload + len(raw)] = raw
            self.jvm.clock.charge(cost.stream_bytes(length * esize))
