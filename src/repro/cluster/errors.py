"""The cluster layer's error taxonomy.

Fleet-level failures are *membership* failures, not wire failures: the
socket transport already types every frame/connection problem
(:mod:`repro.transport.errors`), and the epoch protocol types staleness
(:class:`~repro.delta.channel.DeltaStaleError`).  What the cluster adds is
the layer above both — "who is in the fleet, and is the peer I'm talking
to still the process the coordinator registered?" — and its failures get
their own types so callers can write fleet policy (skip the peer, re-open
the channel, re-register) without string-matching transport messages.

:class:`PeerGoneError` is the load-bearing one: a send to a worker the
coordinator has marked dead (or that died under the send) surfaces as this
type, carrying the peer's name, so a broadcast can complete on survivors
while reporting exactly which peer vanished.

:class:`ClusterProtocolError` is the mis-route guard: channel id 0 is
reserved coordinator-wide, and a fleet worker rejects an EPOCH frame whose
channel id it was never told about — typed, never a silent placement into
the wrong channel state.
"""

from __future__ import annotations


class ClusterError(RuntimeError):
    """Base of everything the cluster layer raises itself."""


class ClusterConfigError(ClusterError):
    """The fleet was asked for something its configuration lacks
    (unknown worker name, no coordinator, malformed spec)."""


class ClusterProtocolError(ClusterError):
    """A coordinator/fleet protocol violation: a reserved or unassigned
    channel id on an EPOCH frame, a malformed coordinator RPC, or a blob
    key the peer never stored."""


class CoordinatorUnavailableError(ClusterError):
    """The coordinator could not be reached (down or unreachable); fleet
    membership answers are unavailable until it returns."""


class PeerGoneError(ClusterError):
    """A fleet worker is dead (missed heartbeats, or found dead under a
    send).  Carries the peer's name and, when known, the generation the
    failing channel was bound to."""

    def __init__(self, peer: str, message: str = "",
                 generation: int = 0) -> None:
        detail = message or "worker is gone (marked dead by the coordinator)"
        super().__init__(f"peer {peer!r}: {detail}")
        self.peer = peer
        self.generation = generation
