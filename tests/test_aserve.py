"""The async worker front-end: classic-protocol parity with the threaded
worker, the multiplexed epoch sub-protocol, per-channel failure isolation
(a stale delta NACKs one channel, the connection survives), and the
``serve_mode`` dispatch in ``worker_main``."""

import pytest

from repro.transport import (
    LocalAsyncWorker,
    MuxEpochClient,
    RemoteWorkerError,
    TransportError,
    WorkerClient,
    WorkerHandle,
    WorkerSpec,
    WorkerStartupError,
    semantic_graph_digest,
)
from repro.delta.channel import DeltaSendChannel
from repro.exchange import ChannelCapabilities, SocketGraphChannel
from repro.transport.testing import SAMPLE_FACTORY

from tests.conftest import make_list, read_list

DELTA_REQUEST = ChannelCapabilities(kernel=True, delta=True)


def _spawn(mode: str, name: str) -> WorkerHandle:
    return WorkerHandle.spawn(WorkerSpec(
        name=name, classpath_factory=SAMPLE_FACTORY, serve_mode=mode,
    ))


class TestServeModeDispatch:
    def test_unknown_serve_mode_fails_startup(self):
        with pytest.raises(WorkerStartupError, match="serve_mode"):
            WorkerHandle.spawn(WorkerSpec(
                name="bad-mode", classpath_factory=SAMPLE_FACTORY,
                serve_mode="fibers",
            ))

    def test_threaded_mode_remains_the_executable_spec(
            self, transport_driver):
        """``serve_mode="threads"`` still serves the classic protocol —
        the thread-per-connection worker is the spec the event loop is
        measured against, not dead code."""
        handle = _spawn("threads", "spec-worker")
        client = WorkerClient(
            transport_driver, handle.host, handle.port).connect()
        channel = DeltaSendChannel(
            transport_driver, "spec-worker", channel_id=3001)
        try:
            assert client.ping()["worker"] == "spec-worker"
            head = make_list(transport_driver.jvm, range(12))
            result = client.send_epoch(
                channel.send([head]), 3001, channel.epoch)
            assert result["digest"] == semantic_graph_digest(
                transport_driver.jvm, [head])
            assert "aserve" not in client.stats()
            channel.close()
        finally:
            client.close()
            handle.stop()


class TestClassicParityOnAsync:
    def test_classic_ops_over_the_event_loop(self, transport_driver):
        """A stock ``WorkerClient`` cannot tell the front-ends apart:
        ping, graph send (digest-gated), and blob round-trip all behave
        identically against the async loop."""
        handle = _spawn("async", "async-worker")
        client = WorkerClient(
            transport_driver, handle.host, handle.port).connect()
        channel = DeltaSendChannel(
            transport_driver, "async-worker", channel_id=3002)
        try:
            assert client.ping(echo="hi")["echo"] == "hi"
            head = make_list(transport_driver.jvm, range(20))
            result = client.send_epoch(
                channel.send([head]), 3002, channel.epoch)
            assert result["digest"] == semantic_graph_digest(
                transport_driver.jvm, [head])
            blob = client.send_blob(b"x" * 100_000)
            assert blob["bytes"] == 100_000
            stats = client.stats()
            aserve = stats["aserve"]
            assert aserve["conns_accepted"] >= 1
            assert aserve["conns_open"] >= 1
            channel.close()
        finally:
            client.close()
            handle.stop()

    def test_local_async_worker_serves_in_process(self, transport_driver):
        """``LocalAsyncWorker`` runs the same loop on a daemon thread —
        no process spawn — and stops cleanly."""
        spec = WorkerSpec(name="local-async",
                          classpath_factory=SAMPLE_FACTORY)
        with LocalAsyncWorker(spec) as local:
            client = WorkerClient(
                transport_driver, local.host, local.port).connect()
            channel = DeltaSendChannel(
                transport_driver, "local-async", channel_id=3003)
            try:
                head = make_list(transport_driver.jvm, range(8))
                result = client.send_epoch(
                    channel.send([head]), 3003, channel.epoch)
                assert result["digest"] == semantic_graph_digest(
                    transport_driver.jvm, [head])
            finally:
                channel.close()
                client.close()


class TestMuxEpochs:
    def test_concurrent_channels_full_then_delta(self, transport_driver):
        """A dozen channels pipelined over one connection: every FULL
        bootstraps, every DELTA applies, and each channel's worker-side
        digest matches the digest of *that* channel's sender graph."""
        driver = transport_driver
        handle = _spawn("async", "mux-worker")
        mux = MuxEpochClient(driver, handle.host, handle.port).connect()
        heads, channels, pins = [], [], []
        for i in range(12):
            head = make_list(driver.jvm, range(i * 100, i * 100 + 24))
            pins.append(driver.jvm.pin(head))
            heads.append(head)
            channels.append(DeltaSendChannel(
                driver, "mux-worker", channel_id=9000 + i))
        try:
            for expected_mode in ("full", "delta"):
                jobs, want = [], {}
                for channel, head in zip(channels, heads):
                    frame = channel.send([head])
                    jobs.append((channel.channel_id, channel.epoch, frame))
                    want[channel.channel_id] = semantic_graph_digest(
                        driver.jvm, [head])
                    assert channel.last_decision.mode == expected_mode
                results = mux.send_epochs(jobs)
                assert set(results) == set(want)
                for channel_id, outcome in results.items():
                    assert outcome["result"]["ok"], outcome
                    assert outcome["result"]["digest"] == want[channel_id]
                    assert outcome["latency_s"] is not None
                for head in heads:
                    value = driver.jvm.get_field(head, "payload")
                    driver.jvm.set_field(head, "payload", value + 1)
        finally:
            mux.close()
            handle.stop()
            for channel in channels:
                channel.close()
            for pin in pins:
                driver.jvm.unpin(pin)

    def test_stale_channel_fails_alone_connection_survives(
            self, transport_driver):
        """Replaying an applied delta NACKs *that channel* as an
        ``ok=false`` RESULT naming ``DeltaStaleError``; unlike the classic
        protocol, the connection stays up — the same socket keeps serving
        other channels and classic ops."""
        driver = transport_driver
        handle = _spawn("async", "nack-worker")
        mux = MuxEpochClient(driver, handle.host, handle.port).connect()
        head = make_list(driver.jvm, range(24))
        pin = driver.jvm.pin(head)
        channel = DeltaSendChannel(driver, "nack-worker", channel_id=4242)
        try:
            mux.send_epoch(channel.send([head]), 4242, channel.epoch)
            driver.jvm.set_field(head, "payload", 777)
            delta = channel.send([head])
            assert channel.last_decision.mode == "delta"
            mux.send_epoch(delta, 4242, channel.epoch)

            with pytest.raises(RemoteWorkerError) as excinfo:
                mux.send_epoch(delta, 4242, channel.epoch)
            assert excinfo.value.kind == "DeltaStaleError"

            # Same connection, next breath: classic op and a fresh
            # channel both still work.
            assert mux.call_op("ping")["worker"] == "nack-worker"
            other = DeltaSendChannel(driver, "nack-worker",
                                     channel_id=4243)
            result = mux.send_epoch(other.send([head]), 4243, other.epoch)
            assert result["digest"] == semantic_graph_digest(
                driver.jvm, [head])
            other.close()
        finally:
            mux.close()
            handle.stop()
            channel.close()
            driver.jvm.unpin(pin)

    def test_digest_false_rides_the_trailer_flag(self, transport_driver):
        """``digest=False`` is honored over mux exactly as over a classic
        connection: the worker skips the digest pass and the RESULT
        carries no ``"digest"`` key."""
        driver = transport_driver
        handle = _spawn("async", "nodigest-worker")
        mux = MuxEpochClient(driver, handle.host, handle.port).connect()
        head = make_list(driver.jvm, range(10))
        channel = DeltaSendChannel(driver, "nodigest-worker",
                                   channel_id=6001)
        try:
            skipped = mux.send_epoch(channel.send([head]), 6001,
                                     channel.epoch, digest=False)
            assert skipped["ok"] and "digest" not in skipped
            driver.jvm.set_field(head, "payload", 5)
            computed = mux.send_epoch(channel.send([head]), 6001,
                                      channel.epoch, digest=True)
            assert computed["digest"] == semantic_graph_digest(
                driver.jvm, [head])
        finally:
            mux.close()
            handle.stop()
            channel.close()

    def test_duplicate_channel_in_one_call_is_rejected(
            self, transport_driver):
        """Two epochs for one channel in a single ``send_epochs`` call is
        a caller error (the worker allows one open mux stream per channel
        and results are keyed by channel id) — rejected up front, before
        any frame goes out, so the connection stays usable."""
        driver = transport_driver
        handle = _spawn("async", "dup-worker")
        mux = MuxEpochClient(driver, handle.host, handle.port).connect()
        head = make_list(driver.jvm, range(6))
        channel = DeltaSendChannel(driver, "dup-worker", channel_id=6002)
        try:
            frame = channel.send([head])
            with pytest.raises(TransportError, match="more than once"):
                mux.send_epochs([(6002, channel.epoch, frame),
                                 (6002, channel.epoch + 1, frame)])
            result = mux.send_epoch(frame, 6002, channel.epoch)
            assert result["ok"]
        finally:
            mux.close()
            handle.stop()
            channel.close()

    def test_poll_drain_leaves_socket_blocking(self, transport_driver):
        """The mid-send result drain polls with ``select``, never by
        zeroing the socket timeout — a non-blocking socket would turn the
        backpressure stall ``sendall`` is expected to ride out into
        ``BlockingIOError``."""
        driver = transport_driver
        handle = _spawn("async", "blocking-worker")
        mux = MuxEpochClient(driver, handle.host, handle.port).connect()
        head = make_list(driver.jvm, range(6))
        channel = DeltaSendChannel(driver, "blocking-worker",
                                   channel_id=6003)
        try:
            mux.send_epochs([(6003, channel.epoch,
                              channel.send([head]))])
            assert mux._sock.gettimeout() == mux._read_timeout
        finally:
            mux.close()
            handle.stop()
            channel.close()

    def test_admission_failure_counts_as_epoch_failure(
            self, transport_driver):
        """A strict worker refusing an unadmitted channel at the EPOCH
        header answers ``ok=false`` at the trailer *and* counts it in
        ``stats()["aserve"]["epoch_failures"]``, same as an apply-time
        failure."""
        driver = transport_driver
        handle = WorkerHandle.spawn(WorkerSpec(
            name="strict-mux-worker", classpath_factory=SAMPLE_FACTORY,
            serve_mode="async", strict_channels=True,
        ))
        mux = MuxEpochClient(driver, handle.host, handle.port).connect()
        head = make_list(driver.jvm, range(6))
        channel = DeltaSendChannel(driver, "strict-mux-worker",
                                   channel_id=6004)
        try:
            with pytest.raises(RemoteWorkerError) as excinfo:
                mux.send_epoch(channel.send([head]), 6004, channel.epoch)
            assert excinfo.value.kind == "ClusterProtocolError"
            assert mux.stats()["aserve"]["epoch_failures"] == 1
        finally:
            mux.close()
            handle.stop()
            channel.close()

    def test_exchange_channel_rides_mux_and_recovers_without_reconnect(
            self, transport_driver):
        """``SocketGraphChannel`` over a ``MuxEpochClient``: FULL then
        DELTA receipts as on a classic connection, and NACK recovery
        resends forced-full *on the same socket* (no reconnect)."""
        driver = transport_driver
        handle = _spawn("async", "xchg-mux-worker")
        mux = MuxEpochClient(driver, handle.host, handle.port).connect()
        head = make_list(driver.jvm, range(24))
        pin = driver.jvm.pin(head)
        channel = SocketGraphChannel(
            driver, mux, requested=DELTA_REQUEST, channel_id=5151,
            destination="xchg-mux",
        )
        try:
            first = channel.send([head], digest=True)
            assert first.mode == "full"
            assert first.digest == semantic_graph_digest(
                driver.jvm, [head])
            driver.jvm.set_field(head, "payload", 99)
            second = channel.send([head], digest=True)
            assert second.mode == "delta" and not second.nack_recovered

            # Reset the worker's channel state out of band: a fresh FULL
            # at epoch 1 makes the exchange channel's next delta a gap.
            intruder = DeltaSendChannel(driver, "xchg-mux-worker",
                                        channel_id=5151)
            mux.send_epoch(intruder.send([head]), 5151, intruder.epoch)
            intruder.close()

            sock_before = mux._sock
            driver.jvm.set_field(head, "payload", 100)
            recovered = channel.send([head], digest=True)
            assert recovered.nack_recovered
            assert recovered.mode == "full"
            assert recovered.digest == semantic_graph_digest(
                driver.jvm, [head])
            assert mux._sock is sock_before  # no reconnect happened

            driver.jvm.set_field(head, "payload", 101)
            assert channel.send([head]).mode == "delta"
        finally:
            channel.close()
            mux.close()
            handle.stop()
            driver.jvm.unpin(pin)
