"""B-POLICY — the adaptive send-policy plane, measured against the corners.

The policy plane's claim: one engine, fed live channel signals (card-table
dirty fraction, measured wire bandwidth, per-channel history), matches or
beats the best *hand-picked* static mode at every operating point — with
no per-call mode flag anywhere.  This experiment sweeps the operating
points and holds that claim as a gate:

* one spawned socket worker, one heap-resident vertex graph per scenario,
  partitioned under K pinned shard holders — disjoint root subgraphs, so
  ``parallel-N`` plans are executable and FULL epochs stay wire-bound
  (per-root framing overhead would otherwise swamp the paced wire);
* scenarios sweep mutation rate (1% → 100%), wire pacing (2 Mb/s vs
  unpaced) and the negotiated stream cap (4 vs 1);
* per scenario, four channels — adaptive, always-delta, always-full,
  always-full[N] — each driven by the *same* plan-execution dispatch:
  ``plan_next`` → ``parallel-N`` plans route to the multi-stream sender,
  everything else goes down the epoch channel with the plan attached.

Epoch 1 bootstraps every channel (always FULL, untimed — it also feeds the
engine's bandwidth EWMA from the real paced wire); one PageRank superstep
mutates the scenario's fraction; epoch 2 is the measured epoch.
``policy_checks_pass`` gates: adaptive within 6% + 512 B of the best
static's bytes and within 35% + 0.25 s of its wall-clock at every point,
delta at 1%, not-delta at 100%, streams never exceeding the negotiated
cap, and single-stream receiver digests identical across policies.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.incremental import (
    GRAPH_CLASS,
    IncrementalPageRank,
    _vertex,
    build_vertex_graph,
)
from repro.bench.exchange_experiments import irregular_edges
from repro.core.runtime import SkywayRuntime
from repro.exchange import ChannelCapabilities, SocketGraphChannel
from repro.policy import (
    AdaptivePolicy,
    AlwaysDelta,
    AlwaysFull,
    DecisionTable,
)
from repro.transport import WorkerClient, WorkerHandle, WorkerSpec
from repro.transport.bootstrap import MB, build_runtime
from repro.transport.metrics import TransportMetrics
from repro.transport.parallel import ParallelGraphSender
from repro.transport.testing import SAMPLE_FACTORY

DEFAULT_VERTICES = 4_000
SMOKE_VERTICES = 1_000
#: Slow enough that a FULL resync's wire time dominates its serialization
#: time (the regime where stream fan-out pays); the smoke tier pairs its
#: smaller graph with a slower wire to stay in the same regime.
DEFAULT_WIRE_MBPS = 2.0
SMOKE_WIRE_MBPS = 0.5
#: Disjoint root subgraphs per scenario (the ``parallel-N`` shard unit).
SHARD_HOLDERS = 8

#: (mutation fraction, wire Mb/s or None for unpaced, negotiated stream cap)
DEFAULT_SCENARIOS: Tuple[Tuple[float, Optional[float], int], ...] = (
    (0.01, DEFAULT_WIRE_MBPS, 4),
    (0.10, DEFAULT_WIRE_MBPS, 4),
    (1.0, DEFAULT_WIRE_MBPS, 4),
    (1.0, None, 4),
    (1.0, DEFAULT_WIRE_MBPS, 1),
)
SMOKE_SCENARIOS: Tuple[Tuple[float, Optional[float], int], ...] = (
    (0.01, SMOKE_WIRE_MBPS, 4),
    (1.0, SMOKE_WIRE_MBPS, 4),
)

#: Adaptive tuned to the testbed: a full resync whose estimated wire time
#: exceeds 1.2 s fans out.  The paced wires sit well above the threshold
#: (≈1.6 s estimated), the unpaced wire well below it — so the sweep shows
#: both the fan-out *and* the restraint.
PARALLEL_WIRE_SECONDS = 1.2

BYTES_TOLERANCE = 1.06
BYTES_SLACK = 512
SECONDS_TOLERANCE = 1.35
SECONDS_SLACK = 0.25


def _policies(cap: int) -> Dict[str, DecisionTable]:
    """The contenders: the adaptive engine vs every static corner the
    negotiated cap allows."""
    policies: Dict[str, DecisionTable] = {
        "adaptive": AdaptivePolicy(
            parallel_wire_seconds=PARALLEL_WIRE_SECONDS),
        "always_delta": AlwaysDelta(),
        "always_full": AlwaysFull(),
    }
    if cap > 1:
        policies[f"always_full_{cap}"] = AlwaysFull(streams=cap)
    return policies


def _shard_holders(driver: SkywayRuntime, graph: int, shards: int):
    """Partition the graph's vertices under ``shards`` pinned DeltaGraph
    holders (round-robin slices).  Each holder is a disjoint root subgraph
    — vertices reference neighbours by long id, not by pointer — so a
    ``parallel-N`` plan can ship the holders over independent streams
    while delta epochs still patch the same vertex objects in place."""
    jvm = driver.jvm
    n = jvm.get_field(graph, "n")
    pins = []
    for s in range(shards):
        ids = list(range(s, n, shards))
        holder = jvm.new_instance(GRAPH_CLASS)
        pin = jvm.pin(holder)
        arr = jvm.new_array("Ljava.lang.Object;", len(ids))
        jvm.set_field(pin.address, "vertices", arr)
        jvm.set_field(pin.address, "n", len(ids))
        for i, vid in enumerate(ids):
            # Allocation above may have GC-moved either array: re-read
            # both through pinned roots before installing the reference.
            slot = jvm.get_field(pin.address, "vertices")
            jvm.heap.write_element(slot, i, _vertex(jvm, graph, vid))
        pins.append(pin)
    return pins


def _parallel_fanout(
    client: WorkerClient,
    roots: Sequence[int],
    streams: int,
    wire_mbps: Optional[float],
):
    """Execute a ``parallel-N`` plan: N interleaved streams, each with its
    own connection and (paced) wire — the §4.2 dispatch the plan asks for."""
    extras: List[WorkerClient] = []
    try:
        for _ in range(streams - 1):
            extras.append(
                WorkerClient(
                    client.runtime, client.host, client.port,
                    node_name=client.node_name,
                    metrics=TransportMetrics(),
                    read_timeout=300.0,
                ).connect()
            )
        sender = ParallelGraphSender([client] + extras)
        # Small chunks + a deep queue: every stream's bytes enter its
        # writer thread during traversal, so the N paced wires overlap
        # (64 KiB chunks would sit staged until the sequential finish()).
        return sender.send(list(roots), chunk_bytes=4096, queue_chunks=256,
                           throttle_mbps=wire_mbps)
    finally:
        for extra in extras:
            extra.close()


def _execute_epoch(
    channel: SocketGraphChannel,
    client: WorkerClient,
    roots: Sequence[int],
    wire_mbps: Optional[float],
) -> Dict[str, object]:
    """One plan-driven epoch — the same dispatch for every policy: the
    plan decides, this function only executes it."""
    plan = channel.plan_next(roots)
    started = time.perf_counter()
    if plan.mode == "full" and plan.streams > 1 and len(roots) > 1:
        channel.discard_plan()
        report = _parallel_fanout(client, roots, plan.streams, wire_mbps)
        seconds = time.perf_counter() - started
        wire_bytes = report.total_stream_bytes
        channel.engine.observe_transfer(
            channel.channel_id, wire_bytes, seconds)
        channel.force_full_next()
        return {
            "mode": plan.label,
            "reason": plan.reason,
            "streams": plan.streams,
            "wire_bytes": wire_bytes,
            "seconds": seconds,
            "digest": None,  # per-stream digests, not epoch-comparable
            "clamped": list(plan.clamped),
        }
    receipt = channel.send(roots, digest=True, plan=plan)
    seconds = time.perf_counter() - started
    executed = receipt.plan
    return {
        "mode": executed.label if executed is not None else receipt.mode,
        "reason": receipt.reason,
        "streams": executed.streams if executed is not None else 1,
        "wire_bytes": receipt.wire_bytes,
        "seconds": seconds,
        "digest": receipt.digest,
        "clamped": list(executed.clamped) if executed is not None else [],
    }


def _run_scenario(
    driver: SkywayRuntime,
    client: WorkerClient,
    vertices: int,
    scenario: Tuple[float, Optional[float], int],
    index: int,
) -> Dict[str, object]:
    mutation, wire_mbps, cap = scenario
    edges = irregular_edges(vertices)
    pin = driver.jvm.pin(build_vertex_graph(driver.jvm, edges))
    graph = pin.address
    holders = _shard_holders(driver, graph, SHARD_HOLDERS)
    roots = [p.address for p in holders]
    pagerank = IncrementalPageRank(driver.jvm, graph)
    requested = ChannelCapabilities(kernel=True, delta=True,
                                    parallel_streams=cap)
    channels = {
        name: SocketGraphChannel(
            driver, client, requested=requested, policy=policy,
            channel_id=9_500 + index * 20 + j,
            destination=f"policy-bench-{index}",
            throttle_mbps=wire_mbps,
        )
        for j, (name, policy) in enumerate(_policies(cap).items())
    }
    try:
        # Epoch 1: bootstrap every channel (always FULL, untimed).  The
        # paced wire's measured seconds seed each engine's bandwidth EWMA.
        for channel in channels.values():
            channel.send(roots, digest=True)
        pagerank.step(active_fraction=mutation)
        # Epoch 2: the measured epoch, one identical dispatch per policy.
        results = {
            name: _execute_epoch(channel, client, roots, wire_mbps)
            for name, channel in channels.items()
        }
        for name, channel in channels.items():
            results[name]["decisions"] = channel.engine.decisions
        return {
            "mutation_fraction": mutation,
            "wire_mbps": wire_mbps,
            "stream_cap": cap,
            "vertices": vertices,
            "policies": results,
        }
    finally:
        for channel in channels.values():
            channel.close()
        for holder in holders:
            driver.jvm.unpin(holder)
        driver.jvm.unpin(pin)


def run_policy_experiment(
    vertices: int = DEFAULT_VERTICES,
    scenarios: Optional[Sequence[Tuple[float, Optional[float], int]]] = None,
    smoke: bool = False,
) -> Dict[str, object]:
    """Returns a JSON-serializable result dict (see module docstring)."""
    if scenarios is None:
        scenarios = SMOKE_SCENARIOS if smoke else DEFAULT_SCENARIOS
    if smoke:
        vertices = min(vertices, SMOKE_VERTICES)
    handle = WorkerHandle.spawn(WorkerSpec(
        name="policy-worker", classpath_factory=SAMPLE_FACTORY,
        old_bytes=512 * MB, read_timeout=300.0,
    ))
    driver = build_runtime("policy-driver", SAMPLE_FACTORY,
                           old_bytes=512 * MB)
    # Segments must flow into the writer threads *during* traversal for
    # the N paced streams to overlap — the default 256 KiB output buffer
    # would hold each stream's whole payload until the sequential
    # finish() and serialize the pacing.
    driver.output_buffer_capacity = 8 * 1024
    client = WorkerClient(driver, handle.host, handle.port,
                          read_timeout=300.0).connect()
    try:
        rows = [
            _run_scenario(driver, client, vertices, scenario, i)
            for i, scenario in enumerate(scenarios)
        ]
        return {
            "vertices": vertices,
            "smoke": smoke,
            "rows": rows,
            "checks": _checks(rows),
        }
    finally:
        try:
            client.shutdown_worker()
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass
        client.close()
        handle.stop()


def _static_best(row: Dict[str, object], field: str) -> float:
    return min(float(result[field])
               for name, result in row["policies"].items()
               if name != "adaptive")


def _checks(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    low = [r for r in rows if float(r["mutation_fraction"]) <= 0.10]
    high = [r for r in rows if float(r["mutation_fraction"]) >= 1.0]

    def digest_parity(row: Dict[str, object]) -> bool:
        digests = {result["digest"]
                   for result in row["policies"].values()
                   if result["digest"] is not None}
        return len(digests) == 1

    return {
        "adaptive_matches_best_bytes": all(
            float(r["policies"]["adaptive"]["wire_bytes"])
            <= _static_best(r, "wire_bytes") * BYTES_TOLERANCE + BYTES_SLACK
            for r in rows),
        "adaptive_matches_best_seconds": all(
            float(r["policies"]["adaptive"]["seconds"])
            <= (_static_best(r, "seconds") * SECONDS_TOLERANCE
                + SECONDS_SLACK)
            for r in rows),
        "adaptive_delta_at_low_mutation": all(
            r["policies"]["adaptive"]["mode"] == "delta" for r in low),
        "adaptive_full_at_saturation": all(
            r["policies"]["adaptive"]["mode"] != "delta" for r in high),
        "adaptive_parallel_on_slow_wire": all(
            r["policies"]["adaptive"]["mode"]
            == f"parallel-{r['stream_cap']}"
            for r in high
            if r["wire_mbps"] is not None and int(r["stream_cap"]) > 1),
        "adaptive_single_on_fast_wire": all(
            int(r["policies"]["adaptive"]["streams"]) == 1
            for r in high if r["wire_mbps"] is None),
        "streams_within_cap": all(
            int(result["streams"]) <= int(r["stream_cap"])
            for r in rows for result in r["policies"].values()),
        "digest_parity": all(digest_parity(r) for r in rows),
        "decisions_recorded": all(
            int(result["decisions"]) >= 2
            for r in rows for result in r["policies"].values()),
    }


def policy_checks_pass(result: Dict[str, object]) -> bool:
    return all(result["checks"].values())


def format_policy_report(result: Dict[str, object]) -> str:
    lines = [
        "B-POLICY — adaptive send policy vs the static corners, per "
        "operating point",
        f"  graph: {result['vertices']} vertices per scenario; one plan-"
        f"driven dispatch for every policy",
        "",
        f"  {'mutated':>8} {'wire':>7} {'cap':>4}  {'policy':<14} "
        f"{'mode':<11} {'wire_B':>9} {'seconds':>8} {'clamped':<10}",
    ]
    for row in result["rows"]:
        wire = (f"{row['wire_mbps']:g}Mb" if row["wire_mbps"] is not None
                else "fast")
        for name, res in row["policies"].items():
            marker = "*" if name == "adaptive" else " "
            lines.append(
                f"  {row['mutation_fraction']:>7.0%} {wire:>7} "
                f"{row['stream_cap']:>4} {marker} {name:<14} "
                f"{res['mode']:<11} {res['wire_bytes']:>9} "
                f"{res['seconds']:>8.3f} "
                f"{','.join(res['clamped']) or '-':<10}"
            )
        lines.append("")
    checks = result["checks"]
    lines.append(
        "  checks: " + "  ".join(
            f"{name}={'pass' if ok else 'FAIL'}"
            for name, ok in checks.items()
        )
    )
    return "\n".join(lines)
