"""Skyway: direct managed-heap-to-heap object transfer (the paper's core).

Components map one-to-one onto the paper's §4:

* :mod:`repro.core.type_registry` — global class numbering (Algorithm 1);
* :mod:`repro.core.output_buffer` — per-destination native output buffers
  with streaming flush;
* :mod:`repro.core.sender` — the GC-like copy traversal with pointer
  relativization and ``baddr`` bookkeeping (Algorithm 2);
* :mod:`repro.core.input_buffer` — chunked in-heap input buffers;
* :mod:`repro.core.receiver` — the linear absolutization scan plus
  card-table updates;
* :mod:`repro.core.runtime` — the per-JVM Skyway runtime and its APIs
  (``shuffle_start``, ``register_update``);
* :mod:`repro.core.streams` — ``SkywayObjectOutputStream`` /
  ``SkywayObjectInputStream`` and the file/socket variants;
* :mod:`repro.core.adapter` — a drop-in
  :class:`~repro.serial.base.Serializer` so Spark/Flink engines can swap
  Skyway in exactly as the paper swaps it into Spark ("the entire
  SkywaySerializer class contains less than 100 lines of code").
"""

from repro.core.type_registry import DriverRegistry, RegistryView, TypeRegistryError
from repro.core.output_buffer import OutputBuffer
from repro.core.input_buffer import InputBuffer
from repro.core.sender import ObjectGraphSender
from repro.core.receiver import ObjectGraphReceiver
from repro.core.runtime import SkywayRuntime, attach_skyway
from repro.core.adapter import SkywaySerializer
from repro.core.formats import ClusterFormatConfig
from repro.core.streams import (
    SkywayFileInputStream,
    SkywayFileOutputStream,
    SkywayObjectInputStream,
    SkywayObjectOutputStream,
    SkywaySocketInputStream,
    SkywaySocketOutputStream,
)

__all__ = [
    "DriverRegistry",
    "RegistryView",
    "TypeRegistryError",
    "OutputBuffer",
    "InputBuffer",
    "ObjectGraphSender",
    "ObjectGraphReceiver",
    "SkywayRuntime",
    "attach_skyway",
    "SkywaySerializer",
    "ClusterFormatConfig",
    "SkywayObjectOutputStream",
    "SkywayObjectInputStream",
    "SkywayFileOutputStream",
    "SkywayFileInputStream",
    "SkywaySocketOutputStream",
    "SkywaySocketInputStream",
]
