"""Fleet telemetry plane: sampler deltas, bounded windows, straggler
detection, payload fuzz hardening, and the kill-a-worker postmortem drill
against a real coordinator + worker fleet."""

import time

import pytest

from repro import obs
from repro.obs.export import prometheus_text, validate_prometheus
from repro.obs.live import (
    FleetTelemetry,
    MAX_RECORDER_ENTRIES,
    TELEMETRY_VERSION,
    TelemetryError,
    TelemetrySampler,
    render_top,
    validate_telemetry,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import (
    DEFAULT_BUCKET_BOUNDS,
    MetricsRegistry,
    quantile_from_buckets,
)


def _payload(seq, t=None, **parts):
    p = {"v": TELEMETRY_VERSION, "seq": seq,
         "t": time.time() if t is None else t}
    p.update(parts)
    return p


def _latency_payload(seq, value, count=1):
    """One epoch-latency observation as a registry-shaped hist delta."""
    reg = MetricsRegistry()
    for _ in range(count):
        reg.observe("worker.epoch_receive_seconds", value)
    hist = reg.snapshot()["histograms"]["worker.epoch_receive_seconds"]
    return _payload(seq, h={"worker.epoch_receive_seconds": {
        "count": hist["count"], "sum": hist["sum"],
        "min": hist["min"], "max": hist["max"],
        "buckets": hist["buckets"],
    }}, c={"worker.epochs": float(count),
           "worker.epoch_bytes": 1000.0 * count})


# ---------------------------------------------------------------------------
# streaming quantiles
# ---------------------------------------------------------------------------

class TestStreamingQuantiles:
    def test_quantiles_land_in_snapshot_and_bound_the_data(self):
        reg = MetricsRegistry()
        values = [0.001 * (i + 1) for i in range(100)]
        for v in values:
            reg.observe("lat", v)
        h = reg.snapshot()["histograms"]["lat"]
        assert min(values) <= h["p50"] <= h["p95"] <= h["p99"] <= max(values)
        # The geometric ladder is coarse (factor 2), so only sanity-band
        # the estimates: p50 within its covering bucket of the true 0.05.
        assert 0.02 <= h["p50"] <= 0.075
        assert h["p99"] >= 0.064  # inside the top occupied bucket

    def test_single_bucket_interpolates_between_min_and_max(self):
        reg = MetricsRegistry()
        for v in (0.010, 0.011, 0.012):  # all in one bucket
            reg.observe("lat", v)
        h = reg.snapshot()["histograms"]["lat"]
        assert 0.010 <= h["p50"] <= 0.012

    def test_legacy_histogram_without_buckets_falls_back(self):
        hist = {"count": 10, "sum": 5.0, "min": 1.0, "max": 2.0}
        assert quantile_from_buckets(hist, 0.5) == pytest.approx(1.5)
        assert quantile_from_buckets(hist, 1.0) == pytest.approx(2.0)

    def test_bucket_counts_are_deltable(self):
        # Two registries' buckets summed == one registry observing both
        # streams: the property fleet aggregation relies on.
        a, b, both = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        for v in (0.001, 0.004, 0.1):
            a.observe("lat", v)
            both.observe("lat", v)
        for v in (0.002, 0.25):
            b.observe("lat", v)
            both.observe("lat", v)
        ha = a.snapshot()["histograms"]["lat"]
        hb = b.snapshot()["histograms"]["lat"]
        hc = both.snapshot()["histograms"]["lat"]
        summed = [x + y for x, y in zip(ha["buckets"], hb["buckets"])]
        assert summed == hc["buckets"]


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------

class TestFlightRecorder:
    def test_ring_is_bounded_and_seq_monotonic(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("tick", i=i)
        dump = rec.dump()
        assert len(dump) == 4
        assert [e["i"] for e in dump] == [6, 7, 8, 9]
        assert [e["seq"] for e in dump] == [7, 8, 9, 10]

    def test_drain_since_is_incremental_and_non_destructive(self):
        rec = FlightRecorder()
        rec.record("a")
        rec.record("b")
        first = rec.drain_since(0)
        assert [e["kind"] for e in first] == ["a", "b"]
        rec.record("c")
        assert [e["kind"] for e in rec.drain_since(first[-1]["seq"])] == ["c"]
        assert len(rec.dump()) == 3  # nothing was consumed

    def test_reserved_keys_cannot_be_shadowed(self):
        rec = FlightRecorder()
        rec.record("error", detail="x", t_s=-1.0, seq=-1)
        entry = rec.dump()[0]
        assert entry["seq"] == 1 and entry["t_s"] > 0
        assert entry["kind"] == "error" and entry["detail"] == "x"

    def test_tracer_tap_records_closed_spans(self):
        rec = obs.enable_recorder()
        obs.enable(process="test")
        # A span attr named "kind" must not collide with the entry kind.
        with obs.span("exchange.send", kind="full", bytes=10):
            pass
        kinds = [e for e in rec.dump() if e["kind"] == "span"]
        assert kinds and kinds[-1]["name"] == "exchange.send"

    def test_disabled_record_is_a_noop(self):
        assert obs.get_recorder() is None
        obs.record("never")  # must not raise, must not allocate a ring
        assert obs.get_recorder() is None


# ---------------------------------------------------------------------------
# sampler deltas
# ---------------------------------------------------------------------------

class TestTelemetrySampler:
    def test_only_changed_series_ship(self):
        reg = MetricsRegistry()
        reg.counter("sends", 2)
        s = TelemetrySampler(reg)
        p1 = s.sample()
        s.ack(p1["seq"])
        assert p1["c"] == {"sends": 2.0}
        p2 = s.sample()
        s.ack(p2["seq"])
        assert "c" not in p2  # nothing changed
        reg.counter("sends", 3)
        p3 = s.sample()
        assert p3["c"] == {"sends": 3.0}  # the delta, not the total

    def test_unacked_sample_merges_into_the_next(self):
        reg = MetricsRegistry()
        reg.counter("sends", 1)
        reg.observe("lat", 0.01)
        s = TelemetrySampler(reg)
        s.sample()  # never acked: the heartbeat carrying it failed
        reg.counter("sends", 4)
        reg.observe("lat", 0.03)
        merged = s.sample()
        assert merged["c"]["sends"] == 5.0
        assert merged["h"]["lat"]["count"] == 2.0
        assert merged["h"]["lat"]["min"] == pytest.approx(0.01)
        assert merged["h"]["lat"]["max"] == pytest.approx(0.03)
        # seq still advances per sample; the coordinator sees one gap.
        assert merged["seq"] == 2

    def test_ack_clears_pending(self):
        reg = MetricsRegistry()
        reg.counter("sends", 1)
        s = TelemetrySampler(reg)
        p = s.sample()
        s.ack(p["seq"])
        reg.counter("sends", 1)
        p2 = s.sample()
        assert p2["c"]["sends"] == 1.0  # no re-merge of the acked delta

    def test_recorder_entries_ride_once(self):
        reg = MetricsRegistry()
        rec = FlightRecorder()
        rec.record("error", detail="boom")
        s = TelemetrySampler(reg, recorder=rec)
        p1 = s.sample()
        s.ack(p1["seq"])
        assert [e["kind"] for e in p1["rec"]] == ["error"]
        p2 = s.sample()
        s.ack(p2["seq"])
        assert "rec" not in p2  # drained incrementally, not re-shipped


# ---------------------------------------------------------------------------
# payload fuzz hardening (unit level)
# ---------------------------------------------------------------------------

MALFORMED = [
    "not a mapping",
    {},
    {"v": 999, "seq": 1, "t": 0.0},
    {"v": TELEMETRY_VERSION, "seq": 0, "t": 0.0},
    {"v": TELEMETRY_VERSION, "seq": True, "t": 0.0},
    {"v": TELEMETRY_VERSION, "seq": "1", "t": 0.0},
    {"v": TELEMETRY_VERSION, "seq": 1, "t": float("nan")},
    {"v": TELEMETRY_VERSION, "seq": 1, "t": 0.0, "c": ["boom"]},
    {"v": TELEMETRY_VERSION, "seq": 1, "t": 0.0, "c": {"x": float("inf")}},
    {"v": TELEMETRY_VERSION, "seq": 1, "t": 0.0, "g": {"": 1.0}},
    {"v": TELEMETRY_VERSION, "seq": 1, "t": 0.0, "h": {"x": {}}},
    {"v": TELEMETRY_VERSION, "seq": 1, "t": 0.0,
     "h": {"x": {"count": 1, "sum": "y", "min": 0, "max": 0}}},
    {"v": TELEMETRY_VERSION, "seq": 1, "t": 0.0,
     "h": {"x": {"count": 1, "sum": 0.0, "min": 0.0, "max": 0.0,
                 "buckets": [1] * (len(DEFAULT_BUCKET_BOUNDS) + 50)}}},
    {"v": TELEMETRY_VERSION, "seq": 1, "t": 0.0,
     "rec": [{"kind": "x"}]},  # entry without a seq
    {"v": TELEMETRY_VERSION, "seq": 1, "t": 0.0,
     "rec": [{"seq": 1}] * (MAX_RECORDER_ENTRIES + 1)},
]


class TestPayloadFuzz:
    @pytest.mark.parametrize("payload", MALFORMED)
    def test_malformed_payloads_raise_typed_error(self, payload):
        with pytest.raises(TelemetryError):
            validate_telemetry(payload)

    def test_rejections_are_counted_and_state_untouched(self):
        ft = FleetTelemetry()
        ft.ingest("w0", 1, _payload(1, c={"sends": 1.0}))
        with pytest.raises(TelemetryError):
            ft.ingest("w0", 1, {"v": 999})
        assert ft.document()["stats"]["payloads_rejected"] == 1
        assert ft.worker("w0").counters["sends"] == 1.0


# ---------------------------------------------------------------------------
# coordinator-side accumulation
# ---------------------------------------------------------------------------

class TestWorkerTelemetry:
    def test_window_is_bounded_and_slides(self):
        ft = FleetTelemetry(window=5)
        for seq in range(1, 9):
            ft.ingest("w0", 1, _payload(seq, c={"n": 1.0}))
        w = ft.worker("w0")
        assert len(w.window) == 5
        assert w.window[0]["seq"] == 4  # oldest three slid out
        assert w.counters["n"] == 8.0  # totals keep the full history

    def test_duplicate_seq_is_dropped(self):
        ft = FleetTelemetry()
        p = _payload(1, c={"n": 1.0})
        ft.ingest("w0", 1, p)
        ft.ingest("w0", 1, p)  # a retried heartbeat
        assert ft.worker("w0").counters["n"] == 1.0

    def test_generation_bump_resets_sequence_not_totals(self):
        ft = FleetTelemetry()
        ft.ingest("w0", 1, _payload(5, c={"n": 2.0}))
        ft.ingest("w0", 2, _payload(1, c={"n": 3.0}))  # restarted worker
        w = ft.worker("w0")
        assert w.generation == 2 and w.last_seq == 1
        assert w.counters["n"] == 5.0

    def test_gaps_are_counted(self):
        ft = FleetTelemetry()
        ft.ingest("w0", 1, _payload(1))
        ft.ingest("w0", 1, _payload(4))
        assert ft.worker("w0").gaps == 1


# ---------------------------------------------------------------------------
# straggler detection (unit level)
# ---------------------------------------------------------------------------

class TestStragglerDetection:
    def _fleet(self, **kwargs):
        kwargs.setdefault("straggler_min_samples", 3)
        return FleetTelemetry(**kwargs)

    def _feed(self, ft, latencies, epochs=4):
        for worker, value in latencies.items():
            for seq in range(1, epochs + 1):
                ft.ingest(worker, 1, _latency_payload(seq, value))

    def test_exactly_the_slow_worker_is_flagged(self):
        ft = self._fleet()
        self._feed(ft, {"w0": 0.010, "w1": 0.012, "w2": 0.011, "w3": 0.200})
        events = ft.detect()
        assert [e["worker"] for e in events] == ["w3"]
        assert events[0]["event"] == "straggler"
        assert ft.fleet_rollup()["stragglers"] == ["w3"]
        # Edge-triggered: a second pass emits nothing new.
        assert ft.detect() == []

    def test_recovery_emits_once(self):
        ft = self._fleet(window=10)
        self._feed(ft, {"w0": 0.010, "w1": 0.011, "w2": 0.300})
        assert [e["event"] for e in ft.detect()] == ["straggler"]
        # The slow worker speeds up: fast samples fill the bounded window
        # and the slow ones slide out, pulling the mean under threshold.
        for seq in range(5, 20):
            ft.ingest("w2", 1, _latency_payload(seq, 0.010))
        events = ft.detect()
        assert [e["event"] for e in events] == ["recovered"]
        assert ft.worker("w2").straggler_since is None

    def test_a_fleet_of_one_has_no_median_to_be_slower_than(self):
        ft = self._fleet()
        self._feed(ft, {"w0": 0.5})
        assert ft.detect() == []

    def test_min_samples_gate(self):
        ft = self._fleet(straggler_min_samples=10)
        self._feed(ft, {"w0": 0.01, "w1": 0.5}, epochs=4)
        assert ft.detect() == []  # nobody has 10 epochs in window yet

    def test_absolute_floor_spares_microsecond_jitter(self):
        ft = self._fleet(straggler_min_seconds=1e-3)
        self._feed(ft, {"w0": 1e-6, "w1": 1e-6, "w2": 2e-4})
        assert ft.detect() == []  # 200µs > 3×median but under the floor

    def test_events_since_cursor(self):
        ft = self._fleet()
        self._feed(ft, {"w0": 0.01, "w1": 0.011, "w2": 0.3})
        ft.detect()
        events = ft.events_since(0)
        assert len(events) == 1
        assert ft.events_since(events[-1]["seq"]) == []


# ---------------------------------------------------------------------------
# front-end surfaces over synthetic documents
# ---------------------------------------------------------------------------

class TestFrontEnds:
    def _doc(self):
        ft = FleetTelemetry(straggler_min_samples=3)
        for worker, value in (("w0", 0.01), ("w1", 0.012), ("w2", 0.4)):
            for seq in range(1, 5):
                ft.ingest(worker, 1, _latency_payload(seq, value))
        ft.detect()
        return ft.document()

    def test_render_top_shows_workers_and_flags(self):
        text = render_top(self._doc(), alive={"w0": True, "w1": True,
                                              "w2": False})
        assert "w0" in text and "w2" in text
        assert "STRAGGLER" in text and "DOWN" in text

    def test_prometheus_roundtrip_validates(self):
        text = prometheus_text(self._doc())
        assert validate_prometheus(text) == []
        assert 'repro_worker_epochs_total{worker="w0"} 4' in text
        assert 'repro_telemetry_straggler{worker="w2"} 1' in text


# ---------------------------------------------------------------------------
# end to end: a real fleet, heartbeat piggyback, kill drill
# ---------------------------------------------------------------------------

def _wait(predicate, timeout=15.0, poll=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return predicate()


@pytest.mark.timeout(120)
def test_fleet_telemetry_end_to_end(make_fleet, transport_driver):
    from tests.conftest import make_list

    from repro.cluster.fleet import Fleet

    harness = make_fleet(2, heartbeat_interval=0.1)
    fleet = Fleet.connect(transport_driver, harness.coordinator.host,
                          harness.coordinator.port)
    try:
        head = make_list(transport_driver.jvm, range(30))
        pin = transport_driver.jvm.pin(head)
        try:
            for _ in range(3):
                result = fleet.broadcast([head])
                assert result.delivered == 2

            # Heartbeats carry the epoch series to the coordinator.
            names = harness.worker_names

            def all_reported():
                doc = fleet.telemetry()
                return all(
                    doc["workers"].get(n, {}).get("counters", {})
                    .get("worker.epochs", 0) >= 3 for n in names
                )

            assert _wait(all_reported), "telemetry never converged"
            doc = fleet.telemetry()
            for name in names:
                w = doc["workers"][name]
                assert w["samples"] > 0
                assert w["counters"]["worker.epochs"] == 3.0
                assert w["counters"]["worker.epoch_bytes"] > 0
                assert w["rollup"]["epoch_receive_mean_s"] > 0
                assert w["window_len"] <= doc["stats"]["window"]
            assert doc["rollups"]["workers_reporting"] == 2
            assert doc["alive"] == {n: True for n in names}

            # -- the kill drill: telemetry must outlive the worker ------
            victim = names[0]
            harness.kill_worker(victim)
            assert _wait(lambda: not fleet.lookup(victim)["alive"]), \
                "coordinator never declared the victim dead"

            postmortem = fleet.postmortem(victim)
            assert postmortem is not None
            assert postmortem["samples"] > 0
            assert postmortem["counters"]["worker.epochs"] == 3.0
            assert len(postmortem["window"]) > 0
            # The flight-recorder dump its heartbeats carried: per-epoch
            # entries at minimum (the worker records one per apply).
            kinds = {e["kind"] for e in postmortem["recorder"]}
            assert "epoch" in kinds

            # The survivor still streams; the dead worker's series stay.
            survivor = names[1]
            result = fleet.broadcast([head])
            assert result.delivered == 1
            doc = fleet.telemetry()
            assert doc["alive"][victim] is False
            assert doc["workers"][victim]["counters"]["worker.epochs"] == 3.0
            assert _wait(lambda: fleet.telemetry()["workers"][survivor]
                         ["counters"]["worker.epochs"] >= 4)
        finally:
            transport_driver.jvm.unpin(pin)
    finally:
        fleet.close()


@pytest.mark.timeout(120)
def test_malformed_telemetry_answers_typed_error_and_survives(make_fleet):
    """A fuzzer bit-flip in the piggybacked payload must come back as a
    typed ClusterProtocolError on the same connection — never a hang, a
    closed coordinator socket, or an un-beat worker."""
    from repro.cluster.errors import ClusterProtocolError
    from repro.cluster.membership import CoordinatorClient

    harness = make_fleet(1, heartbeat_interval=0.2)
    worker = harness.worker_names[0]
    with CoordinatorClient(harness.coordinator.host,
                           harness.coordinator.port) as client:
        generation = client.call("lookup", name=worker)["generation"]
        for bad in ({"v": 999}, {"v": 1, "seq": -3, "t": 0.0},
                    {"v": 1, "seq": 1, "t": 0.0, "c": {"x": float("nan")}}):
            with pytest.raises(ClusterProtocolError):
                client.call("heartbeat", name=worker,
                            generation=generation, telemetry=bad)
        # Same connection still serves RPCs, and the worker is still
        # alive: malformed telemetry must not kill either.
        record = client.call("lookup", name=worker)
        assert record["alive"] is True
        result = client.call("heartbeat", name=worker,
                             generation=generation)
        assert result["known"] is True
        assert client.call("telemetry")["telemetry"][
            "stats"]["payloads_rejected"] == 3
