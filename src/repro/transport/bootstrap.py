"""Building a Skyway runtime inside a fresh process.

``multiprocessing.spawn`` pickles worker arguments, and a
:class:`~repro.core.runtime.SkywayRuntime` (heap bytearrays, klass graphs,
hooks) is not meaningfully picklable — so workers are described by a
*recipe*: the dotted name of a zero-argument classpath factory plus JVM
sizing.  Parent and child both call :func:`build_runtime`, which also
gives tests an identical in-process reference runtime for the
byte-identical round-trip check.
"""

from __future__ import annotations

import importlib
from typing import Callable

from repro.core.runtime import SkywayRuntime
from repro.core.type_registry import DriverRegistry
from repro.jvm.jvm import JVM
from repro.transport.errors import WorkerStartupError
from repro.types.classdef import ClassPath

MB = 1024 * 1024


def resolve_classpath_factory(spec: str) -> Callable[[], ClassPath]:
    """``"pkg.module:function"`` -> the callable it names."""
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise WorkerStartupError(
            f"classpath factory {spec!r} is not of the form 'module:function'"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise WorkerStartupError(
            f"cannot import classpath factory module {module_name!r}: {exc}"
        ) from exc
    factory = getattr(module, attr, None)
    if not callable(factory):
        raise WorkerStartupError(
            f"{module_name!r} has no callable {attr!r}"
        )
    return factory


def build_runtime(
    name: str,
    classpath_factory: str,
    young_bytes: int = 4 * MB,
    old_bytes: int = 64 * MB,
) -> SkywayRuntime:
    """A self-driving Skyway runtime (each process is its own registry
    driver; cross-process agreement comes from the HELLO merge)."""
    classpath = resolve_classpath_factory(classpath_factory)()
    jvm = JVM(name, classpath=classpath,
              young_bytes=young_bytes, old_bytes=old_bytes)
    return SkywayRuntime(jvm, DriverRegistry(), is_driver=True)
