"""Global class numbering (paper §4.1, Algorithm 1).

The driver JVM owns the complete *type registry* mapping every class-name
string to a cluster-unique integer ID.  Each worker holds a *registry view*
(a subset) and a pull-based protocol keeps it sufficient:

* ``REQUEST_VIEW`` at worker startup copies the driver's current registry —
  "most classes that will be needed by this worker JVM are likely already
  registered... getting their IDs in a batch is much more efficient";
* ``LOOKUP`` on a class-load miss sends the class name and receives (or
  creates) its ID;
* ``LOOKUP_BY_ID`` is the receive-path complement: a worker may receive a
  tID registered by *another* worker after its view snapshot, and must
  recover the class name to load the missing class ("if we encounter an
  unloaded class on the worker JVM, Skyway instructs the class loader to
  load the missing class since the type registry knows the full class
  name").

Message costs are charged through the cluster's control-message path; the
ID lands in the klass meta-object's ``tID`` field (``WRITETID``).
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.heap.klass import Klass

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.cluster import Cluster, Node


class TypeRegistryError(RuntimeError):
    pass


class UnknownTypeIDError(TypeRegistryError):
    """A tID arrived that no registry on this side can resolve.

    Carries the offending ID so transports can report it to the peer
    (paper §4.1: a receive-path miss normally recovers via LOOKUP_BY_ID;
    across real process boundaries there is no shared driver to ask, so
    the miss is terminal and must name the ID).
    """

    def __init__(self, tid: int) -> None:
        super().__init__(f"no class registered with tID {tid}")
        self.tid = tid


#: Approximate wire size of a control message envelope.
_ENVELOPE_BYTES = 64


class DriverRegistry:
    """The complete registry on the driver JVM (Algorithm 1, driver part)."""

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._names: Dict[int, str] = {}
        # tID 0 is reserved: a zero klass word in a stream always means a
        # slot that was never stamped, so the receiver can reject it as
        # corruption instead of silently resolving it to a real class.
        self._next_id = 1
        self.lookup_requests = 0
        self.view_requests = 0

    def bootstrap_from(self, loaded: list) -> None:
        """Populate from the driver's own loaded classes at JVM startup."""
        for klass in loaded:
            klass.tid = self.register(klass.name)

    def register(self, name: str) -> int:
        existing = self._ids.get(name)
        if existing is not None:
            return existing
        tid = self._next_id
        self._next_id += 1
        self._ids[name] = tid
        self._names[tid] = name
        return tid

    # -- protocol handlers (driver daemon thread, Algorithm 1 part 2) -------

    def handle_request_view(self) -> Dict[str, int]:
        self.view_requests += 1
        return dict(self._ids)

    def handle_lookup(self, name: str) -> int:
        self.lookup_requests += 1
        return self.register(name)

    def handle_lookup_by_id(self, tid: int) -> str:
        try:
            return self._names[tid]
        except KeyError:
            raise UnknownTypeIDError(tid) from None

    def install_snapshot(self, mapping: Dict[str, int]) -> None:
        """Replace this registry's numbering wholesale (transport HELLO
        convergence: after two processes exchange registries, both install
        the merged mapping so every tID resolves identically on each
        side).  Future registrations continue past the merged maximum."""
        self._ids = dict(mapping)
        self._names = {tid: name for name, tid in mapping.items()}
        self._next_id = max(self._names, default=0) + 1

    def snapshot(self) -> Dict[str, int]:
        return dict(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, name: str) -> bool:
        return name in self._ids


class RegistryView:
    """A worker's (or the driver's own) view of the registry.

    Bound to one node; remote calls charge network time on the cluster.
    The driver's own view answers locally with no messages.
    """

    def __init__(
        self,
        driver_registry: DriverRegistry,
        cluster: Optional["Cluster"] = None,
        node: Optional["Node"] = None,
        driver_node: Optional["Node"] = None,
    ) -> None:
        self._driver = driver_registry
        self._cluster = cluster
        self._node = node
        self._driver_node = driver_node
        self._ids: Dict[str, int] = {}
        self._names: Dict[int, str] = {}
        self.remote_lookups = 0

    @property
    def is_remote(self) -> bool:
        return (
            self._cluster is not None
            and self._node is not None
            and self._node is not self._driver_node
        )

    def _charge_message(self, payload_bytes: int) -> None:
        if self.is_remote:
            assert self._cluster and self._node and self._driver_node
            self._cluster.send_message(
                self._node, self._driver_node, _ENVELOPE_BYTES + payload_bytes
            )

    # -- worker protocol (Algorithm 1, worker part) ---------------------------

    def request_view(self) -> None:
        """REQUEST_VIEW at startup: batch-fetch the current registry."""
        snapshot = self._driver.handle_request_view()
        self._charge_message(sum(len(n) + 4 for n in snapshot))
        self._install(snapshot)

    def _install(self, mapping: Dict[str, int]) -> None:
        for name, tid in mapping.items():
            self._ids[name] = tid
            self._names[tid] = name

    def id_for(self, name: str) -> int:
        """The tID for a class, pulling from the driver on a miss."""
        existing = self._ids.get(name)
        if existing is not None:
            return existing
        self.remote_lookups += 1
        self._charge_message(len(name))
        tid = self._driver.handle_lookup(name)
        self._charge_message(4)
        self._ids[name] = tid
        self._names[tid] = name
        return tid

    def name_for(self, tid: int) -> str:
        """The class name for a tID, pulling from the driver on a miss."""
        existing = self._names.get(tid)
        if existing is not None:
            return existing
        self.remote_lookups += 1
        self._charge_message(4)
        name = self._driver.handle_lookup_by_id(tid)
        self._charge_message(len(name))
        self._ids[name] = tid
        self._names[tid] = name
        return name

    def on_class_load(self, klass: Klass) -> None:
        """The class-loader hook: obtain the tID and WRITETID it."""
        klass.tid = self.id_for(klass.name)

    def install_snapshot(self, mapping: Dict[str, int]) -> None:
        """Replace the view's tables with a merged mapping (see
        :meth:`DriverRegistry.install_snapshot`)."""
        self._ids = dict(mapping)
        self._names = {tid: name for name, tid in mapping.items()}

    def snapshot(self) -> Dict[str, int]:
        return dict(self._ids)

    def knows(self, name: str) -> bool:
        return name in self._ids

    def __len__(self) -> int:
        return len(self._ids)
