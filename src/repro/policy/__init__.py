"""repro.policy — the adaptive send-policy plane.

One decision engine for every transfer-mode choice in the repo: full vs
delta (§4.3's crossover), compiled-kernel vs interpreted traversal,
single vs parallel streams (§4.2), digest and compact-header knobs.  Per
channel per epoch, a :class:`PolicyEngine` turns live
:class:`ChannelSignals` (card-table dirty fraction, measured wire
bandwidth, chunk-queue wait, channel history) into a :class:`SendPlan`
via a declarative :class:`DecisionTable`; capability negotiation clamps
the plan, channels execute it, and the decision lands in the
:class:`~repro.exchange.channel.SendReceipt` and the trace
(``policy.decide`` spans + ``policy.decisions`` counters).

Import discipline: this package imports :mod:`repro.obs` and stdlib only,
so every layer — ``repro.delta``, ``repro.exchange``, ``repro.spark``,
``repro.cluster`` — can consume plans without cycles.
"""

from repro.policy.engine import ChannelHistory, PolicyEngine, resolve_engine
from repro.policy.legacy import (
    DEFAULT_BYTE_CROSSOVER,
    RECORD_OVERHEAD,
    ChannelStats,
    DeltaPolicy,
    EpochDecision,
)
from repro.policy.plan import NON_FALLBACK_REASONS, SendPlan
from repro.policy.policies import (
    AdaptivePolicy,
    AlwaysDelta,
    AlwaysFull,
    CrossoverPolicy,
    DecisionTable,
    PolicyError,
    Rule,
    guard_rules,
    resolve_policy,
)
from repro.policy.signals import ChannelSignals

__all__ = [
    "AdaptivePolicy",
    "AlwaysDelta",
    "AlwaysFull",
    "ChannelHistory",
    "ChannelSignals",
    "ChannelStats",
    "CrossoverPolicy",
    "DecisionTable",
    "DeltaPolicy",
    "DEFAULT_BYTE_CROSSOVER",
    "EpochDecision",
    "NON_FALLBACK_REASONS",
    "PolicyEngine",
    "PolicyError",
    "RECORD_OVERHEAD",
    "Rule",
    "SendPlan",
    "guard_rules",
    "resolve_engine",
    "resolve_policy",
]
