"""Cross-process trace propagation: worker spans ship back in RESULT
payloads and stitch under the driver's trace (TRACE wire frame, v2)."""

from repro import obs
from repro.exchange.capabilities import ChannelCapabilities
from repro.exchange.socket import SocketGraphChannel
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.transport import WorkerClient

from tests.conftest import make_list


def test_graph_send_stitches_worker_spans(spawned_worker, transport_driver):
    tracer = obs.enable("driver")
    client = WorkerClient(
        transport_driver, spawned_worker.host, spawned_worker.port,
    ).connect()
    try:
        head = make_list(transport_driver.jvm, range(12))
        result, _ = client.send_graph([head])
    finally:
        client.close()
    assert "trace" not in result  # absorbed, not leaked to the caller
    spans = tracer.spans()
    assert all(s.closed for s in spans)
    assert {s.trace_id for s in spans} == {tracer.trace_id}
    worker_spans = [s for s in spans if s.process.startswith("worker:")]
    assert any(s.name == "worker.recv_graph" for s in worker_spans)
    ids = {s.span_id for s in spans}
    assert all(s.parent_id in ids for s in worker_spans)
    wire = next(s for s in spans if s.name == "wire.send_graph")
    root_remote = [s for s in worker_spans if s.parent_id == wire.span_id]
    assert root_remote, "worker op span must parent under the wire span"
    for s in root_remote:
        assert s.start_us >= wire.start_us - 2.0
        assert s.end_us <= wire.end_us + 2.0


def test_blob_send_traced_and_valid(spawned_worker, transport_driver):
    tracer = obs.enable("driver")
    client = WorkerClient(
        transport_driver, spawned_worker.host, spawned_worker.port,
    ).connect()
    try:
        result = client.send_blob(b"x" * 20_000)
    finally:
        client.close()
    assert "trace" not in result
    names = {s.name for s in tracer.spans()}
    assert {"wire.send_blob", "worker.recv_blob", "recv.receive"} <= names
    doc = to_chrome_trace(tracer.spans(), trace_id=tracer.trace_id)
    assert validate_chrome_trace(doc) == []


def test_epoch_send_traced_end_to_end(spawned_worker, transport_driver):
    tracer = obs.enable("driver")
    client = WorkerClient(
        transport_driver, spawned_worker.host, spawned_worker.port,
    ).connect()
    channel = SocketGraphChannel(
        transport_driver, client,
        requested=ChannelCapabilities(kernel=True, delta=True),
        destination="obs-prop",
    )
    try:
        head = make_list(transport_driver.jvm, range(10))
        channel.send([head], digest=True)
    finally:
        channel.close()
        client.close()
    names = {s.name for s in tracer.spans()}
    assert {"exchange.send", "send.epoch", "send.traverse",
            "wire.send_epoch", "worker.recv_epoch"} <= names
    doc = to_chrome_trace(tracer.spans(), trace_id=tracer.trace_id)
    assert validate_chrome_trace(doc) == []


def test_disabled_tracing_ships_no_trace_frame(spawned_worker,
                                               transport_driver):
    """With no tracer enabled the client sends no TRACE frame, the worker
    adds no payload, and the RESULT is exactly the v1-shaped dict."""
    assert not obs.enabled()
    client = WorkerClient(
        transport_driver, spawned_worker.host, spawned_worker.port,
    ).connect()
    try:
        result = client.send_blob(b"y" * 1000)
    finally:
        client.close()
    assert "trace" not in result
    assert not obs.enabled()


def test_client_connect_registers_transport_source(spawned_worker,
                                                   transport_driver):
    client = WorkerClient(
        transport_driver, spawned_worker.host, spawned_worker.port,
    ).connect()
    names = [n for n in obs.registry().source_names()
             if n.startswith("transport.")]
    assert len(names) == 1
    src = obs.registry().snapshot()["sources"][names[0]]
    assert src["frames_sent"] > 0  # the HELLO at least
    client.close()
    assert not [n for n in obs.registry().source_names()
                if n.startswith("transport.")]
    client.close()  # idempotent
