"""B-FANIN — fan-in concurrency: one worker, a thousand delta channels.

The ablation behind the async front-end (:mod:`repro.transport.aserve`).
Per serve mode (``threads`` = one blocking thread per connection, the
executable spec; ``async`` = one event loop) and per channel count
(16/128/1024 full, 8/32 smoke), one worker process receives C concurrent
delta channels, each carrying its own ~24-node ListNode chain:

* **epoch 1** bootstraps every channel FULL;
* one field per chain is mutated;
* **epoch 2** must ride the delta path on every channel.

Both epochs are digest-gated per channel: the worker's reported semantic
digest must equal the digest the driver computed over its own heap before
sending — 2·C independent graphs, so any cross-channel mixup in the mux
demultiplexer shows up as a digest mismatch, not a hang.

Driver strategy differs per arm, deliberately: the ``threads`` arm opens
C classic connections and drives them from min(C, 64) sender threads
(the realistic fan-in client a thread-per-connection server implies),
while the ``async`` arm pipelines all C channels over *one* mux
connection.  Latency is measured where each protocol defines it —
whole ``send_epoch`` call for classic, trailer-flush → RESULT for mux —
so the columns are comparable as "time until the sender holds the ack".

``fanin_checks_pass`` is the CI gate: every digest matches, epoch 2 is
all-delta, the async worker sustains the largest channel count, and the
async send wall-clock beats thread-per-connection at that count.
Results land in ``benchmarks/results/fanin.{txt,json}``.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.delta.channel import DeltaSendChannel
from repro.delta.wire import FRAME_DELTA, FRAME_FULL
from repro.transport.aserve import MuxEpochClient
from repro.transport.bootstrap import MB, build_runtime
from repro.transport.client import WorkerClient, WorkerHandle
from repro.transport.digest import semantic_graph_digest
from repro.transport.errors import TransportError
from repro.transport.testing import SAMPLE_FACTORY
from repro.transport.worker import WorkerSpec

DEFAULT_CHANNELS = (16, 128, 1024)
SMOKE_CHANNELS = (8, 32)
#: Nodes per per-channel ListNode chain.  Long enough that mutating one
#: field keeps the mutation rate well under the delta policy's FULL
#: crossover, small enough that 1024 chains stay cheap to build.
LIST_NODES = 24
#: Cap on concurrent sender threads in the ``threads`` arm; beyond this
#: a single driver process stops gaining from more senders and the
#: measurement drowns in scheduler noise.
SENDER_THREADS = 64

_KIND_NAMES = {FRAME_FULL: "full", FRAME_DELTA: "delta"}


def _make_chain(jvm, node_count: int, seed: int) -> int:
    """One ListNode chain with channel-distinct payloads (so every
    channel's digest differs — cross-channel mixups can't cancel out)."""
    head = 0
    pin = jvm.pin(0)
    try:
        for i in reversed(range(node_count)):
            node = jvm.new_instance("ListNode")
            jvm.set_field(node, "payload", seed * 1_000 + i)
            jvm.set_field(node, "next", pin.address)
            pin.address = node
            head = node
        return head
    finally:
        jvm.unpin(pin)


def _percentile_ms(latencies: Sequence[float], q: float) -> float:
    """q-th percentile of a latency list, in milliseconds (nearest-rank)."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = min(len(ordered) - 1, int(len(ordered) * q))
    return round(ordered[rank] * 1e3, 3)


def _pooled(jobs: List, worker_fn, pool_size: int) -> None:
    """Run ``worker_fn(index)`` over every job index from a bounded
    thread pool (round-robin shards keep per-thread work even)."""
    pool_size = max(1, min(pool_size, len(jobs)))
    shards = [list(range(i, len(jobs), pool_size)) for i in range(pool_size)]
    errors: List[BaseException] = []

    def run(shard: List[int]) -> None:
        for index in shard:
            try:
                worker_fn(index)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
                return

    threads = [threading.Thread(target=run, args=(shard,), daemon=True)
               for shard in shards]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def _epoch_jobs(
    driver, channels: List[DeltaSendChannel], heads: List[int],
) -> Tuple[List[Tuple[int, int, bytes]], List[str], List[str]]:
    """Serialize one epoch on every channel (driver-side, untimed) and
    return (jobs for the wire, expected digests, wire kinds)."""
    jobs = []
    expected = []
    kinds = []
    for channel, head in zip(channels, heads):
        frame = channel.send([head])
        jobs.append((channel.channel_id, channel.epoch, frame))
        expected.append(semantic_graph_digest(driver.jvm, [head]))
        kinds.append(_KIND_NAMES.get(frame[0], f"kind-{frame[0]}"))
    return jobs, expected, kinds


def _epoch_row(label: str, wall_s: float, latencies: List[float],
               digests_ok: int, acked: int, total: int,
               kinds: List[str]) -> Dict[str, object]:
    return {
        "label": label,
        "wall_s": round(wall_s, 4),
        "p50_ms": _percentile_ms(latencies, 0.50),
        "p99_ms": _percentile_ms(latencies, 0.99),
        "acked": acked,
        "digests_ok": digests_ok,
        "channels": total,
        "modes": sorted(set(kinds)),
    }


def _run_threads_arm(driver, handle, channels, heads,
                     row: Dict[str, object]) -> None:
    """C classic connections, min(C, 64) sender threads."""
    count = len(channels)
    clients: List[Optional[WorkerClient]] = [None] * count

    started = time.perf_counter()

    def connect(index: int) -> None:
        client = WorkerClient(driver, handle.host, handle.port,
                              read_timeout=300.0, connect_attempts=3)
        client.connect()
        clients[index] = client

    try:
        _pooled(list(range(count)), connect, SENDER_THREADS)
        row["setup_s"] = round(time.perf_counter() - started, 4)

        for label in ("full", "delta"):
            jobs, expected, kinds = _epoch_jobs(driver, channels, heads)
            latencies: List[float] = [0.0] * count
            digests: List[Optional[str]] = [None] * count

            def send(index: int) -> None:
                channel_id, epoch, frame = jobs[index]
                t0 = time.perf_counter()
                result = clients[index].send_epoch(
                    frame, channel_id, epoch, digest=True)
                latencies[index] = time.perf_counter() - t0
                digests[index] = result.get("digest")

            started = time.perf_counter()
            _pooled(jobs, send, SENDER_THREADS)
            wall = time.perf_counter() - started
            acked = sum(1 for d in digests if d is not None)
            ok = sum(1 for d, e in zip(digests, expected) if d == e)
            row["epochs"].append(
                _epoch_row(label, wall, latencies, ok, acked, count, kinds))
            if label == "full":
                _mutate(driver, heads)
    finally:
        for client in clients:
            if client is not None:
                try:
                    client.close()
                except TransportError:
                    pass


def _run_async_arm(driver, handle, channels, heads,
                   row: Dict[str, object]) -> None:
    """All C channels multiplexed over one connection."""
    count = len(channels)
    started = time.perf_counter()
    mux = MuxEpochClient(driver, handle.host, handle.port,
                         node_name=driver.jvm.name, read_timeout=300.0,
                         connect_attempts=3)
    mux.connect()
    row["setup_s"] = round(time.perf_counter() - started, 4)
    try:
        for label in ("full", "delta"):
            jobs, expected, kinds = _epoch_jobs(driver, channels, heads)
            started = time.perf_counter()
            results = mux.send_epochs(jobs)
            wall = time.perf_counter() - started
            latencies = []
            ok = 0
            acked = 0
            for (channel_id, _epoch, _frame), want in zip(jobs, expected):
                outcome = results.get(channel_id)
                if outcome is None:
                    continue
                acked += 1
                if outcome["latency_s"] is not None:
                    latencies.append(outcome["latency_s"])
                if outcome["result"].get("digest") == want:
                    ok += 1
            row["epochs"].append(
                _epoch_row(label, wall, latencies, ok, acked, count, kinds))
            if label == "full":
                _mutate(driver, heads)
        stats = mux.stats()
        row["aserve"] = stats.get("aserve")
    finally:
        mux.close()


def _mutate(driver, heads: List[int]) -> None:
    """One field per chain — enough to dirty every channel's epoch record
    while keeping the mutation rate squarely in delta territory."""
    for head in heads:
        current = driver.jvm.get_field(head, "payload")
        driver.jvm.set_field(head, "payload", current + 10_000)


def _run_arm(mode: str, count: int, index: int,
             coordinator=None) -> Dict[str, object]:
    driver = build_runtime(f"fanin-driver-{mode}-{count}", SAMPLE_FACTORY,
                           old_bytes=256 * MB)
    pins = []
    heads = []
    for i in range(count):
        head = _make_chain(driver.jvm, LIST_NODES, seed=i + 1)
        pins.append(driver.jvm.pin(head))
        heads.append(head)
    channels = [
        DeltaSendChannel(driver, f"fanin-{mode}-{count}",
                         channel_id=i + 1)
        for i in range(count)
    ]

    spec = WorkerSpec(
        name=f"fanin-{mode}-{count}",
        classpath_factory=SAMPLE_FACTORY,
        serve_mode=mode,
        read_timeout=300.0,
        old_bytes=256 * MB,
        listen_backlog=2048,
    )
    if coordinator is not None:
        # Live mode: the arm's worker registers and heartbeats its
        # telemetry, so the run ends with a `repro.obs top` frame.
        spec = dataclasses.replace(
            spec, coordinator_host=coordinator.host,
            coordinator_port=coordinator.port,
        )
    handle = WorkerHandle.spawn(spec, startup_timeout=60.0)

    row: Dict[str, object] = {
        "mode": mode, "channels": count, "epochs": [],
    }
    try:
        if mode == "async":
            _run_async_arm(driver, handle, channels, heads, row)
        else:
            _run_threads_arm(driver, handle, channels, heads, row)
        if coordinator is not None:
            row["live_top"] = _live_frame(coordinator)
    finally:
        handle.stop()
        for channel in channels:
            channel.close()
        for pin in pins:
            driver.jvm.unpin(pin)

    row["send_wall_s"] = round(
        sum(e["wall_s"] for e in row["epochs"]), 4)
    row["digests_ok"] = all(
        e["digests_ok"] == e["channels"] for e in row["epochs"])
    row["sustained"] = all(
        e["acked"] == e["channels"] for e in row["epochs"])
    return row


def _live_frame(coordinator) -> str:
    """One `repro.obs top` frame from the live coordinator (telemetry
    needs a heartbeat round to land the final epochs first)."""
    from repro.cluster.membership import CoordinatorClient
    from repro.obs.live import render_top

    time.sleep(0.3)
    with CoordinatorClient(coordinator.host, coordinator.port) as client:
        doc = client.call("telemetry")["telemetry"]
    return render_top(doc, alive=doc.get("alive"))


def run_fanin_experiment(
    channel_counts: Optional[Sequence[int]] = None,
    smoke: bool = False,
    live: bool = False,
) -> Dict[str, object]:
    """Returns a JSON-serializable result dict (see module docstring).
    ``live=True`` spins a coordinator so each arm's worker streams
    telemetry; rows gain a rendered ``repro.obs top`` frame."""
    if channel_counts is None:
        channel_counts = SMOKE_CHANNELS if smoke else DEFAULT_CHANNELS
    coordinator = None
    if live:
        from repro.cluster.coordinator import (
            CoordinatorHandle,
            CoordinatorSpec,
        )

        coordinator = CoordinatorHandle.spawn(
            CoordinatorSpec(name="fanin-live-coordinator"),
            startup_timeout=30.0,
        )
    rows = []
    try:
        for index, count in enumerate(channel_counts):
            for mode in ("threads", "async"):
                rows.append(_run_arm(mode, count, index,
                                     coordinator=coordinator))
    finally:
        if coordinator is not None:
            coordinator.stop()
    return {
        "channel_counts": list(channel_counts),
        "list_nodes": LIST_NODES,
        "smoke": smoke,
        "live": live,
        "rows": rows,
        "checks": _checks(rows, max(channel_counts)),
    }


def _checks(rows: List[Dict[str, object]],
            max_count: int) -> Dict[str, bool]:
    by_arm = {(r["mode"], r["channels"]): r for r in rows}
    threads_max = by_arm.get(("threads", max_count))
    async_max = by_arm.get(("async", max_count))
    return {
        "digests_match_sender": all(r["digests_ok"] for r in rows),
        "every_channel_acked": all(r["sustained"] for r in rows),
        "epoch2_rides_delta": all(
            r["epochs"][1]["modes"] == ["delta"] for r in rows
            if len(r["epochs"]) > 1),
        "async_sustains_max_fanin": bool(
            async_max is not None and async_max["sustained"]
            and async_max["digests_ok"]),
        "async_beats_threads_at_max": bool(
            threads_max is not None and async_max is not None
            and async_max["send_wall_s"] < threads_max["send_wall_s"]),
    }


def fanin_checks_pass(result: Dict[str, object]) -> bool:
    return all(result["checks"].values())


def format_fanin_report(result: Dict[str, object]) -> str:
    lines = [
        "B-FANIN — one worker, C concurrent delta channels: "
        "thread-per-connection vs async event loop",
        f"  {result['list_nodes']}-node chain per channel; channel counts "
        f"{result['channel_counts']}; epoch 1 FULL, epoch 2 delta",
        "",
        f"  {'mode':>8} {'ch':>5} {'setup_s':>8} "
        f"{'fullW_s':>8} {'fp50_ms':>8} {'fp99_ms':>8} "
        f"{'dltW_s':>8} {'dp50_ms':>8} {'dp99_ms':>8} "
        f"{'digest':>7}",
    ]
    for row in result["rows"]:
        full, delta = row["epochs"][0], row["epochs"][1]
        digest = "ok" if row["digests_ok"] and row["sustained"] else "FAIL"
        lines.append(
            f"  {row['mode']:>8} {row['channels']:>5} "
            f"{row['setup_s']:>8.3f} "
            f"{full['wall_s']:>8.3f} {full['p50_ms']:>8.2f} "
            f"{full['p99_ms']:>8.2f} "
            f"{delta['wall_s']:>8.3f} {delta['p50_ms']:>8.2f} "
            f"{delta['p99_ms']:>8.2f} {digest:>7}"
        )
    aserve = next(
        (r.get("aserve") for r in reversed(result["rows"])
         if r.get("aserve")), None)
    if aserve:
        lines += [
            "",
            f"  async loop (largest run): "
            f"{aserve.get('epochs_applied', 0)} epochs applied, "
            f"{aserve.get('reads_paused_total', 0)} read pauses, "
            f"queue-wait p50 "
            f"{aserve.get('queue_wait_p50_s', 0.0) * 1e3:.2f} ms / p99 "
            f"{aserve.get('queue_wait_p99_s', 0.0) * 1e3:.2f} ms",
        ]
    for row in result["rows"]:
        if row.get("live_top"):
            lines += ["", f"  -- live telemetry after {row['mode']}/"
                          f"{row['channels']} --"]
            lines += [f"  {l}" for l in row["live_top"].splitlines()]
    lines += [
        "",
        "  checks: " + "  ".join(
            f"{name}={'pass' if ok else 'FAIL'}"
            for name, ok in result["checks"].items()
        ),
    ]
    return "\n".join(lines)
