"""Tests for Skyway's developer-facing streams API (paper §3.3):
file/socket variants, framing, and error handling."""

import pytest

from repro.core.runtime import attach_skyway
from repro.core.streams import (
    SkywayFileInputStream,
    SkywayFileOutputStream,
    SkywayObjectInputStream,
    SkywayObjectOutputStream,
    SkywaySocketInputStream,
    SkywaySocketOutputStream,
    SkywayStreamError,
)
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.simtime import Category

from tests.conftest import make_date, read_date, sample_classpath


@pytest.fixture
def cluster():
    classpath = sample_classpath()
    c = Cluster(lambda name: JVM(name, classpath=classpath), worker_count=2)
    attach_skyway(c.driver.jvm, [w.jvm for w in c.workers], cluster=c)
    return c


class TestFileStreams:
    def test_file_roundtrip(self, cluster):
        src, dst = cluster.driver, cluster.workers[0]
        date = make_date(src.jvm, 2018, 3, 24)
        out = SkywayFileOutputStream(src.jvm.skyway, src.disk, "a.sort.result")
        out.write_object(date)
        out.close()
        assert src.disk.exists("a.sort.result")

        # Ship the file to the destination node's disk, then read there.
        data = bytes(src.disk.open("a.sort.result").data)
        dst.disk.write_file("a.sort.result", data)
        inp = SkywayFileInputStream(dst.jvm.skyway, dst.disk, "a.sort.result")
        assert read_date(dst.jvm, inp.read_object()) == (2018, 3, 24)

    def test_file_write_charges_write_io(self, cluster):
        src = cluster.driver
        date = make_date(src.jvm, 1, 1, 1)
        before = src.clock.total(Category.WRITE_IO)
        out = SkywayFileOutputStream(src.jvm.skyway, src.disk, "f1")
        out.write_object(date)
        out.close()
        assert src.clock.total(Category.WRITE_IO) > before

    def test_file_read_charges_read_io(self, cluster):
        src = cluster.driver
        out = SkywayFileOutputStream(src.jvm.skyway, src.disk, "f2")
        out.write_object(make_date(src.jvm, 1, 1, 1))
        out.close()
        before = src.clock.total(Category.READ_IO)
        SkywayFileInputStream(src.jvm.skyway, src.disk, "f2")
        assert src.clock.total(Category.READ_IO) > before


class TestSocketStreams:
    def test_socket_roundtrip_charges_network(self, cluster):
        src, dst = cluster.driver, cluster.workers[1]
        date = make_date(src.jvm, 1999, 9, 9)
        before = dst.clock.total(Category.NETWORK)
        out = SkywaySocketOutputStream(src.jvm.skyway, cluster, src, dst)
        out.write_object(date)
        data = out.close()
        assert dst.clock.total(Category.NETWORK) > before
        inp = SkywaySocketInputStream(dst.jvm.skyway, data)
        assert read_date(dst.jvm, inp.read_object()) == (1999, 9, 9)

    def test_socket_tracks_remote_bytes(self, cluster):
        src, dst = cluster.driver, cluster.workers[0]
        before = dst.remote_bytes_fetched
        out = SkywaySocketOutputStream(src.jvm.skyway, cluster, src, dst)
        out.write_object(make_date(src.jvm, 1, 1, 1))
        out.close()
        assert dst.remote_bytes_fetched > before


class TestStreamErrors:
    def test_write_after_close(self, cluster):
        src = cluster.driver
        out = SkywayObjectOutputStream(src.jvm.skyway, destination="x")
        out.write_object(make_date(src.jvm, 1, 1, 1))
        out.close()
        with pytest.raises(SkywayStreamError):
            out.write_object(make_date(src.jvm, 2, 2, 2))

    def test_double_close(self, cluster):
        src = cluster.driver
        out = SkywayObjectOutputStream(src.jvm.skyway, destination="x")
        out.close()
        with pytest.raises(SkywayStreamError):
            out.close()

    def test_read_past_last_root(self, cluster):
        src, dst = cluster.driver, cluster.workers[0]
        out = SkywayObjectOutputStream(src.jvm.skyway, destination="x")
        out.write_object(make_date(src.jvm, 1, 1, 1))
        inp = SkywayObjectInputStream(dst.jvm.skyway)
        inp.accept(out.close())
        inp.read_object()
        with pytest.raises(SkywayStreamError):
            inp.read_object()

    def test_corrupt_trailer_detected(self, cluster):
        src, dst = cluster.driver, cluster.workers[0]
        out = SkywayObjectOutputStream(src.jvm.skyway, destination="x")
        out.write_object(make_date(src.jvm, 1, 1, 1))
        data = bytearray(out.close())
        data[-1] ^= 0x5A  # corrupt the logical-size trailer field
        inp = SkywayObjectInputStream(dst.jvm.skyway)
        with pytest.raises(Exception):
            inp.accept(bytes(data))

    def test_double_accept_rejected(self, cluster):
        src, dst = cluster.driver, cluster.workers[0]
        out = SkywayObjectOutputStream(src.jvm.skyway, destination="x")
        out.write_object(make_date(src.jvm, 1, 1, 1))
        data = out.close()
        inp = SkywayObjectInputStream(dst.jvm.skyway)
        inp.accept(data)
        with pytest.raises(SkywayStreamError):
            inp.accept(data)

    def test_close_releases_pins(self, cluster):
        src, dst = cluster.driver, cluster.workers[0]
        out = SkywayObjectOutputStream(src.jvm.skyway, destination="x")
        out.write_object(make_date(src.jvm, 1, 1, 1))
        inp = SkywayObjectInputStream(dst.jvm.skyway)
        inp.accept(out.close())
        pins_before = len(dst.jvm.handles)
        inp.close()
        assert len(dst.jvm.handles) < pins_before

    def test_has_next(self, cluster):
        src, dst = cluster.driver, cluster.workers[0]
        out = SkywayObjectOutputStream(src.jvm.skyway, destination="x")
        out.write_object(make_date(src.jvm, 1, 1, 1))
        inp = SkywayObjectInputStream(dst.jvm.skyway)
        assert not inp.has_next()
        inp.accept(out.close())
        assert inp.has_next()
        inp.read_object()
        assert not inp.has_next()
