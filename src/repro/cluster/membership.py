"""Client-side membership: talking to the coordinator, and staying alive.

Two pieces live here, both used from *inside* other processes:

:class:`CoordinatorClient`
    A thin RPC client over one frame connection.  Every call is an
    ``obs.span("cluster.rpc", op=...)``; typed cluster errors crossing the
    wire as ERROR frames (``PeerGoneError``, ``ClusterProtocolError``) are
    re-raised as their local types, and a dead/unreachable coordinator
    surfaces as :class:`CoordinatorUnavailableError` rather than a raw
    socket error.

:class:`WorkerMembership`
    The worker-side liveness loop: register once, then heartbeat forever
    from a daemon thread.  Two recoveries are built in —

    * coordinator answers ``known=False`` (it restarted, or superseded our
      record): re-register immediately and carry on with the fresh
      generation;
    * coordinator unreachable: keep trying with the same cadence; the
      first successful exchange after an outage re-registers.

    A restarted *worker* needs no special casing here: its fresh process
    simply registers, which bumps the generation — the signal every fleet
    front-end uses to re-open channels and force FULL resyncs.
"""

from __future__ import annotations

import os
import random
import threading
from typing import Optional

from repro import obs
from repro.cluster.errors import (
    ClusterProtocolError,
    CoordinatorUnavailableError,
    PeerGoneError,
)
from repro.transport import frames
from repro.transport.connection import FrameConnection, connect_with_retry
from repro.transport.errors import RemoteWorkerError, TransportError


def _raise_typed(exc: RemoteWorkerError) -> None:
    """Re-raise a coordinator ERROR frame as its local typed twin."""
    if exc.kind == "PeerGoneError":
        # The peer name travels only in the message; parse is best-effort
        # ("peer 'name': ...") and falls back to the whole message.
        peer = "?"
        message = exc.message
        if message.startswith("peer '"):
            end = message.find("'", len("peer '"))
            if end > 0:
                peer = message[len("peer '"):end]
                message = message[end + 1:].lstrip(": ")
        raise PeerGoneError(peer, message) from exc
    if exc.kind == "ClusterProtocolError":
        raise ClusterProtocolError(exc.message) from exc
    raise exc


class CoordinatorClient:
    """One frame connection to the coordinator; JSON ops in, results out."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 2.0,
        read_timeout: float = 10.0,
        attempts: int = 5,
    ) -> None:
        self.host = host
        self.port = port
        try:
            sock = connect_with_retry(
                host, port, connect_timeout=connect_timeout,
                attempts=attempts,
            )
        except TransportError as exc:
            raise CoordinatorUnavailableError(
                f"coordinator at {host}:{port} is unreachable: {exc}"
            ) from exc
        self._conn = FrameConnection(sock, read_timeout=read_timeout)
        self._lock = threading.Lock()
        self._closed = False

    def call(self, op: str, **params) -> dict:
        """One RPC: CALL out, RESULT (or typed ERROR) back."""
        payload = {"op": op, **params}
        with obs.span("cluster.rpc", op=op,
                      coordinator=f"{self.host}:{self.port}"):
            with self._lock:
                if self._closed:
                    raise CoordinatorUnavailableError(
                        "coordinator client is closed"
                    )
                try:
                    self._conn.send_frame(
                        frames.CALL, frames.encode_json(payload)
                    )
                    result = frames.decode_json(
                        self._conn.expect_frame(frames.RESULT), what="RESULT"
                    )
                except RemoteWorkerError as exc:
                    _raise_typed(exc)
                except TransportError as exc:
                    self._closed = True
                    raise CoordinatorUnavailableError(
                        f"coordinator at {self.host}:{self.port} went away "
                        f"mid-call ({op}): {exc}"
                    ) from exc
        return result

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.send_frame(frames.BYE)
            except TransportError:
                pass
            self._conn.close()

    def __enter__(self) -> "CoordinatorClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class WorkerMembership:
    """Register this process with the coordinator and heartbeat from a
    daemon thread until stopped."""

    #: Fractional jitter on the heartbeat period (±20%).  N workers
    #: spawned in one burst would otherwise beat the coordinator in
    #: lockstep forever; jitter decorrelates the fleet within a few beats.
    HEARTBEAT_JITTER = 0.2

    def __init__(
        self,
        worker_name: str,
        worker_host: str,
        worker_port: int,
        coordinator_host: str,
        coordinator_port: int,
        connect_timeout: float = 2.0,
        connect_attempts: int = 5,
    ) -> None:
        self.worker_name = worker_name
        self.worker_host = worker_host
        self.worker_port = worker_port
        self.coordinator_host = coordinator_host
        self.coordinator_port = coordinator_port
        self.connect_timeout = connect_timeout
        self.connect_attempts = connect_attempts
        self.generation = 0
        self.heartbeat_interval = 0.2
        self.heartbeats_sent = 0
        self.reregistrations = 0
        #: Optional :class:`repro.obs.live.TelemetrySampler`.  When set,
        #: every heartbeat piggybacks one metric delta — no extra
        #: connection, no extra op.
        self.sampler = None
        self.telemetry_sent = 0
        self._client: Optional[CoordinatorClient] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Per-instance PRNG: jitter needs no cross-worker coordination,
        # and an own Random keeps tests free to seed it.
        self._rng = random.Random()

    # -- registration ------------------------------------------------------

    def _connect(self) -> CoordinatorClient:
        if self._client is None:
            self._client = CoordinatorClient(
                self.coordinator_host, self.coordinator_port,
                connect_timeout=self.connect_timeout,
                attempts=self.connect_attempts,
            )
        return self._client

    def _drop_client(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
            self._client = None

    def register(self) -> int:
        """Announce this worker; returns the assigned generation."""
        result = self._connect().call(
            "register",
            name=self.worker_name,
            host=self.worker_host,
            port=self.worker_port,
            pid=os.getpid(),
        )
        if self.generation:
            self.reregistrations += 1
        self.generation = int(result["generation"])
        self.heartbeat_interval = float(
            result.get("heartbeat_interval", self.heartbeat_interval)
        )
        return self.generation

    # -- heartbeat loop ----------------------------------------------------

    def attach_telemetry(self, sampler) -> None:
        """Piggyback this sampler's deltas on every future heartbeat."""
        self.sampler = sampler

    def _beat_once(self) -> None:
        payload = None
        try:
            params = {"name": self.worker_name,
                      "generation": self.generation}
            if self.sampler is not None:
                payload = self.sampler.sample()
                params["telemetry"] = payload
            result = self._connect().call("heartbeat", **params)
            self.heartbeats_sent += 1
            if payload is not None:
                # Delivered: the sampler stops re-merging this delta.  An
                # exception anywhere above skips the ack, and the next
                # sample folds the undelivered counts back in — a flaky
                # coordinator loses no telemetry, only freshness.
                self.sampler.ack(payload["seq"])
                self.telemetry_sent += 1
            if not result.get("known", False):
                # Coordinator restarted or replaced our record:
                # re-register on the spot so the outage window is one beat.
                self.register()
        except CoordinatorUnavailableError:
            self._drop_client()  # reconnect (and re-register) next beat
        except (PeerGoneError, ClusterProtocolError):
            self._drop_client()

    def next_wait(self) -> float:
        """The next heartbeat period: the coordinator-dictated interval
        ±:data:`HEARTBEAT_JITTER`.  Both the daemon-thread loop and the
        async worker's event loop schedule beats through this."""
        spread = self.heartbeat_interval * self.HEARTBEAT_JITTER
        return self.heartbeat_interval + self._rng.uniform(-spread, spread)

    def beat_once(self) -> None:
        """One liveness exchange, reconnecting/re-registering as needed.
        Never raises — a dead coordinator costs one dropped client and the
        next beat retries.  This is the unit the async event loop calls on
        its own cadence (no membership thread in that mode)."""
        if self._stop.is_set():
            return
        if self._client is None:
            try:
                self.register()
            except CoordinatorUnavailableError:
                self._drop_client()
                return
        self._beat_once()

    def _loop(self) -> None:
        while not self._stop.wait(self.next_wait()):
            self.beat_once()

    def start(self) -> None:
        """Register (raising if the coordinator is unreachable at startup)
        and begin heartbeating in the background."""
        self.register()
        self._thread = threading.Thread(
            target=self._loop,
            name=f"membership-{self.worker_name}",
            daemon=True,
        )
        self._thread.start()

    def stop(self, deregister: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if deregister and self._client is not None:
            try:
                self._client.call("deregister", name=self.worker_name)
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        self._drop_client()
