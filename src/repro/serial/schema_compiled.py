"""Schema-compiled serializers (the Colfer/Protostuff/Protobuf family).

These libraries compile a user-provided schema into marshalling source code
(the paper on Colfer: "It employs a compiler colf(1) to generate
serialization source code from schema definitions").  Consequences modeled
here, each the real mechanism rather than a constant factor:

* **no type information on the wire** for statically-known field types —
  the schema fixes field order and types; only fields declared as
  ``java.lang.Object`` (or holding a subclass of the declared type) carry
  a type reference, and those are dictionary-encoded per stream;
* **no reflection, no per-field virtual dispatch** — a compiled accessor
  per field (cost: one ``generated_access`` scaled by how tight the
  generated code is);
* **tree semantics** — no back-references: shared sub-objects are
  duplicated and cycles are rejected, exactly protobuf's limitation.

``field_cost_factor`` / ``byte_cost_factor`` / ``frame_overhead`` express
where a given library sits inside the family (Colfer's generated code is
tighter than protostuff-runtime's), keeping Figure 7's 28 distinct rows
honest about *why* they differ.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.heap.handles import Handle
from repro.heap.heap import NULL
from repro.jvm.jvm import JVM
from repro.net.streams import ByteInputStream, ByteOutputStream
from repro.serial.base import (
    DeserializationStream,
    SerializationError,
    SerializationStream,
    Serializer,
)
from repro.types import corelib, descriptors

_REF_NULL = 0
_REF_DECLARED = 1
_REF_TYPED = 2

_OBJECT = "java.lang.Object"


class CycleError(SerializationError):
    """Schema-compiled (tree) serializers cannot encode cyclic graphs."""


class SchemaCompiledSerializer(Serializer):
    def __init__(
        self,
        name: str = "schema",
        field_cost_factor: float = 1.0,
        byte_cost_factor: float = 1.0,
        frame_overhead: int = 0,
    ) -> None:
        self.name = name
        self.field_cost_factor = field_cost_factor
        self.byte_cost_factor = byte_cost_factor
        self.frame_overhead = frame_overhead

    def new_stream(self, jvm: JVM, thread_id: int = 0) -> "SchemaSerializationStream":
        return SchemaSerializationStream(jvm, self)

    def new_reader(self, jvm: JVM, data: bytes) -> "SchemaDeserializationStream":
        return SchemaDeserializationStream(jvm, self, data)


class SchemaSerializationStream(SerializationStream):
    def __init__(self, jvm: JVM, config: SchemaCompiledSerializer) -> None:
        self.jvm = jvm
        self.config = config
        self.out = ByteOutputStream()
        self._in_progress: Set[int] = set()
        self._type_ids: Dict[str, int] = {}

    def write_object(self, root: int) -> None:
        for _ in range(self.config.frame_overhead):
            self.out.write_u8(0xF7)
        self._write_ref(root, declared=_OBJECT)

    def close(self) -> bytes:
        return self.out.getvalue()

    @property
    def bytes_written(self) -> int:
        return len(self.out)

    # -- internals ----------------------------------------------------------

    def _charge_field(self) -> None:
        self.jvm.clock.charge(
            self.jvm.cost_model.generated_access * self.config.field_cost_factor
        )

    def _charge_bytes(self, n: int) -> None:
        self.jvm.clock.charge(
            self.jvm.cost_model.stream_bytes(n) * self.config.byte_cost_factor
        )

    def _write_typeref(self, name: str) -> None:
        """Dictionary-encoded type name: first use writes the string, later
        uses one varint (the stream-local schema section)."""
        existing = self._type_ids.get(name)
        if existing is None:
            self._type_ids[name] = len(self._type_ids)
            self.out.write_varint(0)
            self.out.write_utf(name)
            self._charge_bytes(len(name))
        else:
            self.out.write_varint(existing + 1)
            self._charge_bytes(1)

    def _write_ref(self, address: int, declared: str) -> None:
        """Encode a reference slot whose schema-declared type is
        ``declared``; type info goes on the wire only when needed."""
        if address == NULL:
            self.out.write_u8(_REF_NULL)
            return
        actual = self.jvm.klass_of(address).name
        if actual == declared:
            self.out.write_u8(_REF_DECLARED)
        else:
            self.out.write_u8(_REF_TYPED)
            self._write_typeref(actual)
        self._write_message(address)

    def _write_message(self, address: int) -> None:
        if address in self._in_progress:
            raise CycleError(
                "schema-compiled serializers encode trees; cycle detected"
            )
        self._in_progress.add(address)
        try:
            klass = self.jvm.klass_of(address)
            if klass.name == corelib.STRING:
                text = self.jvm.read_string(address)
                self._charge_field()
                self._charge_bytes(len(text))
                self.out.write_utf(text)
                return
            if klass.is_array:
                self._write_array(address, klass)
                return
            for field in klass.all_fields():
                self._charge_field()
                value = self.jvm.heap.read_field(address, field)
                if field.is_reference:
                    self._write_ref(
                        value, _declared_of(field.descriptor)
                    )
                else:
                    self._write_primitive(field.descriptor, value)
        finally:
            self._in_progress.discard(address)

    def _write_array(self, address: int, klass) -> None:
        heap = self.jvm.heap
        length = heap.array_length(address)
        self.out.write_varint(length)
        elem = klass.element_descriptor or ""
        if descriptors.is_reference(elem):
            declared = _declared_of(elem)
            for i in range(length):
                self._charge_field()
                self._write_ref(heap.read_element(address, i), declared)
        else:
            self._charge_bytes(length * klass.element_size)
            for i in range(length):
                self._write_primitive(elem, heap.read_element(address, i))

    def _write_primitive(self, descriptor: str, value) -> None:
        out = self.out
        if descriptor in ("I", "J", "S", "B", "C", "Z"):
            encoded = _zigzag(int(value))
            n = out.write_varint(encoded)
            self._charge_bytes(n)
        elif descriptor == "F":
            out.write_f32(value)
            self._charge_bytes(4)
        elif descriptor == "D":
            out.write_f64(value)
            self._charge_bytes(8)
        else:  # pragma: no cover - exhaustive
            raise SerializationError(descriptor)


class SchemaDeserializationStream(DeserializationStream):
    def __init__(self, jvm: JVM, config: SchemaCompiledSerializer,
                 data: bytes) -> None:
        self.jvm = jvm
        self.config = config
        self.inp = ByteInputStream(data)
        self._pins: List[Handle] = []
        self._type_names: List[str] = []

    def has_next(self) -> bool:
        return not self.inp.at_end()

    def read_object(self) -> int:
        for _ in range(self.config.frame_overhead):
            self.inp.read_u8()
        return self._read_ref(declared=_OBJECT)

    def close(self) -> None:
        for pin in self._pins:
            self.jvm.unpin(pin)
        self._pins.clear()

    # -- internals ------------------------------------------------------------

    def _charge_field(self) -> None:
        self.jvm.clock.charge(
            self.jvm.cost_model.generated_access * self.config.field_cost_factor
        )

    def _charge_bytes(self, n: int) -> None:
        self.jvm.clock.charge(
            self.jvm.cost_model.stream_bytes(n) * self.config.byte_cost_factor
        )

    def _pin(self, address: int) -> Handle:
        handle = self.jvm.pin(address)
        self._pins.append(handle)
        return handle

    def _read_typeref(self) -> str:
        marker = self.inp.read_varint()
        if marker == 0:
            name = self.inp.read_utf()
            self._charge_bytes(len(name))
            self._type_names.append(name)
            return name
        self._charge_bytes(1)
        return self._type_names[marker - 1]

    def _read_ref(self, declared: str) -> int:
        tag = self.inp.read_u8()
        if tag == _REF_NULL:
            return NULL
        if tag == _REF_DECLARED:
            return self._read_message(declared)
        if tag == _REF_TYPED:
            return self._read_message(self._read_typeref())
        raise SerializationError(f"bad reference tag {tag}")

    def _read_message(self, class_name: str) -> int:
        jvm = self.jvm
        if class_name == corelib.STRING:
            text = self.inp.read_utf()
            self._charge_field()
            self._charge_bytes(len(text))
            address = jvm.new_string(text)
            self._pin(address)
            return address
        klass = jvm.loader.load(class_name)
        if klass.is_array:
            return self._read_array(klass)
        jvm.clock.charge(jvm.cost_model.constructor_call)
        pin = self._pin(jvm.new_instance(class_name))
        for field in klass.all_fields():
            self._charge_field()
            if field.is_reference:
                value = self._read_ref(_declared_of(field.descriptor))
                jvm.heap.write_field(pin.address, field, value)
            else:
                jvm.heap.write_field(
                    pin.address, field, self._read_primitive(field.descriptor)
                )
        return pin.address

    def _read_array(self, klass) -> int:
        jvm = self.jvm
        length = self.inp.read_varint()
        elem = klass.element_descriptor or ""
        jvm.clock.charge(jvm.cost_model.constructor_call)
        pin = self._pin(jvm.new_array(elem, length))
        heap = jvm.heap
        if descriptors.is_reference(elem):
            declared = _declared_of(elem)
            for i in range(length):
                self._charge_field()
                heap.write_element(pin.address, i, self._read_ref(declared))
        else:
            self._charge_bytes(length * klass.element_size)
            for i in range(length):
                heap.write_element(pin.address, i, self._read_primitive(elem))
        return pin.address

    def _read_primitive(self, descriptor: str):
        if descriptor in ("I", "J", "S", "B", "C", "Z"):
            value = _unzigzag(self.inp.read_varint())
            self._charge_bytes(1)
            if descriptor == "Z":
                return 1 if value else 0
            return value
        if descriptor == "F":
            self._charge_bytes(4)
            return self.inp.read_f32()
        if descriptor == "D":
            self._charge_bytes(8)
            return self.inp.read_f64()
        raise SerializationError(descriptor)  # pragma: no cover


def _declared_of(descriptor: str) -> str:
    """The schema-declared class of a reference descriptor."""
    if descriptors.is_array(descriptor):
        return descriptor
    return descriptors.referenced_class(descriptor)


def _zigzag(v: int) -> int:
    return (v << 1) ^ (v >> 63) if v < 0 else v << 1


def _unzigzag(v: int) -> int:
    return (v >> 1) ^ -(v & 1)
