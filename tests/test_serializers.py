"""Tests for the Java and Kryo serializer baselines."""

import pytest

from repro.heap.heap import NULL
from repro.jvm.jvm import JVM
from repro.jvm.marshal import Obj, from_heap, to_heap
from repro.serial import (
    JavaSerializer,
    KryoRegistrator,
    KryoSerializer,
    UnregisteredClassError,
)
from repro.simtime import Category

from tests.conftest import make_date, make_list, read_date, read_list


def java():
    return JavaSerializer()


def kryo(*extra_classes, required=True):
    reg = KryoRegistrator()
    for name in ("Date", "Year4D", "Month2D", "Day2D", "ListNode", "Mixed"):
        reg.register(name)
    for name in extra_classes:
        reg.register(name)
    return KryoSerializer(reg, registration_required=required)


@pytest.fixture(params=["java", "kryo"])
def serializer(request):
    return java() if request.param == "java" else kryo()


@pytest.fixture
def two_jvms(classpath):
    return JVM("src", classpath=classpath), JVM("dst", classpath=classpath)


class TestRoundtrip:
    def test_date_graph(self, two_jvms, serializer):
        src, dst = two_jvms
        date = make_date(src, 2018, 3, 24)
        data = serializer.serialize(src, date)
        received = serializer.deserialize(dst, data)
        assert read_date(dst, received) == (2018, 3, 24)

    def test_linked_list(self, two_jvms, serializer):
        src, dst = two_jvms
        head = make_list(src, list(range(60)))
        received = serializer.deserialize(dst, serializer.serialize(src, head))
        assert read_list(dst, received) == list(range(60))

    def test_null_root(self, two_jvms, serializer):
        src, dst = two_jvms
        assert serializer.deserialize(dst, serializer.serialize(src, NULL)) == NULL

    def test_cycle(self, two_jvms, serializer):
        src, dst = two_jvms
        a = src.new_instance("ListNode")
        b = src.new_instance("ListNode")
        src.set_field(a, "next", b)
        src.set_field(b, "next", a)
        src.set_field(b, "payload", 5)
        ra = serializer.deserialize(dst, serializer.serialize(src, a))
        rb = dst.get_field(ra, "next")
        assert dst.get_field(rb, "next") == ra
        assert dst.get_field(rb, "payload") == 5

    def test_shared_reference_within_stream(self, two_jvms, serializer):
        src, dst = two_jvms
        shared = src.new_instance("Day2D")
        src.set_field(shared, "day", 3)
        d1, d2 = src.new_instance("Date"), src.new_instance("Date")
        src.set_field(d1, "day", shared)
        src.set_field(d2, "day", shared)
        data = serializer.serialize_many(src, [d1, d2])
        r1, r2 = serializer.deserialize_all(dst, data)
        assert dst.get_field(r1, "day") == dst.get_field(r2, "day")

    def test_marshal_values(self, two_jvms, serializer):
        src, dst = two_jvms
        value = {"k": [1, 2.5, "s"], "t": (True, b"\x07")}
        addr = to_heap(src, value)
        received = serializer.deserialize(dst, serializer.serialize(src, addr))
        assert from_heap(dst, received) == value

    def test_mixed_primitives(self, two_jvms, serializer):
        src, dst = two_jvms
        m = to_heap(src, Obj("Mixed", {"b": -5, "c": 70, "s": -12, "i": 9,
                                       "f": 0.5, "j": -(1 << 50), "d": 1e300,
                                       "z": True}))
        r = serializer.deserialize(dst, serializer.serialize(src, m))
        back = from_heap(dst, r)
        assert back["j"] == -(1 << 50)
        assert back["d"] == 1e300
        assert back["c"] == 70


class TestJavaSerializerSpecifics:
    def test_type_strings_in_output(self, two_jvms):
        """Paper §1: the Java serializer writes class-name strings."""
        src, _ = two_jvms
        data = java().serialize(src, make_date(src, 1, 1, 1))
        assert b"Date" in data
        assert b"Year4D" in data
        assert b"java.lang.Object" in data

    def test_descriptor_written_once_per_stream(self, two_jvms):
        src, _ = two_jvms
        stream = java().new_stream(src)
        for _ in range(10):
            stream.write_object(make_date(src, 1, 1, 1))
        data = stream.close()
        # "Year4D" appears once in its own class descriptor and once inside
        # Date's field list ("LYear4D;") — and never again for the
        # remaining nine objects.
        assert data.count(b"Year4D") == 2

    def test_reset_re_emits_descriptors(self, two_jvms):
        """Spark resets the stream every 100 objects; descriptors repeat."""
        src, dst = two_jvms
        ser = JavaSerializer(reset_interval=5)
        stream = ser.new_stream(src)
        roots = [make_date(src, i, 1, 1) for i in range(12)]
        pins = [src.pin(r) for r in roots]
        for p in pins:
            stream.write_object(p.address)
        data = stream.close()
        # 12 objects at interval 5 = 3 descriptor epochs, each emitting
        # "Year4D" twice (its own descriptor + Date's field list).
        assert data.count(b"Year4D") == 6
        received = ser.deserialize_all(dst, data)
        assert len(received) == 12
        assert read_date(dst, received[7], ) == (7, 1, 1)

    def test_charges_reflection_per_field(self, two_jvms):
        src, _ = two_jvms
        date = make_date(src, 1, 1, 1)
        before = src.clock.total()
        java().serialize(src, date)
        spent = src.clock.total() - before
        # 4 objects x ~3 fields of reflective access at minimum.
        assert spent >= 10 * src.cost_model.reflective_access

    def test_deserialization_rehashes_hashmaps(self, two_jvms):
        src, dst = two_jvms
        addr = to_heap(src, {f"k{i}": i for i in range(16)})
        before = dst.clock.total()
        received = java().deserialize(dst, java().serialize(src, addr))
        assert from_heap(dst, received) == {f"k{i}": i for i in range(16)}
        assert dst.clock.total() - before >= 16 * dst.cost_model.hash_insert


class TestKryoSpecifics:
    def test_no_type_strings_when_registered(self, two_jvms):
        """Registration turns types into integers (paper §2.1)."""
        src, _ = two_jvms
        data = kryo().serialize(src, make_date(src, 1, 1, 1))
        assert b"Date" not in data
        assert b"Year4D" not in data

    def test_unregistered_class_raises(self, two_jvms):
        src, _ = two_jvms
        ser = KryoSerializer()  # no user classes registered
        with pytest.raises(UnregisteredClassError):
            ser.serialize(src, make_date(src, 1, 1, 1))

    def test_fallback_writes_class_name(self, two_jvms):
        src, dst = two_jvms
        ser_src = KryoSerializer(registration_required=False)
        data = ser_src.serialize(src, make_date(src, 2, 2, 2))
        assert b"Date" in data
        ser_dst = KryoSerializer(registration_required=False)
        received = ser_dst.deserialize(dst, data)
        assert read_date(dst, received) == (2, 2, 2)

    def test_registration_order_defines_ids(self):
        r1, r2 = KryoRegistrator(), KryoRegistrator()
        r1.register("A"); r1.register("B")
        r2.register("A"); r2.register("B")
        assert r1.id_of("B") == r2.id_of("B")

    def test_mismatched_registration_order_corrupts(self, two_jvms):
        """The consistency burden the paper highlights: different orders on
        sender and receiver decode to the wrong classes."""
        src, dst = two_jvms
        r_src, r_dst = KryoRegistrator(), KryoRegistrator()
        r_src.register("Year4D"); r_src.register("Month2D")
        r_dst.register("Month2D"); r_dst.register("Year4D")  # swapped!
        y = src.new_instance("Year4D")
        src.set_field(y, "year", 1999)
        data = KryoSerializer(r_src).serialize(src, y)
        received = KryoSerializer(r_dst).deserialize(dst, data)
        assert dst.klass_of(received).name == "Month2D"  # wrong type!

    def test_kryo_smaller_than_java(self, two_jvms):
        src, _ = two_jvms
        roots = [src.pin(make_date(src, i, 1, 1)) for i in range(50)]
        addrs = [p.address for p in roots]
        java_bytes = len(JavaSerializer(reset_interval=10).serialize_many(src, addrs))
        kryo_bytes = len(kryo().serialize_many(src, addrs))
        assert kryo_bytes < java_bytes * 0.6

    def test_kryo_faster_than_java(self, two_jvms, classpath):
        src = JVM("s1", classpath=classpath)
        date = make_date(src, 1, 1, 1)
        before = src.clock.total()
        kryo().serialize(src, date)
        kryo_time = src.clock.total() - before
        src2 = JVM("s2", classpath=classpath)
        date2 = make_date(src2, 1, 1, 1)
        before = src2.clock.total()
        java().serialize(src2, date2)
        java_time = src2.clock.total() - before
        assert kryo_time < java_time

    def test_deserialization_rehashes_hashmaps(self, two_jvms):
        src, dst = two_jvms
        addr = to_heap(src, {i: i * 2 for i in range(8)})
        before = dst.clock.total(Category.COMPUTATION)
        received = kryo().deserialize(dst, kryo().serialize(src, addr))
        assert from_heap(dst, received) == {i: i * 2 for i in range(8)}
        spent = dst.clock.total(Category.COMPUTATION) - before
        assert spent >= 8 * dst.cost_model.hash_insert
