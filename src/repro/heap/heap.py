"""The byte-addressed managed heap.

One :class:`ManagedHeap` models one JVM's heap: a ``bytearray`` carved into
an eden, two survivor semispaces, and an old generation, with bump-pointer
allocation.  Objects are real byte ranges — headers, aligned fields, padding
— and references are absolute simulated addresses, so Skyway's cloning and
pointer relativization run against genuine memory images.

Each heap's addresses live in a disjoint range (a per-heap base is mixed
into every address), so a pointer accidentally carried from one JVM to
another dereferences to an immediate error rather than silently "working" —
the same reason real klass/heap pointers cannot cross machines.

The heap keeps an explicit *object index* per region (sorted object start
addresses).  A production JVM keeps the heap parsable with filler objects
and walks it by size; the index is the simulator's equivalent and is what
the GC and Skyway's receiver use to walk regions.
"""

from __future__ import annotations

import bisect
import itertools
import struct
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.heap import markword
from repro.heap.cardtable import CardTable
from repro.heap.klass import FieldInfo, Klass
from repro.heap.layout import (
    HeapLayout,
    KLASS_OFFSET,
    MARK_OFFSET,
    OBJECT_ALIGNMENT,
    WORD,
    align_up,
)
from repro.types import descriptors

#: The null reference.
NULL = 0

KB = 1024
MB = 1024 * KB


class HeapError(RuntimeError):
    pass


class OutOfMemoryError(HeapError):
    """A region cannot satisfy an allocation (the JVM layer triggers GC)."""


class SegfaultError(HeapError):
    """An address outside this heap was dereferenced."""


class Region:
    """A contiguous bump-allocated region of the heap."""

    def __init__(self, name: str, start: int, end: int) -> None:
        self.name = name
        self.start = start
        self.end = end
        self.top = start
        #: Sorted object start addresses (the heap's parse index).
        self.object_starts: List[int] = []

    @property
    def capacity(self) -> int:
        return self.end - self.start

    @property
    def used(self) -> int:
        return self.top - self.start

    @property
    def free(self) -> int:
        return self.end - self.top

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def reset(self) -> None:
        self.top = self.start
        self.object_starts.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Region({self.name}: {self.used}/{self.capacity} bytes,"
            f" {len(self.object_starts)} objects)"
        )


_heap_counter = itertools.count(1)

# struct codecs per primitive descriptor (little-endian, HotSpot on x86).
_PRIM_CODEC = {
    "Z": "<B",
    "B": "<b",
    "C": "<H",
    "S": "<h",
    "I": "<i",
    "F": "<f",
    "J": "<q",
    "D": "<d",
}


class ManagedHeap:
    """A generational, byte-addressed managed heap for one JVM."""

    def __init__(
        self,
        layout: HeapLayout,
        young_bytes: int = 4 * MB,
        old_bytes: int = 64 * MB,
        survivor_ratio: int = 8,
        card_size: int = 512,
    ) -> None:
        self.layout = layout
        survivor_bytes = align_up(max(young_bytes // survivor_ratio, 4 * KB), WORD)
        eden_bytes = align_up(young_bytes - 2 * survivor_bytes, WORD)
        if eden_bytes <= 0:
            raise ValueError("young generation too small for survivor spaces")

        total = eden_bytes + 2 * survivor_bytes + align_up(old_bytes, WORD)
        #: Disjoint address space per heap (bit 44+ identifies the heap).
        self.base = next(_heap_counter) << 44
        self._memory = bytearray(total)
        self._memory_view: Optional[memoryview] = None

        cursor = self.base
        self.eden = Region("eden", cursor, cursor + eden_bytes)
        cursor = self.eden.end
        self.survivor_from = Region("survivor0", cursor, cursor + survivor_bytes)
        cursor = self.survivor_from.end
        self.survivor_to = Region("survivor1", cursor, cursor + survivor_bytes)
        cursor = self.survivor_to.end
        self.old = Region("old", cursor, cursor + align_up(old_bytes, WORD))

        self.card_table = CardTable(self.old.start, self.old.end, card_size)
        #: Set by the JVM so the heap can resolve klass words.
        self.klass_resolver: Optional[Callable[[int], Klass]] = None
        #: Field-write listeners ``(slot_address, nbytes)``; the delta
        #: subsystem registers one per tracked channel so mutations dirty a
        #: second card table.  Raw ``write_word``/``write_bytes`` (GC
        #: copying, receiver placement) deliberately bypass this barrier:
        #: only *mutations through the typed field/element API* count.
        self.mutation_listeners: List[Callable[[int, int], None]] = []
        #: Allocation statistics.
        self.allocations = 0
        self.bytes_allocated = 0

    # ------------------------------------------------------------------
    # raw memory access
    # ------------------------------------------------------------------

    def _index(self, address: int, nbytes: int) -> int:
        offset = address - self.base
        if offset < 0 or offset + nbytes > len(self._memory):
            raise SegfaultError(
                f"address {address:#x} (+{nbytes}) outside heap"
                f" [{self.base:#x}, {self.base + len(self._memory):#x})"
            )
        return offset

    def index_of(self, address: int, nbytes: int) -> int:
        """Bounds-checked byte offset of ``address`` into :attr:`memory_view`.

        The clone-kernel fast path slices object images straight out of the
        heap's backing store instead of round-tripping through
        :meth:`read_bytes` copies.
        """
        return self._index(address, nbytes)

    @property
    def memory_view(self) -> memoryview:
        """A zero-copy view of the heap's backing store.

        The backing ``bytearray`` is allocated once and never resized, so
        the view stays valid for the heap's lifetime.
        """
        view = self._memory_view
        if view is None:
            view = self._memory_view = memoryview(self._memory)
        return view

    def unpack_from(self, codec: struct.Struct, address: int):
        """Unpack ``codec`` (a compiled Struct) at ``address``, bounds-checked."""
        return codec.unpack_from(self._memory, self._index(address, codec.size))

    def pack_into(self, codec: struct.Struct, address: int, *values) -> None:
        """Pack ``values`` with ``codec`` at ``address``, bounds-checked."""
        codec.pack_into(self._memory, self._index(address, codec.size), *values)

    def read_bytes(self, address: int, nbytes: int) -> bytes:
        i = self._index(address, nbytes)
        return bytes(self._memory[i : i + nbytes])

    def write_bytes(self, address: int, data: bytes) -> None:
        i = self._index(address, len(data))
        self._memory[i : i + len(data)] = data

    def read_word(self, address: int) -> int:
        i = self._index(address, WORD)
        return int.from_bytes(self._memory[i : i + WORD], "little")

    def write_word(self, address: int, value: int) -> None:
        i = self._index(address, WORD)
        self._memory[i : i + WORD] = (value & (2**64 - 1)).to_bytes(WORD, "little")

    # ------------------------------------------------------------------
    # object headers
    # ------------------------------------------------------------------

    def read_mark(self, address: int) -> int:
        return self.read_word(address + MARK_OFFSET)

    def write_mark(self, address: int, mark: int) -> None:
        self.write_word(address + MARK_OFFSET, mark)

    def read_klass_word(self, address: int) -> int:
        return self.read_word(address + KLASS_OFFSET)

    def write_klass_word(self, address: int, value: int) -> None:
        self.write_word(address + KLASS_OFFSET, value)

    def read_baddr(self, address: int) -> int:
        return self.read_word(address + self.layout.baddr_offset)

    def write_baddr(self, address: int, value: int) -> None:
        self.write_word(address + self.layout.baddr_offset, value)

    def klass_of(self, address: int) -> Klass:
        if self.klass_resolver is None:
            raise HeapError("heap has no klass resolver attached")
        return self.klass_resolver(self.read_klass_word(address))

    def array_length(self, address: int) -> int:
        i = self._index(address + self.layout.array_length_offset, 4)
        return int.from_bytes(self._memory[i : i + 4], "little")

    def _write_array_length(self, address: int, length: int) -> None:
        i = self._index(address + self.layout.array_length_offset, 4)
        self._memory[i : i + 4] = length.to_bytes(4, "little")

    def object_size(self, address: int) -> int:
        klass = self.klass_of(address)
        if klass.is_array:
            return klass.object_size(self.array_length(address))
        return klass.object_size()

    # ------------------------------------------------------------------
    # typed field / element access
    # ------------------------------------------------------------------

    def read_slot(self, address: int, offset: int, descriptor: str):
        """Read a value of ``descriptor`` type at ``address + offset``."""
        if descriptors.is_reference(descriptor):
            return self.read_word(address + offset)
        codec = _PRIM_CODEC[descriptor]
        size = descriptors.size_of(descriptor)
        i = self._index(address + offset, size)
        return struct.unpack_from(codec, self._memory, i)[0]

    def write_slot(self, address: int, offset: int, descriptor: str, value) -> None:
        if descriptors.is_reference(descriptor):
            self._write_ref_slot(address, offset, value)
            size = WORD
        else:
            codec = _PRIM_CODEC[descriptor]
            size = descriptors.size_of(descriptor)
            i = self._index(address + offset, size)
            if descriptor == "Z":
                value = 1 if value else 0
            struct.pack_into(codec, self._memory, i, value)
        if self.mutation_listeners:
            for listener in self.mutation_listeners:
                listener(address + offset, size)

    def _write_ref_slot(self, address: int, offset: int, value: int) -> None:
        if value is None:
            value = NULL
        self.write_word(address + offset, value)
        # Write barrier: a reference stored into the old generation dirties
        # its card so minor GCs can find old->young pointers.
        if value != NULL and self.old.contains(address):
            self.card_table.mark(address + offset)

    def read_field(self, address: int, field: FieldInfo):
        return self.read_slot(address, field.offset, field.descriptor)

    def write_field(self, address: int, field: FieldInfo, value) -> None:
        self.write_slot(address, field.offset, field.descriptor, value)

    def element_offset(self, klass: Klass, index: int) -> int:
        base = self.layout.array_payload_offset(klass.element_descriptor or "")
        return base + index * klass.element_size

    def read_element(self, address: int, index: int):
        klass = self.klass_of(address)
        length = self.array_length(address)
        if not 0 <= index < length:
            raise IndexError(f"array index {index} out of range [0, {length})")
        return self.read_slot(
            address, self.element_offset(klass, index), klass.element_descriptor or ""
        )

    def write_element(self, address: int, index: int, value) -> None:
        klass = self.klass_of(address)
        length = self.array_length(address)
        if not 0 <= index < length:
            raise IndexError(f"array index {index} out of range [0, {length})")
        self.write_slot(
            address, self.element_offset(klass, index), klass.element_descriptor or "", value
        )

    def reference_offsets(self, address: int) -> List[int]:
        """Offsets (relative to the object) of every reference slot."""
        klass = self.klass_of(address)
        if klass.is_array:
            if not klass.has_reference_elements:
                return []
            base = self.layout.array_payload_offset(klass.element_descriptor or "")
            return [
                base + i * klass.element_size
                for i in range(self.array_length(address))
            ]
        return list(klass.oop_offsets)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def allocate(
        self,
        klass: Klass,
        array_length: Optional[int] = None,
        old_gen: bool = False,
    ) -> int:
        """Bump-allocate an object; raises :class:`OutOfMemoryError` when
        the target region is full (the JVM layer catches this to run GC)."""
        size = klass.object_size(array_length)
        region = self.old if old_gen else self.eden
        address = self._bump(region, size)
        self._format_object(address, klass, array_length)
        return address

    def allocate_into(
        self, region: Region, klass: Klass, array_length: Optional[int] = None
    ) -> int:
        """Allocation into an explicit region (used by the GC)."""
        size = klass.object_size(array_length)
        address = self._bump(region, size)
        self._format_object(address, klass, array_length)
        return address

    def _bump(self, region: Region, size: int) -> int:
        size = align_up(size, OBJECT_ALIGNMENT)
        if region.free < size:
            raise OutOfMemoryError(
                f"{region.name}: need {size} bytes, {region.free} free"
            )
        address = region.top
        region.top += size
        region.object_starts.append(address)
        self.allocations += 1
        self.bytes_allocated += size
        return address

    def _format_object(
        self, address: int, klass: Klass, array_length: Optional[int]
    ) -> None:
        size = klass.object_size(array_length)
        i = self._index(address, size)
        self._memory[i : i + size] = bytes(size)
        self.write_mark(address, markword.FRESH_MARK)
        if klass.klass_id is None:
            raise HeapError(f"klass {klass.name} was never installed by a loader")
        self.write_klass_word(address, klass.klass_id)
        if klass.is_array:
            self._write_array_length(address, array_length or 0)

    def reserve_raw_old(self, nbytes: int) -> int:
        """Reserve raw old-generation space (Skyway input-buffer chunks).

        The caller must register every object it writes into the space via
        :meth:`register_object` to keep the region parse index correct.
        """
        nbytes = align_up(nbytes, OBJECT_ALIGNMENT)
        if self.old.free < nbytes:
            raise OutOfMemoryError(
                f"old gen: need {nbytes} raw bytes, {self.old.free} free"
            )
        address = self.old.top
        self.old.top += nbytes
        return address

    def register_object(self, address: int) -> None:
        """Add an externally-placed object (input-buffer content) to the
        old generation's parse index, keeping it address-sorted.

        Streaming placement registers in ascending order (the fast path);
        a delta epoch appending into a retained chunk's reserved tail can
        land *below* objects promoted since, so out-of-order registration
        inserts at the sorted position instead.
        """
        starts = self.old.object_starts
        if not starts or address > starts[-1]:
            starts.append(address)
            return
        i = bisect.bisect_left(starts, address)
        if i < len(starts) and starts[i] == address:
            raise HeapError(f"object already registered: {address:#x}")
        starts.insert(i, address)

    # ------------------------------------------------------------------
    # iteration / queries
    # ------------------------------------------------------------------

    def regions(self) -> Tuple[Region, Region, Region, Region]:
        return (self.eden, self.survivor_from, self.survivor_to, self.old)

    def region_of(self, address: int) -> Region:
        for region in self.regions():
            if region.contains(address):
                return region
        raise SegfaultError(f"address {address:#x} in no region")

    def is_young(self, address: int) -> bool:
        return (
            self.eden.contains(address)
            or self.survivor_from.contains(address)
            or self.survivor_to.contains(address)
        )

    def iter_objects(self, region: Region) -> Iterator[int]:
        return iter(list(region.object_starts))

    def live_objects(self) -> Iterator[int]:
        for region in self.regions():
            yield from self.iter_objects(region)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + len(self._memory)

    @property
    def used_bytes(self) -> int:
        return sum(r.used for r in self.regions())

    def identity_hash(self, address: int, hash_source: Callable[[], int]) -> int:
        """The object's identity hashcode, computing and caching it in the
        mark word on first use (HotSpot semantics)."""
        mark = self.read_mark(address)
        if markword.has_hash(mark):
            return markword.get_hash(mark)
        hashcode = hash_source() & ((1 << 31) - 1)
        if hashcode == 0:
            hashcode = 1  # 0 means "not computed"
        self.write_mark(address, markword.set_hash(mark, hashcode))
        return hashcode


def copy_object_bytes(
    src_heap: ManagedHeap, src: int, dst_heap: ManagedHeap, dst: int, size: int
) -> None:
    """memcpy between heaps (or within one), used by GC and tests."""
    dst_heap.write_bytes(dst, src_heap.read_bytes(src, size))
