"""Skyway's developer-facing stream API (paper §3.3).

``SkywayObjectOutputStream`` / ``SkywayObjectInputStream`` are the
Java-serializer-compatible entry points: ``write_object(o)`` on one side,
``read_object()`` on the other, with file and socket variants.  Switching a
program to Skyway is "instantiate stream to be a SkywayFileOutputStream
object instead of any other type of ObjectOutputStream" — the call sites do
not change.

Wire framing (this reproduction's equivalent of the paper's stream
protocol): a sequence of varint-length-prefixed segments (each a flush of
the output buffer, containing whole objects), a zero terminator, then a
trailer carrying the top marks — the sender-side root index that saves the
receiver a graph traversal (§4.2 "Root Object Recognition") — and the total
logical size.

Both streams take an optional ``transport=`` seam.  The default (``None``)
is the in-process path: ``close()`` returns the framed bytes, ``accept()``
takes them.  A transport object routes the same byte stream over a real
boundary instead: the output stream *feeds* bytes to it as segments flush
(so a pipelined sender overlaps traversal with socket I/O, §4.2), and the
input stream *pumps* chunks from it into the incremental decoder.  See
:mod:`repro.transport` for the socket implementation.

Malformed input — truncated frames, bit-flipped varints, corrupt type IDs
— always surfaces as one typed :class:`SkywayStreamError`; the decoder
never leaks a bare ``struct.error``/``KeyError`` and never exposes a
partially-placed graph (roots only come from a completed trailer whose
logical-size check passed).
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional

from repro import obs
from repro.core.compact import CompactCodecError, CompactSegmentCodec
from repro.core.input_buffer import InputBufferError
from repro.core.receiver import ObjectGraphReceiver, ReceiveError
from repro.core.runtime import SkywayRuntime
from repro.core.sender import ObjectGraphSender
from repro.core.type_registry import TypeRegistryError
from repro.heap.handles import Handle
from repro.heap.layout import HeapLayout
from repro.net.cluster import Cluster, Node
from repro.net.disk import Disk
from repro.net.streams import ByteInputStream, ByteOutputStream, StreamError


class SkywayStreamError(RuntimeError):
    pass


#: Upper bound on one flushed segment / trailer field.  Real segments are
#: bounded by the output-buffer capacity (or one oversized object); a
#: corrupt length varint can claim up to 2^70 bytes, and this cap turns
#: that into a typed error instead of an allocation attempt.
_MAX_SEGMENT_BYTES = 1 << 30
#: Exceptions the decoder converts into SkywayStreamError.  KeyError covers
#: ClassNotFoundError, ValueError/OverflowError cover int conversions on
#: corrupt words, MemoryError covers absurd corrupt allocation sizes.
_DECODE_FAILURES = (
    StreamError,
    ReceiveError,
    InputBufferError,
    CompactCodecError,
    TypeRegistryError,
    KeyError,
    ValueError,
    OverflowError,
    MemoryError,
    struct.error,
    UnicodeDecodeError,
)


class SkywayObjectOutputStream:
    """Object-writing side, framing flushed segments into a byte stream.

    ``compress_headers`` enables the compact transfer encoding (the §5.2
    future-work option): headers/padding are deflated per segment at extra
    per-field CPU cost.  The frame's first byte carries the codec id so
    receivers self-configure.

    ``transport`` (optional) receives the framed bytes *incrementally*:
    ``transport.feed(data)`` after every flush, then
    ``transport.finish(total_bytes, crc32)`` at close — the hook a
    pipelined socket sender uses to overlap traversal with the wire.
    """

    def __init__(
        self,
        runtime: SkywayRuntime,
        destination: str,
        thread_id: int = 0,
        target_layout: Optional[HeapLayout] = None,
        compress_headers: bool = False,
        transport=None,
        use_kernels: Optional[bool] = None,
    ) -> None:
        self.runtime = runtime
        self._frame = ByteOutputStream()
        self.sender: ObjectGraphSender = runtime.new_sender(
            destination, thread_id=thread_id, target_layout=target_layout,
            fresh_buffer=True, use_kernels=use_kernels,
        )
        self._codec: Optional[CompactSegmentCodec] = None
        if compress_headers:
            self._codec = CompactSegmentCodec(
                runtime.jvm, runtime.view, self.sender.target_layout
            )
        self._transport = transport
        self._pumped = 0
        self._frame.write_u8(1 if compress_headers else 0)
        self.sender.buffer.set_sink(self._on_flush)
        self._closed = False

    def _on_flush(self, segment: bytes) -> None:
        if self._codec is not None:
            segment = self._codec.compress(segment)
        self._frame.write_varint(len(segment))
        self._frame.write_bytes(segment)
        self._pump()

    def _pump(self) -> None:
        """Forward newly framed bytes to the transport, if any."""
        if self._transport is None:
            return
        tail = self._frame.tail(self._pumped)
        if tail:
            self._pumped += len(tail)
            self._transport.feed(tail)

    def write_object(self, root: int) -> int:
        """Paper-compatible ``stream.writeObject(o)``."""
        if self._closed:
            raise SkywayStreamError("stream is closed")
        with obs.span("send.traverse", clock=self.runtime.jvm.clock) as sp:
            offset = self.sender.write_object(root)
            sp.set(objects=self.sender.objects_sent)
        return offset

    def close(self) -> bytes:
        """Flush, append the trailer, and return the framed bytes."""
        if self._closed:
            raise SkywayStreamError("stream already closed")
        self._closed = True
        with obs.span("send.flush", clock=self.runtime.jvm.clock) as sp:
            self.sender.buffer.flush()
            self._frame.write_varint(0)  # segment terminator
            self._frame.write_varint(len(self.sender.top_marks))
            for mark in self.sender.top_marks:
                self._frame.write_varint(mark)
            self._frame.write_varint(self.sender.buffer.logical_size)
            data = self._frame.getvalue()
            sp.set(stream_bytes=len(data))
            if self._transport is not None:
                self._pump()
                self._transport.finish(len(data), zlib.crc32(data))
        return data

    @property
    def bytes_written(self) -> int:
        return len(self._frame)


class IncrementalStreamDecoder:
    """Chunk-at-a-time parser for the framed Skyway stream.

    Bytes arrive in arbitrary slices (socket chunks need not align with
    segment boundaries); whole segments are handed to the receiver as soon
    as they complete, so placement overlaps the sender's traversal — the
    receive half of the §4.2 pipeline.  ``finish()`` is only legal once
    the trailer parsed and its logical-size check passed.
    """

    _CODEC, _SEGMENTS, _MARK_COUNT, _MARKS, _SIZE, _DONE = range(6)

    def __init__(
        self,
        runtime: SkywayRuntime,
        receiver: Optional[ObjectGraphReceiver] = None,
    ) -> None:
        self.runtime = runtime
        self.receiver = receiver if receiver is not None else runtime.new_receiver()
        self._codec: Optional[CompactSegmentCodec] = None
        self._buf = bytearray()
        self._pos = 0
        self._state = self._CODEC
        self._marks: List[int] = []
        self._mark_count = 0
        self._expected_size: Optional[int] = None
        self.bytes_fed = 0
        self.segments_decoded = 0

    # -- incremental varint ------------------------------------------------

    def _try_varint(self) -> Optional[int]:
        """Parse one varint at the cursor; None if more bytes are needed."""
        result = 0
        shift = 0
        i = self._pos
        while i < len(self._buf):
            b = self._buf[i]
            i += 1
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                self._pos = i
                return result
            shift += 7
            if shift > 70:
                raise SkywayStreamError("corrupt stream: varint too long")
        return None

    def _bounded_varint(self, what: str) -> Optional[int]:
        value = self._try_varint()
        if value is not None and value > _MAX_SEGMENT_BYTES:
            raise SkywayStreamError(
                f"corrupt stream: {what} of {value} bytes exceeds the "
                f"{_MAX_SEGMENT_BYTES}-byte bound"
            )
        return value

    # -- feeding -----------------------------------------------------------

    def feed(self, chunk: bytes) -> None:
        """Consume one arbitrary slice of the framed stream."""
        if self._state == self._DONE and chunk:
            raise SkywayStreamError(
                f"{len(chunk)} trailing bytes after the stream trailer"
            )
        self._buf.extend(chunk)
        self.bytes_fed += len(chunk)
        try:
            self._advance()
        except SkywayStreamError:
            raise
        except _DECODE_FAILURES as exc:
            raise SkywayStreamError(
                f"corrupt stream at byte {self.bytes_fed - len(self._buf) + self._pos}: "
                f"{exc.__class__.__name__}: {exc}"
            ) from exc
        # Drop consumed prefix so long streams stay O(chunk) resident.
        if self._pos > 64 * 1024:
            del self._buf[: self._pos]
            self._pos = 0

    def _advance(self) -> None:
        while True:
            saved = self._pos
            if self._state == self._CODEC:
                if self._pos >= len(self._buf):
                    return
                flag = self._buf[self._pos]
                self._pos += 1
                if flag not in (0, 1):
                    raise SkywayStreamError(f"unknown stream codec id {flag}")
                if flag:
                    self._codec = CompactSegmentCodec(
                        self.runtime.jvm, self.runtime.view,
                        self.runtime.jvm.layout,
                    )
                self._state = self._SEGMENTS
            elif self._state == self._SEGMENTS:
                seg_len = self._bounded_varint("segment")
                if seg_len is None:
                    return
                if seg_len == 0:
                    self._state = self._MARK_COUNT
                    continue
                if self._pos + seg_len > len(self._buf):
                    self._pos = saved  # wait for the whole segment
                    return
                segment = bytes(self._buf[self._pos : self._pos + seg_len])
                self._pos += seg_len
                if self._codec is not None:
                    segment = self._codec.decompress(segment)
                self.receiver.feed(segment)
                self.segments_decoded += 1
            elif self._state == self._MARK_COUNT:
                count = self._bounded_varint("top-mark count")
                if count is None:
                    return
                self._mark_count = count
                self._state = self._MARKS
            elif self._state == self._MARKS:
                if len(self._marks) >= self._mark_count:
                    self._state = self._SIZE
                    continue
                mark = self._try_varint()
                if mark is None:
                    return
                self._marks.append(mark)
            elif self._state == self._SIZE:
                size = self._try_varint()
                if size is None:
                    return
                self._expected_size = size
                self._state = self._DONE
                if self._pos < len(self._buf):
                    raise SkywayStreamError(
                        f"{len(self._buf) - self._pos} trailing bytes after "
                        f"the stream trailer"
                    )
            else:  # _DONE
                return

    @property
    def complete(self) -> bool:
        return self._state == self._DONE

    def finish(self) -> List[Handle]:
        """Run absolutization and return the pinned top objects."""
        if self._state != self._DONE:
            raise SkywayStreamError(
                "stream truncated: ended before the trailer completed "
                f"(decoder state {self._state}, {self.bytes_fed} bytes fed)"
            )
        if self.receiver.buffer.logical_size != self._expected_size:
            raise SkywayStreamError(
                f"stream carried {self.receiver.buffer.logical_size} logical "
                f"bytes, trailer promised {self._expected_size}"
            )
        try:
            with obs.span("recv.absolutize",
                          clock=self.runtime.jvm.clock) as sp:
                roots = self.receiver.finish(self._marks)
                sp.set(roots=len(roots),
                       objects=self.receiver.objects_received)
            return roots
        except _DECODE_FAILURES as exc:
            raise SkywayStreamError(
                f"absolutization failed: {exc.__class__.__name__}: {exc}"
            ) from exc

    @property
    def top_marks(self) -> List[int]:
        return list(self._marks)


class SkywayObjectInputStream:
    """Object-reading side: feed framed bytes, then pop root objects.

    ``transport`` (optional) supplies the bytes instead of ``accept(data)``:
    ``accept()`` with no argument pumps chunks from the transport through
    the incremental decoder (placement overlapping arrival) until the
    transport reports end-of-stream.
    """

    def __init__(self, runtime: SkywayRuntime, transport=None) -> None:
        self.runtime = runtime
        self.receiver: ObjectGraphReceiver = runtime.new_receiver()
        self._transport = transport
        self._roots: List[Handle] = []
        self._cursor = 0
        self._finished = False
        self._buffer_token: Optional[int] = None

    def accept(self, data: Optional[bytes] = None) -> None:
        """Consume a complete framed byte stream (segments + trailer),
        either from ``data`` or — when constructed with a transport — by
        pumping the transport's chunks."""
        if self._finished:
            raise SkywayStreamError("stream already finished")
        decoder = IncrementalStreamDecoder(self.runtime, receiver=self.receiver)
        with obs.span("recv.accept", clock=self.runtime.jvm.clock):
            if data is None:
                if self._transport is None:
                    raise SkywayStreamError(
                        "accept() without data requires a transport"
                    )
                self._transport.pump(decoder)
            else:
                decoder.feed(data)
            self._roots = decoder.finish()
        self._buffer_token = self.runtime.track_input_buffer(
            self.receiver, self._roots
        )
        self._finished = True

    def read_object(self) -> int:
        """Paper-compatible ``stream.readObject()``: next top object."""
        if not self._finished:
            raise SkywayStreamError(
                "read_object before the stream finished (absolutization "
                "must complete first, paper §4.3)"
            )
        if self._cursor >= len(self._roots):
            raise SkywayStreamError("no more top objects in this stream")
        root = self._roots[self._cursor]
        self._cursor += 1
        return root.address

    def has_next(self) -> bool:
        return self._finished and self._cursor < len(self._roots)

    @property
    def root_count(self) -> int:
        return len(self._roots)

    @property
    def buffer_token(self) -> Optional[int]:
        """The runtime retention token for this stream's input buffer
        (delta channels keep the buffer alive across epochs)."""
        return self._buffer_token

    def close(self) -> None:
        """Free this stream's input buffer (the explicit API of §3.2)."""
        if self._buffer_token is not None:
            self.runtime.free_input_buffer(self._buffer_token)
            self._buffer_token = None
        self._roots = []


# ---------------------------------------------------------------------------
# file variants
# ---------------------------------------------------------------------------

class SkywayFileOutputStream(SkywayObjectOutputStream):
    """Writes the framed stream to a simulated disk file on close."""

    def __init__(
        self,
        runtime: SkywayRuntime,
        disk: Disk,
        filename: str,
        thread_id: int = 0,
        target_layout: Optional[HeapLayout] = None,
    ) -> None:
        super().__init__(
            runtime, destination=f"file:{filename}", thread_id=thread_id,
            target_layout=target_layout,
        )
        self._disk = disk
        self._filename = filename

    def close(self) -> bytes:
        data = super().close()
        self._disk.write_file(self._filename, data)
        return data


class SkywayFileInputStream(SkywayObjectInputStream):
    """Reads a framed stream from a simulated disk file."""

    def __init__(self, runtime: SkywayRuntime, disk: Disk, filename: str) -> None:
        super().__init__(runtime)
        self.accept(disk.read_file(filename))


# ---------------------------------------------------------------------------
# socket variants
# ---------------------------------------------------------------------------

class SkywaySocketOutputStream(SkywayObjectOutputStream):
    """Streams over the cluster network to a peer node on close."""

    def __init__(
        self,
        runtime: SkywayRuntime,
        cluster: Cluster,
        src: Node,
        dst: Node,
        thread_id: int = 0,
        target_layout: Optional[HeapLayout] = None,
        transport=None,
    ) -> None:
        if target_layout is None:
            # Consult the cluster format config (paper §3.1) so senders
            # re-format clones for destinations with different layouts.
            target_layout = runtime.layout_for_destination(dst.name)
        super().__init__(
            runtime, destination=f"node:{dst.name}", thread_id=thread_id,
            target_layout=target_layout, transport=transport,
        )
        self._cluster = cluster
        self._src = src
        self._dst = dst
        self.sent_bytes: Optional[bytes] = None

    def close(self) -> bytes:
        data = super().close()
        if self._transport is None:
            # Simulated wire: byte-account and charge the receiver's clock.
            self._cluster.transfer(self._src, self._dst, len(data))
        self.sent_bytes = data
        return data


class SkywaySocketInputStream(SkywayObjectInputStream):
    """Receiving end of a socket transfer."""

    def __init__(self, runtime: SkywayRuntime, data: bytes) -> None:
        super().__init__(runtime)
        self.accept(data)
