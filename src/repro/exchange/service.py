"""The :class:`Exchange`: one object answering "how do bytes move here?".

Engines (Spark, Flink, benchmarks) never pick a transport branch again —
they hold an ``Exchange`` and ask it for what they need:

* :meth:`transfer_blob` — opaque bytes to a node (the broadcast path);
* :meth:`channel_to` — a :class:`~repro.exchange.channel.GraphChannel` to
  a node (full/delta epochs, kernel fast path, unified metrics);
* :meth:`parallel_send` — one root set as N interleaved streams (§4.2).

Two constructors, two substrates: :meth:`Exchange.loopback` moves bytes by
function call against the simulated cluster wire, :meth:`Exchange.socket`
moves them through spawned worker processes over TCP.  Every call above
works identically on both — that symmetry is the refactor's contract, and
B-EXCHANGE's parity gate holds it.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.exchange.capabilities import ChannelCapabilities, DEFAULT_REQUEST
from repro.exchange.channel import GraphChannel
from repro.exchange.errors import ExchangeConfigError
from repro.exchange.loopback import LoopbackGraphChannel
from repro.exchange.socket import SocketGraphChannel
from repro.net.cluster import Cluster, Node
from repro.simtime import Category


def _runtime_of_node(node: Node, role: str):
    runtime = node.jvm.skyway
    if runtime is None:
        raise ExchangeConfigError(
            f"{role} node {node.name!r} has no Skyway runtime attached "
            f"(repro.core.attach_skyway)"
        )
    return runtime


class Exchange:
    """One cluster's data-movement service, bound to one substrate."""

    def __init__(
        self,
        cluster: Cluster,
        clients: Optional[Dict[str, object]] = None,
    ) -> None:
        self.cluster = cluster
        #: {cluster node name -> connected WorkerClient}; None = loopback.
        self.clients = dict(clients) if clients is not None else None
        self._channels: List[GraphChannel] = []

    # -- constructors ------------------------------------------------------

    @classmethod
    def loopback(cls, cluster: Cluster) -> "Exchange":
        """In-process substrate: simulated wire, function-call delivery."""
        return cls(cluster, clients=None)

    @classmethod
    def socket(cls, cluster: Cluster, clients: Dict[str, object]) -> "Exchange":
        """Socket substrate: ``clients`` maps cluster worker names to
        connected :class:`~repro.transport.client.WorkerClient` objects."""
        return cls(cluster, clients=dict(clients))

    @property
    def substrate(self) -> str:
        return "loopback" if self.clients is None else "socket"

    def client_for(self, name: str):
        if self.clients is None:
            raise ExchangeConfigError(
                f"no socket worker registered for cluster node {name!r} "
                f"(this exchange runs the loopback substrate)"
            )
        client = self.clients.get(name)
        if client is None:
            raise ExchangeConfigError(
                f"no socket worker registered for cluster node {name!r}"
            )
        return client

    # -- blobs -------------------------------------------------------------

    def transfer_blob(self, src: Node, dst: Node, data: bytes) -> None:
        """Move opaque bytes to ``dst`` and account them on its fetch
        counters — the broadcast path, substrate-independent."""
        if self.clients is None:
            self.cluster.transfer(src, dst, len(data))
            return
        self.client_for(dst.name).send_blob(data)
        dst.account_fetch(len(data), remote=src is not dst)

    # -- graph channels ----------------------------------------------------

    def channel_to(
        self,
        destination: str,
        requested: ChannelCapabilities = DEFAULT_REQUEST,
        policy=None,
        channel_id: Optional[int] = None,
        src: Optional[Node] = None,
        **send_opts,
    ) -> GraphChannel:
        """Open a graph channel from ``src`` (default: the driver) to the
        named cluster node, on this exchange's substrate."""
        sender = src if src is not None else self.cluster.driver
        runtime = _runtime_of_node(sender, "sending")
        if self.clients is None:
            dst = self.cluster.node(destination)
            channel: GraphChannel = LoopbackGraphChannel(
                runtime,
                destination=destination,
                requested=requested,
                receiver_runtime=_runtime_of_node(dst, "receiving"),
                cluster=self.cluster,
                src=sender,
                dst=dst,
                policy=policy,
                channel_id=channel_id,
            )
        else:
            channel = SocketGraphChannel(
                runtime,
                client=self.client_for(destination),
                requested=requested,
                policy=policy,
                channel_id=channel_id,
                destination=destination,
                **send_opts,
            )
        self._channels.append(channel)
        return channel

    # -- parallel send -----------------------------------------------------

    def parallel_send(
        self,
        worker_name: str,
        roots: Sequence[int],
        streams: int = 1,
        retain: bool = False,
        **knobs,
    ):
        """Ship ``roots`` to one worker as ``streams`` interleaved Skyway
        streams (per-thread output buffers, paper §4.2); returns a
        :class:`~repro.transport.parallel.ParallelSendReport` on either
        substrate."""
        n = max(1, int(streams))
        if self.clients is None:
            return self._parallel_loopback(worker_name, roots, n, retain)
        return self._parallel_socket(worker_name, roots, n, retain, knobs)

    def _parallel_socket(self, worker_name, roots, n, retain, knobs):
        from repro.transport.client import WorkerClient
        from repro.transport.metrics import TransportMetrics
        from repro.transport.parallel import ParallelGraphSender

        base = self.client_for(worker_name)
        extras: List[WorkerClient] = []
        try:
            for _ in range(n - 1):
                # A fresh ledger per extra stream keeps per-stream counters
                # meaningful; the sender merges them deterministically.
                extras.append(
                    WorkerClient(
                        base.runtime, base.host, base.port,
                        node_name=base.node_name,
                        metrics=TransportMetrics(),
                        account_node=base.account_node,
                        account_remote=base.account_remote,
                    ).connect()
                )
            sender = ParallelGraphSender([base] + extras)
            return sender.send(roots, retain=retain, **knobs)
        finally:
            for client in extras:
                client.close()

    def _parallel_loopback(self, worker_name, roots, n, retain):
        from repro.core.streams import (
            SkywayObjectInputStream,
            SkywayObjectOutputStream,
        )
        from repro.transport.digest import graph_digest
        from repro.transport.parallel import (
            ParallelSendReport,
            StreamReport,
            shard_roots,
        )

        driver = self.cluster.driver
        dst = self.cluster.node(worker_name)
        src_runtime = _runtime_of_node(driver, "sending")
        dst_runtime = _runtime_of_node(dst, "receiving")
        started = time.perf_counter()
        # One shuffling phase shared by every stream, as on the socket
        # substrate: baddrs from stream A must read as "this phase, another
        # thread" to stream B.
        src_runtime.shuffle_start()
        shards = shard_roots(roots, n)
        outs = [
            SkywayObjectOutputStream(
                src_runtime, destination=f"node:{dst.name}", thread_id=tid,
            )
            for tid in range(n)
        ]
        with driver.clock.phase(Category.SERIALIZATION):
            rounds = max((len(s) for s in shards), default=0)
            for step in range(rounds):
                for out, shard in zip(outs, shards):
                    if step < len(shard):
                        out.write_object(shard[step])
        reports = []
        for tid, (out, shard) in enumerate(zip(outs, shards)):
            with driver.clock.phase(Category.SERIALIZATION):
                data = out.close()
            self.cluster.transfer(driver, dst, len(data))
            inp = SkywayObjectInputStream(dst_runtime)
            with dst.clock.phase(Category.DESERIALIZATION):
                inp.accept(data)
            receiver = inp.receiver
            result = {
                "op": "recv_graph",
                "roots": inp.root_count,
                "objects": receiver.objects_received,
                "logical_bytes": receiver.buffer.logical_size,
                "stream_bytes": len(data),
                "digest": graph_digest(dst_runtime.jvm, receiver),
                "retained": bool(retain),
            }
            if not retain:
                inp.close()
            reports.append(StreamReport(
                thread_id=tid, roots=len(shard), result=result, data=data,
            ))
        return ParallelSendReport(
            streams=reports,
            elapsed_seconds=time.perf_counter() - started,
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close every channel this exchange opened (releasing card
        tables) and, on the socket substrate, every worker connection."""
        for channel in self._channels:
            channel.close()
        self._channels = []
        if self.clients is not None:
            for client in self.clients.values():
                client.close()
