"""``python -m repro.obs`` — observability artifacts from the terminal.

* ``report <snapshot.json>`` — the paper-style phase breakdown: spans
  rolled up by name, then the per-channel exchange ledgers byte-exact;
* ``trace <trace.json>`` — validate an exported Chrome trace (all spans
  closed, parents resolve and contain, one trace id); exit 1 on problems;
* ``diff <old.json> <new.json>`` — numeric deltas between two snapshots;
* ``smoke [--out DIR]`` — run the end-to-end traced scenario (loopback +
  socket epochs + broadcast), export trace/snapshot JSON, self-check.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.obs.export import (
    render_diff,
    render_phase_report,
    validate_chrome_trace,
)


def _load(path: str) -> dict:
    return json.loads(pathlib.Path(path).read_text())


def _cmd_report(args: argparse.Namespace) -> int:
    print(render_phase_report(_load(args.snapshot)))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    doc = _load(args.trace)
    problems = validate_chrome_trace(doc)
    events = doc.get("traceEvents", []) if isinstance(doc, dict) else []
    spans = [e for e in events if isinstance(e, dict) and e.get("ph") == "X"]
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    print(f"ok: {len(spans)} spans, trace "
          f"{doc.get('otherData', {}).get('trace_id', '?')}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    print(render_diff(_load(args.old), _load(args.new)))
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    from repro.obs.smoke import obs_checks_pass, run_obs_smoke

    result = run_obs_smoke(out_dir=pathlib.Path(args.out),
                           vertices=args.vertices)
    print(render_phase_report(result.pop("snapshot")))
    print()
    for name, ok in result["checks"].items():
        print(f"  {name}: {'pass' if ok else 'FAIL'}")
    for problem in result["trace_errors"]:
        print(f"  trace problem: {problem}")
    print(f"  spans={result['spans']} worker_spans={result['worker_spans']} "
          f"trace={result['trace_id']}")
    if "trace_path" in result:
        print(f"  wrote {result['trace_path']}")
        print(f"  wrote {result['snapshot_path']}")
    return 0 if obs_checks_pass(result) else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability reports, trace validation, and the "
                    "traced smoke run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="phase breakdown from a snapshot")
    p.add_argument("snapshot", help="path to an obs snapshot JSON")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("trace", help="validate a Chrome trace JSON")
    p.add_argument("trace", help="path to an exported trace JSON")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("diff", help="numeric deltas between two snapshots")
    p.add_argument("old")
    p.add_argument("new")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("smoke", help="traced loopback+socket smoke run")
    p.add_argument("--out", default="benchmarks/results",
                   help="directory for trace/snapshot artifacts")
    p.add_argument("--vertices", type=int, default=600)
    p.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # piped into head/less and truncated
        sys.exit(0)
