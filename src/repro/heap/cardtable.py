"""Card table for the old generation.

The Parallel Scavenge collector (the default in OpenJDK 8, which the paper
modifies) finds old→young pointers via a card table: the old generation is
divided into fixed-size cards and a card is dirtied whenever a reference is
stored into it.  Skyway's receiver must "update the card table appropriately
to represent new pointers generated from each data transfer" (paper §4.3) —
that call site is :meth:`mark_range`.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class CardTable:
    """Dirty-card tracking over ``[start, end)`` with fixed-size cards."""

    def __init__(self, start: int, end: int, card_size: int = 512) -> None:
        if card_size <= 0 or card_size & (card_size - 1):
            raise ValueError(f"card size must be a power of two: {card_size}")
        if end < start:
            raise ValueError("end before start")
        self.start = start
        self.end = end
        self.card_size = card_size
        self._cards: List[bool] = [False] * self._card_count()
        self.marks = 0

    def _card_count(self) -> int:
        span = self.end - self.start
        return (span + self.card_size - 1) // self.card_size

    def card_index(self, address: int) -> int:
        if not self.start <= address < self.end:
            raise ValueError(f"address {address:#x} outside card-table span")
        return (address - self.start) // self.card_size

    def mark(self, address: int) -> None:
        """Dirty the card containing ``address``."""
        self._cards[self.card_index(address)] = True
        self.marks += 1

    def mark_range(self, address: int, nbytes: int) -> None:
        """Dirty every card overlapping ``[address, address + nbytes)`` —
        the receive-side bulk update for a freshly filled input buffer."""
        if nbytes <= 0:
            return
        first = self.card_index(address)
        last = self.card_index(min(address + nbytes - 1, self.end - 1))
        for i in range(first, last + 1):
            self._cards[i] = True
        self.marks += last - first + 1

    def is_dirty(self, address: int) -> bool:
        return self._cards[self.card_index(address)]

    def dirty_ranges(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(start_address, end_address)`` for each maximal run of
        dirty cards."""
        i = 0
        n = len(self._cards)
        while i < n:
            if not self._cards[i]:
                i += 1
                continue
            j = i
            while j < n and self._cards[j]:
                j += 1
            yield (
                self.start + i * self.card_size,
                min(self.start + j * self.card_size, self.end),
            )
            i = j

    def clear(self) -> None:
        for i in range(len(self._cards)):
            self._cards[i] = False

    @property
    def dirty_count(self) -> int:
        return sum(self._cards)
