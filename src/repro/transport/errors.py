"""Typed transport errors.

Every failure mode of the socket transport — refused or timed-out connects,
mid-stream peer death, corrupt frames, errors raised inside the remote
worker — surfaces at the driver as one of these types, never as a bare
``OSError``/``struct.error``.  Drivers can therefore write policy
(retry, re-queue, fail the task) against a stable taxonomy, which is what
the paper's "Skyway runtime" does for its TCP channel failures.
"""

from __future__ import annotations


class TransportError(RuntimeError):
    """Base class for every socket-transport failure."""


class HandshakeError(TransportError):
    """HELLO/HELLO_ACK exchange failed or produced an inconsistent
    registry view."""


class FrameCorruptionError(TransportError):
    """A frame failed its CRC32 check or carried an impossible length."""


class TransportTimeout(TransportError):
    """A connect or read deadline elapsed."""


class TransportClosed(TransportError):
    """The peer closed (or reset) the connection mid-conversation —
    e.g. a worker process killed mid-stream."""


class WorkerStartupError(TransportError):
    """A spawned worker process failed to report a listening port."""


class RemoteWorkerError(TransportError):
    """An error raised inside the worker, propagated over an ERROR frame.

    ``kind`` is the remote exception class name; ``message`` its text.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"remote worker error [{kind}]: {message}")
        self.kind = kind
        self.message = message
