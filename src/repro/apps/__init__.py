"""The paper's four Spark workloads (§5.2): WordCount, PageRank,
ConnectedComponents, and TriangleCounting, written against the RDD API."""

from repro.apps.wordcount import word_count
from repro.apps.pagerank import page_rank
from repro.apps.connected_components import connected_components
from repro.apps.triangle_counting import triangle_count

__all__ = [
    "word_count",
    "page_rank",
    "connected_components",
    "triangle_count",
]
