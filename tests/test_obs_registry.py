"""Metrics registry: series with labels, snapshot sources, thread safety."""

import json
import threading

from repro.obs.registry import MetricsRegistry, series_key


def test_series_key_sorts_labels():
    assert series_key("sends", {}) == "sends"
    assert series_key("sends", {"z": 1, "a": "x"}) == "sends{a=x,z=1}"


class TestSeries:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("sends")
        reg.counter("sends", 2.0)
        reg.counter("sends", substrate="socket")
        snap = reg.snapshot()
        assert snap["counters"]["sends"] == 3.0
        assert snap["counters"]["sends{substrate=socket}"] == 1.0

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("depth", 4)
        reg.gauge("depth", 7)
        assert reg.snapshot()["gauges"]["depth"] == 7.0

    def test_histogram_tracks_count_sum_min_max(self):
        reg = MetricsRegistry()
        for v in (5.0, 1.0, 3.0):
            reg.observe("chunk_bytes", v)
        h = reg.snapshot()["histograms"]["chunk_bytes"]
        assert (h["count"], h["sum"], h["min"], h["max"]) == (3.0, 9.0, 1.0, 5.0)
        # Streaming-quantile view: per-bucket counts over the fixed
        # ladder plus interpolated p50/p95/p99, clamped to min/max.
        assert sum(h["buckets"]) == 3
        assert 1.0 <= h["p50"] <= h["p95"] <= h["p99"] <= 5.0

    def test_concurrent_counters_are_exact(self):
        reg = MetricsRegistry()

        def bump():
            for _ in range(1000):
                reg.counter("hits")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.snapshot()["counters"]["hits"] == 8000.0


class TestSources:
    def test_sources_evaluated_at_snapshot_time(self):
        reg = MetricsRegistry()
        state = {"n": 1}
        reg.register_source("ledger", lambda: dict(state))
        assert reg.snapshot()["sources"]["ledger"] == {"n": 1}
        state["n"] = 2
        assert reg.snapshot()["sources"]["ledger"] == {"n": 2}

    def test_deregister_removes_and_tolerates_unknown(self):
        reg = MetricsRegistry()
        reg.register_source("ledger", dict)
        reg.deregister_source("ledger")
        reg.deregister_source("never-registered")
        assert reg.source_names() == []
        assert reg.snapshot()["sources"] == {}

    def test_failing_source_reports_error_in_place(self):
        reg = MetricsRegistry()

        def broken():
            raise ValueError("ledger gone")

        reg.register_source("bad", broken)
        reg.register_source("good", lambda: {"ok": True})
        sources = reg.snapshot()["sources"]
        assert sources["bad"] == {"error": "ValueError: ledger gone"}
        assert sources["good"] == {"ok": True}

    def test_clear_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.gauge("g", 1)
        reg.observe("h", 1)
        reg.register_source("s", dict)
        reg.clear()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "sources": {},
        }

    def test_snapshot_is_json_safe_and_detached(self):
        reg = MetricsRegistry()
        reg.counter("c")
        snap = reg.snapshot()
        json.dumps(snap)
        snap["counters"]["c"] = 999.0
        assert reg.snapshot()["counters"]["c"] == 1.0
