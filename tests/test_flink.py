"""Tests for the Flink-like engine: typed rows, lazy deser, queries QA-QE."""

import pytest

from repro.core.adapter import SkywaySerializer
from repro.core.runtime import attach_skyway
from repro.flink.engine import FlinkEnvironment, Table
from repro.flink.queries import QUERIES, run_query
from repro.flink.tpch import LINEITEM, generate_tpch
from repro.flink.types import BuiltinRowSerializer, FieldKind as K, RowType
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.net.streams import ByteInputStream, ByteOutputStream
from repro.simtime import Category
from repro.types.corelib import standard_classpath


def make_env(mode: str = "builtin", workers: int = 3,
             parallelism: int = 4) -> FlinkEnvironment:
    classpath = standard_classpath()
    cluster = Cluster(lambda name: JVM(name, classpath=classpath),
                      worker_count=workers)
    serializer = None
    if mode == "skyway":
        attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                      cluster=cluster)
        serializer = SkywaySerializer()
    return FlinkEnvironment(cluster, mode=mode, parallelism=parallelism,
                            skyway_serializer=serializer)


SIMPLE = RowType.of("simple", ("id", K.LONG), ("score", K.DOUBLE),
                    ("tag", K.STRING), ("day", K.DATE))


class TestRowType:
    def test_index_of(self):
        assert SIMPLE.index_of("tag") == 2
        with pytest.raises(KeyError):
            SIMPLE.index_of("nope")

    def test_concat_and_project(self):
        joined = SIMPLE.concat(SIMPLE)
        assert joined.arity == 8
        projected = SIMPLE.project([0, 2])
        assert [n for n, _ in projected.fields] == ["id", "tag"]


class TestBuiltinRowSerializer:
    def test_roundtrip(self):
        jvm = JVM("t", classpath=standard_classpath())
        ser = BuiltinRowSerializer(SIMPLE)
        out = ByteOutputStream()
        rows = [(1, 2.5, "alpha", 100), (-7, 0.0, "", 0)]
        for row in rows:
            ser.write_row(out, row, jvm)
        inp = ByteInputStream(out.getvalue())
        back = [ser.read_row(inp, jvm) for _ in rows]
        assert back == rows

    def test_no_type_tags_in_bytes(self):
        jvm = JVM("t", classpath=standard_classpath())
        ser = BuiltinRowSerializer(SIMPLE)
        out = ByteOutputStream()
        ser.write_row(out, (1, 1.0, "xy", 5), jvm)
        # 8 + 8 + (1+2) + 4 bytes: schema is static, no tags.
        assert len(out.getvalue()) == 23

    def test_lazy_deserialization_charges_less(self):
        jvm = JVM("t", classpath=standard_classpath())
        ser = BuiltinRowSerializer(SIMPLE)
        out = ByteOutputStream()
        for _ in range(100):
            ser.write_row(out, (1, 1.0, "tag", 5), jvm)
        data = out.getvalue()

        jvm_all = JVM("all", classpath=standard_classpath())
        inp = ByteInputStream(data)
        for _ in range(100):
            ser.read_row(inp, jvm_all, accessed=None)
        jvm_lazy = JVM("lazy", classpath=standard_classpath())
        inp = ByteInputStream(data)
        for _ in range(100):
            ser.read_row(inp, jvm_lazy, accessed=[0])
        assert jvm_lazy.clock.total() < jvm_all.clock.total()


class TestDataSetOps:
    def test_filter_project(self):
        env = make_env()
        table = Table(SIMPLE, [(i, i * 1.5, f"t{i}", i) for i in range(20)])
        ds = env.from_table(table).filter(lambda r: r[0] % 2 == 0).project([0, 2])
        rows = sorted(ds.collect())
        assert rows[0] == (0, "t0")
        assert len(rows) == 10

    def test_join(self):
        env = make_env()
        left = Table(RowType.of("l", ("k", K.LONG), ("v", K.STRING)),
                     [(1, "a"), (2, "b"), (2, "bb")])
        right = Table(RowType.of("r", ("k", K.LONG), ("w", K.DOUBLE)),
                      [(2, 9.0), (3, 1.0)])
        joined = env.from_table(left).join(env.from_table(right), 0, 0)
        rows = sorted(joined.collect())
        assert rows == [(2, "b", 2, 9.0), (2, "bb", 2, 9.0)]

    def test_group_aggregate(self):
        env = make_env()
        table = Table(RowType.of("g", ("k", K.LONG), ("v", K.DOUBLE)),
                      [(i % 3, float(i)) for i in range(12)])
        out_type = RowType.of("o", ("k", K.LONG), ("sum", K.DOUBLE))
        result = (
            env.from_table(table)
            .group_by(lambda r: r[0])
            .aggregate(lambda k, rows: (k, sum(r[1] for r in rows)), out_type)
        )
        assert dict(result.collect()) == {0: 18.0, 1: 22.0, 2: 26.0}

    def test_shuffle_charges_sd_phases(self):
        env = make_env()
        table = Table(SIMPLE, [(i, 1.0, "x", 0) for i in range(50)])
        env.from_table(table).group_by(lambda r: r[0] % 5).aggregate(
            lambda k, rows: (k, float(len(rows))),
            RowType.of("o", ("k", K.LONG), ("n", K.DOUBLE)),
        ).collect()
        total = env.cluster.total_clock()
        assert total.total(Category.SERIALIZATION) > 0
        assert total.total(Category.DESERIALIZATION) > 0
        assert env.bytes_shuffled > 0


class TestTpchGenerator:
    def test_deterministic(self):
        a, b = generate_tpch(0.2), generate_tpch(0.2)
        assert a.lineitem.rows == b.lineitem.rows

    def test_cardinality_ratios(self):
        data = generate_tpch(1.0)
        assert len(data.region) == 5
        assert len(data.nation) == 25
        assert len(data.partsupp) == 4 * len(data.part)
        assert 1 <= len(data.lineitem) / len(data.orders) <= 7

    def test_foreign_keys_valid(self):
        data = generate_tpch(0.5)
        orderkeys = {o[0] for o in data.orders.rows}
        partkeys = {p[0] for p in data.part.rows}
        suppkeys = {s[0] for s in data.supplier.rows}
        for li in data.lineitem.rows:
            assert li[0] in orderkeys
            assert li[1] in partkeys
            assert li[2] in suppkeys


class TestQueries:
    @pytest.fixture(scope="class")
    def data(self):
        return generate_tpch(0.3)

    @pytest.mark.parametrize("qkey", list(QUERIES))
    def test_query_matches_reference_builtin(self, qkey, data):
        env = make_env("builtin")
        assert run_query(qkey, env, data) == QUERIES[qkey].reference(data)

    @pytest.mark.parametrize("qkey", ["QA", "QD"])
    def test_query_matches_reference_skyway(self, qkey, data):
        env = make_env("skyway")
        assert run_query(qkey, env, data) == QUERIES[qkey].reference(data)

    def test_skyway_ships_more_bytes_than_builtin(self, data):
        env_b = make_env("builtin")
        run_query("QA", env_b, data)
        env_s = make_env("skyway")
        run_query("QA", env_s, data)
        assert env_s.bytes_shuffled > 1.2 * env_b.bytes_shuffled

    def test_descriptions_match_table3(self):
        assert "120 days" in QUERIES["QA"].description
        assert "minimum cost supplier" in QUERIES["QB"].description
        assert "shipping priority" in QUERIES["QC"].description
        assert "late orders" in QUERIES["QD"].description
        assert "lost revenue" in QUERIES["QE"].description
