"""Receiver-side dispatch: bytes in, heap roots out, one entry point.

Every inbound payload in the repo is one of two shapes: a plain Skyway
stream frame (stateless — decode, free when done) or an epoch frame
(FULL/DELTA, ``0x10``/``0x11`` leading byte — stateful, routed by channel
id through the runtime's :class:`~repro.delta.channel.DeltaReceiveEndpoint`
which retains the buffer across epochs).  :func:`open_reader` sniffs the
leading byte once, here, and returns the right
:class:`~repro.serial.base.DeserializationStream`; nothing above this
module inspects frame bytes.

Failure taxonomy: anything malformed (truncated frame, bit-flipped record,
unparseable embedded stream) surfaces as
:class:`~repro.exchange.errors.ExchangeProtocolError`;
:class:`~repro.delta.channel.DeltaStaleError` passes through untouched —
it is the epoch protocol's NACK, and senders react to it rather than
report it.
"""

from __future__ import annotations

from typing import List

from repro.core.runtime import SkywayRuntime
from repro.core.streams import SkywayObjectInputStream
from repro.delta.channel import DeltaReceiveEndpoint, DeltaStaleError
from repro.delta.wire import is_delta_frame
from repro.exchange.errors import ExchangeProtocolError
from repro.serial.base import DeserializationStream, SerializationError


def receive_epoch(runtime: SkywayRuntime, data: bytes) -> List[int]:
    """Apply one FULL/DELTA epoch frame on ``runtime``; returns the
    epoch's root addresses.  Staleness propagates; damage is wrapped."""
    endpoint = DeltaReceiveEndpoint.for_runtime(runtime)
    try:
        return endpoint.receive(data)
    except DeltaStaleError:
        raise
    except ExchangeProtocolError:
        raise
    except Exception as exc:
        raise ExchangeProtocolError(
            f"cannot apply epoch frame ({type(exc).__name__}: {exc})"
        ) from exc


def open_reader(runtime: SkywayRuntime, data: bytes) -> DeserializationStream:
    """The one reader factory: epoch frames route through the runtime's
    delta endpoint, plain Skyway streams through a stateless input
    stream."""
    if is_delta_frame(data):
        return EpochDeserializationStream(runtime, data)
    return PlainDeserializationStream(runtime, data)


class PlainDeserializationStream(DeserializationStream):
    """Stateless reader over one plain Skyway stream frame."""

    def __init__(self, runtime: SkywayRuntime, data: bytes) -> None:
        self._stream = SkywayObjectInputStream(runtime)
        try:
            self._stream.accept(data)
        except ExchangeProtocolError:
            raise
        except Exception as exc:
            raise ExchangeProtocolError(
                f"cannot decode stream frame ({type(exc).__name__}: {exc})"
            ) from exc

    def read_object(self) -> int:
        return self._stream.read_object()

    def has_next(self) -> bool:
        return self._stream.has_next()

    def close(self) -> None:
        self._stream.close()


class EpochDeserializationStream(DeserializationStream):
    """Reader over one epoch frame.  ``close()`` deliberately keeps the
    input buffer alive: the retained buffer is *channel* state (the next
    DELTA patches it in place); a later FULL frame on the same channel —
    or releasing the channel — ends the retention."""

    def __init__(self, runtime: SkywayRuntime, data: bytes) -> None:
        self._roots = receive_epoch(runtime, data)
        self._cursor = 0

    def read_object(self) -> int:
        if self._cursor >= len(self._roots):
            raise SerializationError("no more objects in this epoch")
        root = self._roots[self._cursor]
        self._cursor += 1
        return root

    def has_next(self) -> bool:
        return self._cursor < len(self._roots)

    def close(self) -> None:
        self._roots = []
