"""Tests for closure serialization (paper §2.1)."""

import pytest

from repro.simtime import Category

from tests.test_spark_engine import make_context


class TestClosureShipping:
    def test_one_closure_per_stage_per_executor(self):
        sc = make_context("kryo", workers=3, partitions=6)
        rdd = sc.parallelize(range(60), 6).map(lambda x: x + 1)
        rdd.collect()
        # One MappedRDD stage over 6 partitions on 3 workers: each worker
        # receives the closure once (not once per task).
        shipped_first = sc.closures.closures_shipped
        assert shipped_first <= 2 * 3  # parallelize+map stages x workers
        rdd.collect()
        # Re-running the same stage ships nothing new.
        assert sc.closures.closures_shipped == shipped_first

    def test_closures_always_use_java_serializer(self):
        """Even with Skyway as the data serializer, closures travel via the
        Java serializer (the paper's configuration)."""
        sc = make_context("skyway")
        driver = sc.cluster.driver
        before = driver.clock.total(Category.SERIALIZATION)
        sc.parallelize(range(10)).map(lambda x: x).collect()
        # Driver-side closure serialization time was charged even though
        # no data shuffle happened on the driver.
        assert driver.clock.total(Category.SERIALIZATION) > before

    def test_worker_pays_closure_deserialization(self):
        sc = make_context("kryo")
        sc.parallelize(range(10)).map(lambda x: x).collect()
        assert any(
            w.clock.total(Category.DESERIALIZATION) > 0
            for w in sc.cluster.workers
        )

    def test_closure_transfer_counts_network(self):
        sc = make_context("kryo")
        before = sum(w.remote_bytes_fetched for w in sc.cluster.workers)
        sc.parallelize(range(10)).map(lambda x: x).collect()
        assert sum(w.remote_bytes_fetched for w in sc.cluster.workers) > before
