"""Registry-source lifecycle: every owner deregisters on close, and the
GC source never pins a heap alive."""

import gc as pygc

from repro import obs
from repro.core.runtime import attach_skyway
from repro.exchange import Exchange
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.serial.java_serializer import JavaSerializer
from repro.spark.context import SparkContext

from tests.conftest import sample_classpath


def make_cluster(workers: int = 1) -> Cluster:
    classpath = sample_classpath()
    return Cluster(lambda name: JVM(name, classpath=classpath),
                   worker_count=workers)


def exchange_sources():
    return [n for n in obs.registry().source_names()
            if n.startswith("exchange.")]


def test_channel_close_deregisters_source():
    cluster = make_cluster()
    attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                  cluster=cluster)
    exchange = Exchange.loopback(cluster)
    assert exchange_sources() == []
    channel = exchange.channel_to("worker-0")
    (name,) = exchange_sources()
    assert name.startswith("exchange.loopback.worker-0#")
    src = obs.registry().snapshot()["sources"][name]
    assert src["wire_bytes"] == 0 and src["sends"] == 0
    channel.close()
    assert exchange_sources() == []
    channel.close()  # idempotent


def test_exchange_close_deregisters_all_channels():
    cluster = make_cluster(workers=2)
    attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                  cluster=cluster)
    exchange = Exchange.loopback(cluster)
    exchange.channel_to("worker-0")
    exchange.channel_to("worker-1")
    assert len(exchange_sources()) == 2
    exchange.close()
    assert exchange_sources() == []


def test_spark_context_registers_event_source():
    cluster = make_cluster()
    sc = SparkContext(cluster, JavaSerializer())
    name = f"spark.events.app{sc.app_id}"
    assert name in obs.registry().source_names()
    sc.events.emit("task", node="worker-0")
    src = obs.registry().snapshot()["sources"][name]
    assert src == [{"kind": "task", "details": {"node": "worker-0"}}]


def test_jvm_gc_source_reports_stats():
    jvm = JVM("obs-gc-probe", classpath=sample_classpath(),
              young_bytes=48 * 1024, old_bytes=256 * 1024)
    names = [n for n in obs.registry().source_names()
             if n.startswith("gc.obs-gc-probe#")]
    assert len(names) == 1
    for _ in range(3000):  # enough churn to force at least one scavenge
        jvm.new_instance("Day2D")
    src = obs.registry().snapshot()["sources"][names[0]]
    assert src["jvm"] == "obs-gc-probe"
    assert src["minor_collections"] >= 1
    assert src["sim_seconds"] > 0


def test_jvm_gc_source_does_not_pin_the_heap():
    jvm = JVM("obs-pin-probe", classpath=sample_classpath())
    (name,) = [n for n in obs.registry().source_names()
               if n.startswith("gc.obs-pin-probe#")]
    del jvm
    pygc.collect()
    assert obs.registry().snapshot()["sources"][name] == {"collected": True}
