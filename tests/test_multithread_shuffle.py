"""Tests for multi-threaded shuffle (paper §4.2 "Support for Threads"
exercised through the Spark engine)."""

import pytest

from repro.spark.context import SparkConfig

from tests.test_spark_engine import make_cluster, make_context
from repro.core.adapter import SkywaySerializer
from repro.core.runtime import attach_skyway
from repro.spark.context import SparkContext


def make_threaded_context(threads: int) -> SparkContext:
    cluster = make_cluster(3)
    attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                  cluster=cluster)
    return SparkContext(
        cluster, SkywaySerializer(), default_parallelism=4,
        config=SparkConfig(shuffle_threads=threads),
    )


class TestMultiThreadShuffle:
    def test_results_identical_across_thread_counts(self):
        pairs = [(i % 7, (i, float(i))) for i in range(120)]
        expected = None
        for threads in (1, 2, 4):
            sc = make_threaded_context(threads)
            result = sorted(sc.parallelize(pairs).group_by_key().collect())
            if expected is None:
                expected = result
            assert result == expected, f"threads={threads}"

    def test_shared_subobject_across_buckets(self):
        """A value object referenced from records landing in different
        reduce buckets is cloned once per stream (paper: 'these copies
        will become separate objects after delivered to a remote node')."""
        sc = make_threaded_context(2)
        shared = ("shared-payload", 1, 2)
        pairs = [(i, shared) for i in range(16)]  # keys spread all buckets
        result = dict(sc.parallelize(pairs).group_by_key().collect())
        assert all(v == [shared] for v in result.values())

    def test_thread_ids_bounded_by_config(self):
        sc = make_threaded_context(2)
        pairs = [(i, i) for i in range(40)]
        sc.parallelize(pairs).reduce_by_key(lambda a, b: a + b).collect()
        # Per-thread output buffers exist for at most `threads` thread ids.
        for node in sc.cluster.workers:
            tids = {tid for (_, tid) in node.jvm.skyway._buffers}
            assert tids <= {0, 1}

    def test_java_serializer_ignores_thread_id(self):
        sc = make_context("java")
        sc.config = SparkConfig(shuffle_threads=3)
        pairs = [(i % 5, i) for i in range(30)]
        result = dict(sc.parallelize(pairs).reduce_by_key(lambda a, b: a + b).collect())
        assert result == {k: sum(i for i in range(30) if i % 5 == k)
                          for k in range(5)}
