"""B-FANIN — one worker, a thousand concurrent delta channels.

Per serve mode (thread-per-connection vs the async event loop) and per
channel count (16/128/1024, scaled down by ``REPRO_BENCH_SCALE``), C
delta channels each bootstrap a FULL epoch and then ride a delta epoch
into one worker, digest-gated per channel against the sender's heap.
The gate: every digest matches, epoch 2 is all-delta, the async worker
sustains the largest fan-in, and its send wall-clock beats
thread-per-connection there.
"""

from repro.bench.fanin_experiments import (
    DEFAULT_CHANNELS,
    fanin_checks_pass,
    format_fanin_report,
    run_fanin_experiment,
)

from conftest import bench_scale, emit_json, publish


def test_fanin_thread_vs_async(benchmark):
    counts = [max(4, int(c * bench_scale())) for c in DEFAULT_CHANNELS]
    result = benchmark.pedantic(
        lambda: run_fanin_experiment(channel_counts=counts),
        rounds=1, iterations=1,
    )

    publish("fanin", format_fanin_report(result))
    emit_json("fanin", result)

    checks = result["checks"]
    assert checks["digests_match_sender"], (
        "a channel's worker-side digest diverged from the sender's heap"
    )
    assert checks["async_sustains_max_fanin"], (
        "the async worker dropped channels at the largest fan-in"
    )
    assert fanin_checks_pass(result), f"B-FANIN gate failed: {checks}"
