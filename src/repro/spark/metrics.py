"""Job metrics: turning cluster clocks into the paper's breakdowns."""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Tuple, TypeVar

from repro.net.cluster import Cluster
from repro.simtime import Breakdown, Category, SimClock

T = TypeVar("T")


@dataclasses.dataclass(frozen=True)
class JobMetrics:
    """Aggregate cluster cost of one job, plus per-direction byte counts."""

    breakdown: Breakdown
    local_bytes: int
    remote_bytes: int
    shuffle_bytes: int

    @property
    def total(self) -> float:
        return self.breakdown.total


def measure_job(cluster: Cluster, action: Callable[[], T],
                shuffle_bytes_source: Callable[[], int] = lambda: 0,
                ) -> Tuple[T, JobMetrics]:
    """Run ``action`` and report the cluster-wide cost delta it caused."""
    snapshots = {node.name: node.clock.snapshot() for node in cluster.nodes()}
    local_before = sum(n.local_bytes_fetched for n in cluster.nodes())
    remote_before = sum(n.remote_bytes_fetched for n in cluster.nodes())
    disk_before = sum(n.disk.bytes_written for n in cluster.nodes())
    shuffle_before = shuffle_bytes_source()

    result = action()

    total = SimClock("job")
    for node in cluster.nodes():
        delta = node.clock.since(snapshots[node.name])
        for category, value in delta.items():
            total.charge(value, category)
    local = sum(n.local_bytes_fetched for n in cluster.nodes()) - local_before
    remote = sum(n.remote_bytes_fetched for n in cluster.nodes()) - remote_before
    written = sum(n.disk.bytes_written for n in cluster.nodes()) - disk_before
    shuffled = shuffle_bytes_source() - shuffle_before

    breakdown = Breakdown.from_totals(
        total.totals(),
        bytes_written=written if shuffled == 0 else shuffled,
        local_bytes=local,
        remote_bytes=remote,
    )
    return result, JobMetrics(
        breakdown=breakdown,
        local_bytes=local,
        remote_bytes=remote,
        shuffle_bytes=shuffled,
    )
