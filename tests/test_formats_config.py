"""Tests for the cluster object-format configuration (paper §3.1)."""

import pytest

from repro.core.formats import ClusterFormatConfig
from repro.core.runtime import attach_skyway
from repro.core.streams import SkywayObjectInputStream, SkywaySocketOutputStream
from repro.heap.layout import BASELINE_LAYOUT, SKYWAY_LAYOUT
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster

from tests.conftest import make_date, read_date, sample_classpath


class TestConfigParsing:
    def test_parse_default_and_nodes(self):
        config = ClusterFormatConfig.parse(
            """
            # cluster formats
            default = skyway-64
            node worker-1 = baseline-64
            """
        )
        assert config.default is SKYWAY_LAYOUT
        assert config.layout_for("worker-1") is BASELINE_LAYOUT
        assert config.layout_for("worker-0") is SKYWAY_LAYOUT
        assert "worker-1" in config and "worker-0" not in config

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown format"):
            ClusterFormatConfig.parse("default = sparc-32")

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            ClusterFormatConfig.parse("default skyway-64")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            ClusterFormatConfig.parse("machine w1 = skyway-64")

    def test_dumps_roundtrip(self):
        config = ClusterFormatConfig()
        config.set_node_format("w2", BASELINE_LAYOUT)
        reparsed = ClusterFormatConfig.parse(config.dumps())
        assert reparsed.layout_for("w2") is BASELINE_LAYOUT
        assert reparsed.default is SKYWAY_LAYOUT


class TestConfigDrivenTransfer:
    def test_socket_stream_uses_configured_layout(self):
        classpath = sample_classpath()

        def jvm_factory(name):
            layout = BASELINE_LAYOUT if name == "worker-1" else SKYWAY_LAYOUT
            return JVM(name, classpath=classpath, layout=layout)

        cluster = Cluster(jvm_factory, worker_count=2)
        config = ClusterFormatConfig()
        config.set_node_format("worker-1", BASELINE_LAYOUT)
        attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                      cluster=cluster, format_config=config)

        src = cluster.driver
        hetero_dst = cluster.workers[1]  # baseline layout
        homo_dst = cluster.workers[0]    # skyway layout

        date = make_date(src.jvm, 2018, 3, 24)
        out = SkywaySocketOutputStream(src.jvm.skyway, cluster, src, hetero_dst)
        assert out.sender.heterogeneous  # picked up from the config
        out.write_object(date)
        inp = SkywayObjectInputStream(hetero_dst.jvm.skyway)
        inp.accept(out.close())
        assert read_date(hetero_dst.jvm, inp.read_object()) == (2018, 3, 24)

        src.jvm.skyway.shuffle_start()
        date2 = make_date(src.jvm, 1, 2, 3)
        out2 = SkywaySocketOutputStream(src.jvm.skyway, cluster, src, homo_dst)
        assert not out2.sender.heterogeneous
        out2.write_object(date2)
        inp2 = SkywayObjectInputStream(homo_dst.jvm.skyway)
        inp2.accept(out2.close())
        assert read_date(homo_dst.jvm, inp2.read_object()) == (1, 2, 3)

    def test_explicit_layout_overrides_config(self):
        classpath = sample_classpath()
        cluster = Cluster(lambda n: JVM(n, classpath=classpath), worker_count=1)
        config = ClusterFormatConfig()  # default skyway everywhere
        attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                      cluster=cluster, format_config=config)
        out = SkywaySocketOutputStream(
            cluster.driver.jvm.skyway, cluster, cluster.driver,
            cluster.workers[0], target_layout=BASELINE_LAYOUT,
        )
        assert out.sender.heterogeneous
