"""Tests for the Skyway output buffer: logical addresses and streaming."""

import pytest

from repro.core.output_buffer import LOGICAL_BASE, OutputBuffer


class TestReserve:
    def test_starts_past_null_word(self):
        buf = OutputBuffer("d")
        assert buf.reserve(24) == LOGICAL_BASE

    def test_addresses_monotonic_and_aligned(self):
        buf = OutputBuffer("d")
        a = buf.reserve(17)
        b = buf.reserve(8)
        assert b == a + 24  # 17 aligned up to 24
        assert a % 8 == 0 and b % 8 == 0

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            OutputBuffer("d", capacity=16)


class TestWriteAndFlush:
    def test_sequential_writes_accumulate(self):
        buf = OutputBuffer("d", capacity=1024)
        a = buf.reserve(32)
        buf.write_object(a, b"\x01" * 32)
        b = buf.reserve(32)
        buf.write_object(b, b"\x02" * 32)
        assert buf.resident_bytes == 64

    def test_flush_on_overflow(self):
        collected = []
        buf = OutputBuffer("d", capacity=64, sink=collected.append)
        a = buf.reserve(48)
        buf.write_object(a, b"a" * 48)
        b = buf.reserve(48)
        buf.write_object(b, b"b" * 48)
        assert buf.flush_count >= 1
        assert b"".join(collected).startswith(b"a" * 48)

    def test_oversized_object_streams_through(self):
        collected = []
        buf = OutputBuffer("d", capacity=64, sink=collected.append)
        a = buf.reserve(256)
        buf.write_object(a, b"x" * 256)
        buf.flush()
        assert b"".join(collected) == b"x" * 256

    def test_flushed_bytes_tracks_logical_progress(self):
        buf = OutputBuffer("d", capacity=64, sink=lambda s: None)
        a = buf.reserve(48)
        buf.write_object(a, b"a" * 48)
        buf.flush()
        assert buf.flushed_bytes == LOGICAL_BASE + 48
        b = buf.reserve(24)
        buf.write_object(b, b"b" * 24)  # lands at physical offset 0
        assert buf.resident_bytes == 24

    def test_write_into_flushed_region_rejected(self):
        buf = OutputBuffer("d", capacity=64, sink=lambda s: None)
        a = buf.reserve(48)
        buf.write_object(a, b"a" * 48)
        buf.flush()
        with pytest.raises(ValueError):
            buf.write_object(a, b"too late")

    def test_drain_segments_without_sink(self):
        buf = OutputBuffer("d", capacity=64)
        a = buf.reserve(48)
        buf.write_object(a, b"a" * 48)
        buf.flush()
        assert buf.drain_segments() == [b"a" * 48]
        assert buf.drain_segments() == []

    def test_set_sink_flushes_pending(self):
        buf = OutputBuffer("d", capacity=64)
        a = buf.reserve(48)
        buf.write_object(a, b"a" * 48)
        buf.flush()
        got = []
        buf.set_sink(got.append)
        assert got == [b"a" * 48]

    def test_clear_resets_everything(self):
        buf = OutputBuffer("d")
        buf.reserve(32)
        buf.clear()
        assert buf.reserve(8) == LOGICAL_BASE
        assert buf.logical_size == 8

    def test_patch_word_resident(self):
        buf = OutputBuffer("d", capacity=1024)
        a = buf.reserve(32)
        buf.write_object(a, bytes(32))
        assert buf.patch_word(a, 0xDEAD)
        assert not buf.patch_word(a + 4096, 0)
