"""B-KERNEL — compiled per-class clone kernels + multi-stream parallel send.

Wall-clock, like T-SOCKET: the same vertex graph is serialized by the
interpreted per-field traversal and by the compiled-kernel path (must be
byte-identical and at least 2x faster), then shipped to a spawned worker
over one socket stream and over N parallel streams with distinct
``thread_id`` words (paper §4.2's per-thread output buffers as real
connections).  Digest parity between kernel and interpreted parallel runs
gates the whole thing — speed never buys semantic drift.
"""

from repro.bench.kernel_experiments import (
    format_kernel_report,
    kernel_checks_pass,
    run_kernel_experiment,
)

from conftest import bench_scale, emit_json, publish


def run(vertices: int):
    return run_kernel_experiment(vertices=vertices)


def test_kernel_speedup_and_parallel_send(benchmark):
    vertices = max(4_000, int(40_000 * bench_scale()))
    result = benchmark.pedantic(lambda: run(vertices), rounds=1, iterations=1)

    publish("kernels", format_kernel_report(result))
    emit_json("kernels", result)

    assert kernel_checks_pass(result), (
        "kernel and interpreted streams diverged (bytes or digests)"
    )
    # The headline acceptance gate: compiled kernels at least double the
    # sender-side traversal throughput.
    assert result["traversal"]["speedup"] >= 2.0
    # On the paced wire, N streams must beat one stream outright.
    assert result["parallel"]["speedup"] > 1.0
