"""``SparkContext.send``'s engine: one policy-driven push to every worker.

:class:`PolicySend` is the single front door for shipping driver-heap
object graphs — it subsumes the old ``delta_broadcast`` (epoch channels)
and ``parallel_send`` (multi-stream fulls) entry points.  The caller no
longer picks a mode: per worker per push, the shared
:class:`~repro.policy.engine.PolicyEngine` plans the epoch (full, delta,
kernel traversal, stream count, digest) from that channel's live signals,
and the dispatch here merely executes the plan — ``parallel-N`` plans
route around the epoch channel to ``Exchange.parallel_send``, everything
else goes down the channel with the plan attached.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.exchange.capabilities import ChannelCapabilities, DEFAULT_REQUEST
from repro.exchange.channel import GraphChannel
from repro.exchange.service import Exchange
from repro.net.cluster import Cluster, Node
from repro.policy import resolve_engine
from repro.delta.policy import ChannelStats


@dataclasses.dataclass
class PushReport:
    """What one ``push()`` epoch cost, per worker and in total."""

    epoch: int
    wire_bytes: int
    modes: Dict[str, str]  # worker name -> "full" | "delta" | "parallel-N"
    resends: int  # stale-channel full resends this push


#: What ``send()`` requests per worker: every fast path on, enough stream
#: headroom for the engine's ``parallel-N`` plans (the substrate's offer
#: still clamps).
SEND_REQUEST = dataclasses.replace(DEFAULT_REQUEST, parallel_streams=4)


class PolicySend:
    """A driver-heap value pushed to every worker, one plan per epoch."""

    def __init__(
        self,
        cluster: Cluster,
        roots: Union[int, Sequence[int]],
        policy=None,
        exchange: Optional[Exchange] = None,
        workers: Optional[Sequence[str]] = None,
        requested: Optional[ChannelCapabilities] = None,
        default_policy: str = "adaptive",
    ) -> None:
        driver = cluster.driver
        if driver.jvm.skyway is None:
            raise RuntimeError(
                "send() needs Skyway attached to the cluster "
                "(repro.core.attach_skyway)"
            )
        self.cluster = cluster
        self.exchange = (exchange if exchange is not None
                         else Exchange.loopback(cluster))
        self.roots: List[int] = ([roots] if isinstance(roots, int)
                                 else list(roots))
        if not self.roots:
            raise ValueError("send() needs at least one root")
        #: One engine across every worker channel: per-channel history
        #: keeps a slow peer's bandwidth from polluting the others.
        self.engine = resolve_engine(policy, default=default_policy)
        self.requested = requested if requested is not None else SEND_REQUEST
        self._pins = [driver.jvm.pin(root) for root in self.roots]
        names = (list(workers) if workers is not None
                 else [w.name for w in cluster.workers])
        self._channels: Dict[str, GraphChannel] = {
            name: self.exchange.channel_to(
                name, requested=self.requested, policy=self.engine
            )
            for name in names
        }
        self._worker_roots: Dict[str, int] = {}
        self.pushes: List[PushReport] = []

    # ------------------------------------------------------------------
    # shipping
    # ------------------------------------------------------------------

    @property
    def root(self) -> int:
        return self.roots[0]

    def push(self, digest: Optional[bool] = None) -> PushReport:
        """Ship one epoch of the value to every worker, mode per plan."""
        total = 0
        modes: Dict[str, str] = {}
        resends = 0
        epoch = 0
        for name, channel in self._channels.items():
            plan = channel.plan_next(self.roots)
            if plan.mode == "full" and plan.streams > 1 and len(self.roots) > 1:
                total += self._push_parallel(name, channel, plan.streams)
                modes[name] = plan.label
                epoch = channel.epoch
                continue
            receipt = channel.send(self.roots, digest=digest, plan=plan)
            if receipt.nack_recovered:
                resends += 1
            total += receipt.wire_bytes
            modes[name] = receipt.mode
            epoch = receipt.epoch
            if receipt.roots:
                self._worker_roots[name] = receipt.roots[0]
        report = PushReport(
            epoch=epoch, wire_bytes=total, modes=modes, resends=resends
        )
        self.pushes.append(report)
        return report

    def _push_parallel(self, name: str, channel: GraphChannel,
                       streams: int) -> int:
        """Execute a ``parallel-N`` plan: route the roots around the epoch
        channel as N interleaved streams.  The receiver's retained channel
        state is bypassed, so the next channel epoch is forced FULL and
        any channel-delivered root address is invalidated."""
        channel.discard_plan()
        started = time.perf_counter()
        report = self.exchange.parallel_send(name, self.roots,
                                             streams=streams)
        wire = sum(s.result["stream_bytes"] for s in report.streams)
        channel.engine.observe_transfer(
            channel.channel_id, wire, time.perf_counter() - started
        )
        channel.force_full_next()
        self._worker_roots.pop(name, None)
        return wire

    # ------------------------------------------------------------------
    # reading / accounting
    # ------------------------------------------------------------------

    def value_on(self, worker: Node) -> int:
        """The worker-heap address of the value (stable across delta
        epochs; changes only when a full resend rebuilds it)."""
        try:
            return self._worker_roots[worker.name]
        except KeyError:
            raise RuntimeError(
                f"no epoch pushed to {worker.name} yet; call push() first"
            ) from None

    @property
    def wire_bytes(self) -> int:
        return sum(report.wire_bytes for report in self.pushes)

    def channel_stats(self) -> Dict[str, ChannelStats]:
        return {name: ch.stats for name, ch in self._channels.items()}

    def metrics(self) -> Dict[str, dict]:
        """Per-worker unified exchange metrics (one snapshot each)."""
        return {name: ch.metrics().as_dict()
                for name, ch in self._channels.items()}

    def close(self) -> None:
        """Unpin the driver copy and detach every channel's card table."""
        for pin in self._pins:
            self.cluster.driver.jvm.unpin(pin)
        for channel in self._channels.values():
            channel.close()
