"""DAG analysis: splitting an RDD lineage into stages.

The engine executes recursively (a shuffle parent forces its map stage),
so scheduling is implicit; this module makes the DAG structure *explicit*
for introspection and tests — the same decomposition Spark's DAGScheduler
performs: a stage is a maximal chain of narrow dependencies, and every
shuffle dependency is a stage boundary.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set

from repro.spark.rdd import RDD, ShuffledRDD


@dataclasses.dataclass
class Stage:
    """A pipelined set of RDDs executed together per partition."""

    id: int
    rdds: List[RDD]
    #: Stages whose shuffle output this stage reads.
    parents: List["Stage"]
    #: True for the final stage of a job (produces the action's result).
    is_result: bool = False

    @property
    def num_tasks(self) -> int:
        return self.rdds[0].num_partitions if self.rdds else 0

    def describe(self) -> str:
        names = " <- ".join(
            getattr(r, "name", None) or getattr(r, "op_name", None)
            or type(r).__name__
            for r in self.rdds
        )
        deps = ",".join(str(p.id) for p in self.parents) or "-"
        return f"Stage {self.id} ({self.num_tasks} tasks, parents: {deps}): {names}"


def build_stages(final_rdd: RDD) -> List[Stage]:
    """Decompose the lineage ending at ``final_rdd`` into stages, parents
    first (topological order); the last stage is the result stage."""
    stage_of: Dict[int, Stage] = {}
    order: List[Stage] = []
    counter = [0]

    def stage_for(rdd: RDD, is_result: bool) -> Stage:
        existing = stage_of.get(rdd.id)
        if existing is not None:
            return existing
        # Walk back through narrow dependencies.
        chain: List[RDD] = []
        parents: List[Stage] = []
        node = rdd
        while True:
            chain.append(node)
            stage_parents = node._parents()
            if isinstance(node, ShuffledRDD):
                # Shuffle boundary: the map side is a parent stage.
                for parent in stage_parents:
                    parents.append(stage_for(parent, is_result=False))
                break
            if not stage_parents:
                break
            if len(stage_parents) > 1:
                # Union/join fan-in: each side gets its own stage chain.
                for parent in stage_parents:
                    parents.append(stage_for(parent, is_result=False))
                break
            node = stage_parents[0]

        stage = Stage(id=counter[0], rdds=chain, parents=parents,
                      is_result=is_result)
        counter[0] += 1
        for r in chain:
            stage_of[r.id] = stage
        order.append(stage)
        return stage

    stage_for(final_rdd, is_result=True)
    # ``order`` is completion order of the recursion = parents first.
    return order


def count_shuffles(final_rdd: RDD) -> int:
    """Number of distinct shuffle boundaries in a lineage."""
    seen: Set[int] = set()
    shuffles = 0
    stack = [final_rdd]
    while stack:
        node = stack.pop()
        if node.id in seen:
            continue
        seen.add(node.id)
        if isinstance(node, ShuffledRDD):
            shuffles += 1
        stack.extend(node._parents())
    return shuffles


def describe_job(final_rdd: RDD) -> str:
    stages = build_stages(final_rdd)
    lines = [f"job over RDD #{final_rdd.id}: {len(stages)} stages, "
             f"{count_shuffles(final_rdd)} shuffles"]
    lines.extend(stage.describe() for stage in stages)
    return "\n".join(lines)
