"""Simulated time substrate: per-node clocks and the calibrated cost model.

The paper measures wall-clock seconds on a Xeon cluster.  This reproduction
replaces wall-clock with *simulated* time: every operation the evaluated
systems perform (a reflective field lookup, a memcpy, a disk write, a network
transfer) charges a cost, in simulated seconds, to a per-node
:class:`SimClock` under one of the five categories of the paper's Figure 3
breakdown.  All constants live in :mod:`repro.simtime.costmodel` so the
calibration is auditable in one place.
"""

from repro.simtime.clock import Category, SimClock
from repro.simtime.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.simtime.breakdown import Breakdown

__all__ = [
    "Category",
    "SimClock",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Breakdown",
]
