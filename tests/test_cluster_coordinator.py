"""Coordinator protocol tests (LocalCoordinator: in-thread, no spawns).

Covers the membership/channel-assignment contract of §14: registration
generations, heartbeat liveness, typed errors that keep the connection,
the reserved channel id, and the coordinator-restart drill where a
heartbeating worker re-registers against the fresh incarnation.
"""

import time

import pytest

from repro.cluster import (
    RESERVED_CHANNEL_ID,
    ClusterProtocolError,
    CoordinatorClient,
    CoordinatorSpec,
    LocalCoordinator,
    PeerGoneError,
    WorkerMembership,
)


def _wait(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while True:
        if predicate():
            return
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(interval)


@pytest.fixture
def coordinator():
    spec = CoordinatorSpec(name="t-coordinator",
                           heartbeat_interval=0.05, miss_limit=2)
    with LocalCoordinator(spec) as coord:
        yield coord


@pytest.fixture
def client(coordinator):
    with CoordinatorClient(coordinator.host, coordinator.port) as c:
        yield c


class TestRegistration:
    def test_register_assigns_monotonic_generations(self, client):
        g1 = client.call("register", name="w0", port=1)["generation"]
        g2 = client.call("register", name="w1", port=2)["generation"]
        assert 0 < g1 < g2

    def test_reregistration_bumps_generation(self, client):
        first = client.call("register", name="w0", port=1)
        again = client.call("register", name="w0", port=1)
        assert not first["reregistered"]
        assert again["reregistered"]
        assert again["generation"] > first["generation"]

    def test_register_reports_heartbeat_interval(self, client):
        result = client.call("register", name="w0", port=1)
        assert result["heartbeat_interval"] == pytest.approx(0.05)

    def test_lookup_unknown_vs_dead(self, client):
        assert client.call("lookup", name="ghost")["found"] is False
        gen = client.call("register", name="w0", port=1)["generation"]
        client.call("report_dead", name="w0", generation=gen)
        record = client.call("lookup", name="w0")
        # A vanished peer answers "dead", never "unknown": senders must be
        # able to tell a casualty from a name that never existed.
        assert record["found"] is True
        assert record["alive"] is False


class TestHeartbeats:
    def test_wrong_generation_is_unknown(self, client):
        gen = client.call("register", name="w0", port=1)["generation"]
        assert client.call("heartbeat", name="w0",
                           generation=gen)["known"] is True
        assert client.call("heartbeat", name="w0",
                           generation=gen + 1)["known"] is False

    def test_heartbeat_revives_declared_dead_worker(self, client):
        gen = client.call("register", name="w0", port=1)["generation"]
        client.call("report_dead", name="w0", generation=gen)
        assert client.call("lookup", name="w0")["alive"] is False
        beat = client.call("heartbeat", name="w0", generation=gen)
        assert beat["known"] and beat["alive"]
        assert client.call("lookup", name="w0")["alive"] is True

    def test_silence_marks_dead(self, client):
        client.call("register", name="w0", port=1)
        # interval 0.05 x miss_limit 2: silence beyond ~0.1s is death.
        _wait(lambda: client.call("lookup", name="w0")["alive"] is False)
        stats = client.call("stats")
        assert stats["deaths_detected"] >= 1

    def test_stale_death_report_ignored(self, client):
        client.call("register", name="w0", port=1)
        fresh = client.call("register", name="w0", port=1)["generation"]
        stale = client.call("report_dead", name="w0", generation=fresh - 1)
        assert stale["marked"] is False
        assert client.call("lookup", name="w0")["alive"] is True


class TestChannelAssignment:
    def test_ids_unique_and_never_reserved(self, client):
        client.call("register", name="w0", port=1)
        ids = []
        for _ in range(3):
            ids.extend(client.call("alloc_channels", sender="driver",
                                   receiver="w0", count=4)["channel_ids"])
        assert len(set(ids)) == len(ids) == 12
        assert RESERVED_CHANNEL_ID == 0
        assert RESERVED_CHANNEL_ID not in ids

    def test_alloc_for_unregistered_receiver_is_peer_gone(self, client):
        with pytest.raises(PeerGoneError) as excinfo:
            client.call("alloc_channels", sender="driver", receiver="ghost")
        assert excinfo.value.peer == "ghost"

    def test_alloc_for_dead_receiver_is_peer_gone(self, client):
        gen = client.call("register", name="w0", port=1)["generation"]
        client.call("report_dead", name="w0", generation=gen)
        with pytest.raises(PeerGoneError):
            client.call("alloc_channels", sender="driver", receiver="w0")


class TestTypedErrors:
    def test_unknown_op_is_protocol_error_and_keeps_connection(self, client):
        with pytest.raises(ClusterProtocolError):
            client.call("no-such-op")
        # Unlike workers, the coordinator answers typed errors without
        # hanging up: the same connection serves the next call.
        assert client.call("ping")["op"] == "ping"

    def test_register_without_name_is_protocol_error(self, client):
        with pytest.raises(ClusterProtocolError):
            client.call("register")
        assert client.call("ping")["op"] == "ping"


class TestCoordinatorRestart:
    def test_worker_reregisters_against_fresh_coordinator(self):
        spec = CoordinatorSpec(name="t-coordinator",
                               heartbeat_interval=0.05, miss_limit=2)
        first = LocalCoordinator(spec)
        membership = WorkerMembership(
            "w0", "127.0.0.1", 12345, first.host, first.port)
        try:
            membership.start()
            first_generation = membership.generation
            assert first_generation > 0

            # The coordinator dies and a fresh (empty) one takes over the
            # same port: the worker's next heartbeat is "unknown", which
            # must trigger a re-register rather than an error.
            port = first.port
            first.stop()
            replacement = LocalCoordinator(
                CoordinatorSpec(name="t-coordinator-2", port=port,
                                heartbeat_interval=0.05, miss_limit=2))
            try:
                with CoordinatorClient(replacement.host,
                                       replacement.port) as probe:
                    _wait(lambda: probe.call("lookup",
                                             name="w0").get("alive") is True,
                          timeout=10.0)
                assert membership.reregistrations >= 1
            finally:
                replacement.stop()
        finally:
            membership.stop()


class TestHeartbeatJitter:
    def test_next_wait_spreads_within_twenty_percent(self):
        """N workers spawned in one burst must not beat the coordinator
        in lockstep: every heartbeat period is the coordinator-dictated
        interval ±20%, and the samples genuinely spread."""
        import random

        membership = WorkerMembership(
            "jitter-w", "127.0.0.1", 1, "127.0.0.1", 2)
        membership.heartbeat_interval = 1.0
        membership._rng = random.Random(1234)
        waits = [membership.next_wait() for _ in range(500)]
        assert all(0.8 <= w <= 1.2 for w in waits)
        assert max(waits) - min(waits) > 0.2  # not a constant cadence

    def test_jitter_tracks_coordinator_interval(self):
        """The spread scales with the interval the coordinator dictated
        at registration, not a hard-coded default."""
        import random

        membership = WorkerMembership(
            "jitter-w2", "127.0.0.1", 1, "127.0.0.1", 2)
        membership.heartbeat_interval = 0.05
        membership._rng = random.Random(99)
        waits = [membership.next_wait() for _ in range(200)]
        assert all(0.04 <= w <= 0.06 for w in waits)
