"""Tests for the multi-stream parallel send (paper §4.2, transport edition).

In-process tests cover the baddr crossover mechanics (two streams with
distinct thread_ids reaching one shared subgraph, each getting its own
clone through the per-stream shared table) and the 5-byte relative-address
ceiling; one spawned-worker test proves N concurrent socket streams land
the same object graphs as a serial send, kernels on or off.
"""

import pytest

from repro.core.runtime import attach_skyway
from repro.core.sender import (
    _REL_BITS,
    baddr_relative,
    baddr_sid,
    baddr_thread,
    compose_baddr,
)
from repro.jvm.jvm import JVM
from repro.transport.errors import TransportError
from repro.transport.parallel import ParallelGraphSender, shard_roots

from tests.conftest import make_list


# ---------------------------------------------------------------------------
# root sharding
# ---------------------------------------------------------------------------

class TestShardRoots:
    def test_round_robin_deal(self):
        assert shard_roots([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]

    def test_more_streams_than_roots(self):
        assert shard_roots([1], 3) == [[1], [], []]

    def test_zero_streams_rejected(self):
        with pytest.raises(ValueError):
            shard_roots([1], 0)


# ---------------------------------------------------------------------------
# baddr crossover between two in-process streams
# ---------------------------------------------------------------------------

class TestTwoStreamCrossover:
    @pytest.fixture
    def setup(self, classpath):
        src = JVM("ms-src", classpath=classpath)
        dst = JVM("ms-dst", classpath=classpath)
        attach_skyway(src, [dst])
        return src, dst

    def test_shared_subgraph_cloned_once_per_stream(self, setup):
        """Roots on two streams share a chain: stream 2 sees stream 1's
        baddrs (foreign thread, same sID), routes every shared node through
        its hash table, and ships its own complete copy."""
        src, _ = setup
        shared = make_list(src, range(20))
        r1 = src.new_instance("ListNode")
        src.set_field(r1, "payload", 101)
        src.set_field(r1, "next", shared)
        r2 = src.new_instance("ListNode")
        src.set_field(r2, "payload", 202)
        src.set_field(r2, "next", shared)

        src.skyway.shuffle_start()
        s1 = src.skyway.new_sender("a", thread_id=1)
        s1.write_object(r1)
        s2 = src.skyway.new_sender("b", thread_id=2)
        s2.write_object(r2)

        # Both streams carry root + all 20 shared nodes: one clone each.
        assert s1.objects_sent == 21
        assert s2.objects_sent == 21
        # Stream 1 owns every baddr; stream 2 fell back for the 20 shared
        # nodes (its own root was unclaimed and stamped normally).
        assert len(s1._shared_table) == 0
        assert len(s2._shared_table) == 20

    def test_foreign_baddr_not_mistaken_for_backref(self, setup):
        """A root already claimed by stream 1 still serializes fully on
        stream 2 — the thread field of the baddr word keeps the streams'
        backward references apart."""
        src, _ = setup
        head = make_list(src, [7, 8, 9])
        src.skyway.shuffle_start()
        s1 = src.skyway.new_sender("a", thread_id=1)
        s1.write_object(head)
        word = src.heap.read_baddr(head)
        assert baddr_thread(word) == 1 and baddr_sid(word) == src.skyway.sid
        s2 = src.skyway.new_sender("b", thread_id=2)
        s2.write_object(head)
        assert s2.objects_sent == 3
        # Second visit on stream 2 is now a shared-table hit, not a clone.
        again = s2.write_object(head)
        assert again == s2._shared_table[head]
        assert s2.objects_sent == 3


# ---------------------------------------------------------------------------
# compose_baddr: the 5-byte relative-address ceiling
# ---------------------------------------------------------------------------

class TestComposeBaddrOverflow:
    def test_roundtrip_across_the_range(self):
        # Probe the whole 40-bit range including both edges: every field
        # must survive composition unscathed.
        for rel in (0, 1, 0xFF, 0x10000, (1 << 39), (1 << _REL_BITS) - 1):
            for thread in (0, 1, 0xFF):
                for sid in (1, 0x7FFF, 0xFFFF):
                    word = compose_baddr(sid, thread, rel)
                    assert baddr_sid(word) == sid
                    assert baddr_thread(word) == thread
                    assert baddr_relative(word) == rel

    def test_five_byte_overflow_rejected(self):
        for excess in (1 << _REL_BITS, (1 << _REL_BITS) + 8, 1 << 63):
            with pytest.raises(ValueError, match="5 bytes"):
                compose_baddr(1, 1, excess)


# ---------------------------------------------------------------------------
# parallel send over real sockets
# ---------------------------------------------------------------------------

class TestParallelGraphSender:
    def test_clients_must_share_a_runtime(self, classpath):
        from repro.transport.client import WorkerClient

        a = JVM("pa", classpath=classpath)
        b = JVM("pb", classpath=classpath)
        attach_skyway(a, [])
        attach_skyway(b, [])
        with pytest.raises(TransportError, match="one driver runtime"):
            ParallelGraphSender([
                WorkerClient(a.skyway, "127.0.0.1", 1),
                WorkerClient(b.skyway, "127.0.0.1", 1),
            ])
        with pytest.raises(ValueError):
            ParallelGraphSender([])

    def test_parallel_matches_serial_and_interpreted(self, spawned_worker,
                                                     transport_driver):
        """Three streams to one worker: per-stream digests must be stable
        across kernel/interpreted senders, and the shared chain is cloned
        once per stream (roots + 3 x chain = total objects)."""
        from repro.transport.client import WorkerClient

        runtime = transport_driver
        jvm = runtime.jvm
        shared = make_list(jvm, range(50))
        pins = [jvm.pin(shared)]
        roots = []
        for i in range(9):
            node = jvm.new_instance("ListNode")
            jvm.set_field(node, "payload", 1000 + i)
            jvm.set_field(node, "next", shared)
            pin = jvm.pin(node)
            pins.append(pin)
            roots.append(pin.address)

        clients = [
            WorkerClient(runtime, spawned_worker.host,
                         spawned_worker.port).connect()
            for _ in range(3)
        ]
        try:
            fan = ParallelGraphSender(clients)
            kernel_report = fan.send(roots)
            runtime.use_kernels = False
            interp_report = fan.send(roots)
            runtime.use_kernels = True
        finally:
            for client in clients:
                client.close()

        for report in (kernel_report, interp_report):
            # 9 roots + each of 3 streams clones the 50-node chain once.
            assert report.total_objects == 9 + 3 * 50
            assert [s.thread_id for s in report.streams] == [0, 1, 2]
            assert [s.roots for s in report.streams] == [3, 3, 3]
        assert kernel_report.digests == interp_report.digests
        assert len(set(kernel_report.digests)) == 3  # distinct root shards
