#!/usr/bin/env python
"""Delta transfer: ship an iterative algorithm's state as epochs.

Builds a heap-resident vertex graph on the Spark driver, distributes it to
the workers through the one send front door — ``sc.send(graph)`` — and
runs incremental PageRank.  Nobody picks a transfer mode here: the policy
plane plans each worker's epoch from live signals.  The first push goes
FULL (no receiver state), each ~2%-mutation superstep ships DELTA (only
what the write barrier saw change), and when the last step mutates every
vertex the adaptive policy reverts to a plain full send on its own.

Run:  python examples/delta_pagerank.py
"""

from repro.apps.incremental import (
    IncrementalPageRank,
    build_vertex_graph,
    install_incremental_classes,
    read_ranks,
)
from repro.core.adapter import SkywaySerializer
from repro.core.runtime import attach_skyway
from repro.datasets import GRAPH_PROFILES, generate_graph
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.spark.context import SparkContext
from repro.types.corelib import standard_classpath


def main() -> None:
    # 1. A Skyway cluster whose class path knows the vertex schema.
    classpath = install_incremental_classes(standard_classpath())
    cluster = Cluster(lambda name: JVM(name, classpath=classpath),
                      worker_count=2)
    attach_skyway(cluster.driver.jvm,
                  [w.jvm for w in cluster.workers], cluster=cluster)
    sc = SparkContext(cluster, SkywaySerializer())

    # 2. The algorithm state lives on the driver heap: one DeltaVertex per
    #    vertex, mutated in place through the typed field API.
    driver = cluster.driver.jvm
    edges = generate_graph(GRAPH_PROFILES["LJ"], scale=0.15)
    graph = build_vertex_graph(driver, edges)
    pagerank = IncrementalPageRank(driver, graph)

    # 3. One front door, no mode flags: the engine plans every epoch.
    broadcast = sc.send(graph)
    report = broadcast.push()
    full_bytes = report.wire_bytes
    print(f"epoch 1 bootstrap : {report.wire_bytes:>7} bytes "
          f"({'+'.join(sorted(set(report.modes.values())))})")

    for superstep in range(1, 6):
        written = pagerank.step(active_fraction=0.02)
        report = broadcast.push()
        print(f"epoch {report.epoch} superstep : {report.wire_bytes:>7} bytes "
              f"({'+'.join(sorted(set(report.modes.values())))}, "
              f"{written} vertices written)")

    # 4. Saturate the mutation rate: the policy falls back on its own.
    pagerank.step(active_fraction=1.0)
    report = broadcast.push()
    print(f"epoch {report.epoch} saturated : {report.wire_bytes:>7} bytes "
          f"({'+'.join(sorted(set(report.modes.values())))} — "
          f"automatic fallback)")
    assert set(report.modes.values()) == {"full"}

    # 5. Every worker holds the driver's exact rank vector, at the same
    #    local address across all delta epochs (patch-in-place).
    expected = read_ranks(driver, graph)
    for worker in cluster.workers:
        local = broadcast.value_on(worker)
        assert read_ranks(worker.jvm, local) == expected
    print(f"rank vectors identical on {len(cluster.workers)} workers: True")

    stats = next(iter(broadcast.channel_stats().values()))
    saved = 1 - stats.bytes_total / (full_bytes / 2 * len(broadcast.pushes))
    print(f"wire bytes vs full-every-epoch: {stats.bytes_total} vs "
          f"{full_bytes // 2 * len(broadcast.pushes)} per worker "
          f"({saved:.0%} saved)")
    broadcast.close()


if __name__ == "__main__":
    main()
