"""Span-based tracing with a disabled-mode no-op fast path.

One :class:`Tracer` per process; spans nest through a per-thread context
stack, so ``send.traverse`` opened inside ``exchange.send`` parents under
it without the instrumentation sites knowing about each other.  Every span
carries two timelines:

* **wall clock** — monotonic (``time.perf_counter``) anchored to the epoch
  wall clock once at tracer construction, so timestamps from different
  processes land on one comparable axis and never run backwards;
* **simulated clock** — when the instrumentation site passes its node's
  :class:`~repro.simtime.clock.SimClock`, the span records the clock's
  total at entry/exit; the difference is the cost model's opinion of the
  same region, which is how the obs report ties measured spans back to the
  paper-style breakdown.

Cross-process stitching: the driver ships ``(trace_id, parent span id)``
in a TRACE wire frame; the worker enables its own tracer, adopts that
parent for the connection thread, serves the op, then drains the op's
spans into the RESULT payload together with its "now".  The driver grafts
them back with :meth:`Tracer.graft`: timestamps are rebased by the
driver-minus-worker clock offset and clamped into the parent span's
interval, so the stitched trace always nests even when the two wall
clocks disagree by more than the op took.

When no tracer is enabled, :func:`span` costs one module-global load, one
``None`` check, and returns a shared no-op context manager — the contract
that keeps the ``core/kernels.py`` hot loop within measurement noise.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import recorder as _recorder_mod


@dataclasses.dataclass
class Span:
    """One named region on one thread of one process."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    process: str
    thread: int
    #: Wall microseconds (monotonic, epoch-anchored); ``end_us`` is None
    #: while the span is open.
    start_us: float
    end_us: Optional[float] = None
    #: Simulated-clock microseconds (the node's SimClock total) at
    #: entry/exit, when the site passed a clock; None otherwise.
    sim_start_us: Optional[float] = None
    sim_end_us: Optional[float] = None
    attrs: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end_us is not None

    @property
    def duration_us(self) -> float:
        return 0.0 if self.end_us is None else self.end_us - self.start_us

    @property
    def sim_duration_us(self) -> float:
        if self.sim_start_us is None or self.sim_end_us is None:
            return 0.0
        return self.sim_end_us - self.sim_start_us

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes mid-span (works on the no-op span too)."""
        self.attrs.update(attrs)
        return self

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "process": self.process,
            "thread": self.thread,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "sim_start_us": self.sim_start_us,
            "sim_end_us": self.sim_end_us,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            name=str(data["name"]),
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),
            process=str(data.get("process", "?")),
            thread=int(data.get("thread", 0)),
            start_us=float(data["start_us"]),
            end_us=(None if data.get("end_us") is None
                    else float(data["end_us"])),
            sim_start_us=(None if data.get("sim_start_us") is None
                          else float(data["sim_start_us"])),
            sim_end_us=(None if data.get("sim_end_us") is None
                        else float(data["sim_end_us"])),
            attrs=dict(data.get("attrs", {})),
        )


class _SpanContext:
    """Context manager wrapping start/finish on one tracer."""

    __slots__ = ("_tracer", "_name", "_clock", "_parent", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, clock, parent, attrs):
        self._tracer = tracer
        self._name = name
        self._clock = clock
        self._parent = parent
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer.start(
            self._name, clock=self._clock, parent=self._parent, **self._attrs
        )
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and self._span is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer.finish(self._span)
        return False


class Tracer:
    """The per-process span collector."""

    def __init__(self, process: str = "driver",
                 trace_id: Optional[str] = None) -> None:
        self.process = process
        self.trace_id = trace_id if trace_id else self._new_trace_id()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._local = threading.local()
        self._ids = itertools.count(1)
        # Span ids must not collide across processes (worker spans graft
        # into the driver's list), so prefix with pid + object identity.
        self._id_prefix = f"{os.getpid() & 0xFFFF:04x}{id(self) & 0xFFFF:04x}"
        # Monotonic clock anchored to wall time once: increments can never
        # run backwards, yet timestamps from two processes share an axis.
        self._base_us = time.time() * 1e6 - time.perf_counter() * 1e6

    @staticmethod
    def _new_trace_id() -> str:
        return f"{time.time_ns() & 0xFFFFFFFFFFFF:012x}{os.getpid() & 0xFFFF:04x}"

    # -- clock -------------------------------------------------------------

    def now_us(self) -> float:
        return self._base_us + time.perf_counter() * 1e6

    # -- per-thread context ------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def adopt_remote(self, parent_id: Optional[str]) -> None:
        """Parent this thread's next root spans under a span from another
        process (the worker side of TRACE-frame propagation)."""
        self._local.remote_parent = parent_id or None

    def clear_remote(self) -> None:
        self._local.remote_parent = None

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, clock=None, parent: Optional[str] = None,
             **attrs: Any) -> _SpanContext:
        return _SpanContext(self, name, clock, parent, attrs)

    def start(self, name: str, clock=None, parent: Optional[str] = None,
              **attrs: Any) -> Span:
        """Open a span (explicit form, for regions that span methods)."""
        stack = self._stack()
        if parent is None:
            if stack:
                parent = stack[-1].span_id
            else:
                parent = getattr(self._local, "remote_parent", None)
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=f"{self._id_prefix}{next(self._ids):08x}",
            parent_id=parent,
            process=self.process,
            thread=threading.get_ident(),
            start_us=self.now_us(),
            attrs=dict(attrs),
        )
        if clock is not None:
            span.sim_start_us = clock.total() * 1e6
        span._clock = clock  # transient; not serialized
        stack.append(span)
        with self._lock:
            self._spans.append(span)
        return span

    def finish(self, span: Optional[Span]) -> Optional[Span]:
        if span is None or span.end_us is not None:
            return span
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # out-of-order close: drop it anyway
            stack.remove(span)
        span.end_us = self.now_us()
        clock = getattr(span, "_clock", None)
        if clock is not None:
            span.sim_end_us = clock.total() * 1e6
        # Flight-recorder tap: with no recorder enabled this is one global
        # load and one None check — the ring only sees spans when both a
        # tracer *and* a recorder are on.
        rec = _recorder_mod._recorder
        if rec is not None and rec.span_tap:
            rec.record_span(span)
        return span

    # -- reading / draining ------------------------------------------------

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def open_spans(self) -> List[Span]:
        return [s for s in self.spans() if not s.closed]

    def mark(self) -> int:
        """A position in the span list; :meth:`drain` collects everything
        this thread recorded after it."""
        with self._lock:
            return len(self._spans)

    def drain(self, mark: int) -> List[Span]:
        """Remove and return this thread's spans recorded since ``mark``
        (the worker uses this to ship one op's spans in its RESULT)."""
        tid = threading.get_ident()
        with self._lock:
            head = self._spans[:mark]
            tail = self._spans[mark:]
            mine = [s for s in tail if s.thread == tid]
            self._spans = head + [s for s in tail if s.thread != tid]
        return mine

    # -- cross-process stitching -------------------------------------------

    def export_payload(self, spans: List[Span]) -> Dict[str, Any]:
        """The JSON-safe shape a worker ships back in its RESULT frame."""
        return {
            "process": self.process,
            "now_us": self.now_us(),
            "spans": [s.as_dict() for s in spans],
        }

    def graft(self, payload: Dict[str, Any],
              parent: Optional[Span] = None) -> List[Span]:
        """Adopt spans exported by another process.

        Timestamps are rebased by (my now − their now-at-export), then
        clamped into ``parent``'s interval — the two wall clocks need not
        agree for the stitched trace to nest.
        """
        local_now = self.now_us()
        remote_now = float(payload.get("now_us", 0.0) or 0.0)
        offset = (local_now - remote_now) if remote_now else 0.0
        spans: List[Span] = []
        for raw in payload.get("spans", ()):
            span = Span.from_dict(raw)
            span.start_us += offset
            if span.end_us is not None:
                span.end_us += offset
            if span.sim_start_us is not None and span.sim_end_us is None:
                span.sim_end_us = span.sim_start_us
            spans.append(span)
        if parent is not None:
            lo, hi = parent.start_us, local_now
            for span in spans:
                span.start_us = min(max(span.start_us, lo), hi)
                end = span.end_us if span.end_us is not None else hi
                span.end_us = min(max(end, span.start_us), hi)
        with self._lock:
            self._spans.extend(spans)
        return spans


# ---------------------------------------------------------------------------
# module-level fast path
# ---------------------------------------------------------------------------

class _NoopSpan:
    """Shared do-nothing span/context for disabled mode."""

    __slots__ = ()
    noop = True
    attrs: Dict[str, Any] = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()

_state_lock = threading.Lock()
_tracer: Optional[Tracer] = None


def enabled() -> bool:
    return _tracer is not None


def get_tracer() -> Optional[Tracer]:
    return _tracer


def enable(process: str = "driver",
           trace_id: Optional[str] = None) -> Tracer:
    """Turn tracing on (idempotent).  A worker passing the driver's
    ``trace_id`` re-points an already-enabled tracer at that trace."""
    global _tracer
    with _state_lock:
        if _tracer is None:
            _tracer = Tracer(process=process, trace_id=trace_id)
        elif trace_id and _tracer.trace_id != trace_id:
            _tracer.trace_id = trace_id
        return _tracer


def disable() -> Optional[Tracer]:
    """Turn tracing off, returning the detached tracer for inspection."""
    global _tracer
    with _state_lock:
        tracer, _tracer = _tracer, None
        return tracer


def span(name: str, clock=None, parent: Optional[str] = None, **attrs: Any):
    """THE instrumentation entry point.  Disabled: one global load, one
    None check, a shared no-op context manager."""
    tracer = _tracer
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, clock=clock, parent=parent, **attrs)


def start_span(name: str, clock=None, parent: Optional[str] = None,
               **attrs: Any) -> Optional[Span]:
    """Explicit open, for regions spanning methods; None when disabled."""
    tracer = _tracer
    if tracer is None:
        return None
    return tracer.start(name, clock=clock, parent=parent, **attrs)


def end_span(span_obj: Optional[Span]) -> None:
    tracer = _tracer
    if tracer is None or span_obj is None:
        return
    tracer.finish(span_obj)


def current_context() -> Tuple[str, str]:
    """``(trace_id, current span id)`` for wire propagation; empty strings
    when disabled (the TRACE frame is then simply not sent)."""
    tracer = _tracer
    if tracer is None:
        return ("", "")
    current = tracer.current_span()
    return (tracer.trace_id, current.span_id if current is not None else "")


def absorb_remote(result: Any, parent: Optional[Span] = None) -> None:
    """Pop a ``"trace"`` payload off a worker RESULT dict (if any) and
    graft its spans under ``parent``.  Safe to call unconditionally."""
    tracer = _tracer
    if tracer is None or not isinstance(result, dict):
        return
    payload = result.pop("trace", None)
    if payload:
        tracer.graft(payload, parent=parent)
