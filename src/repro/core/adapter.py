"""SkywaySerializer: the drop-in serializer adapter (paper §5.2).

"To use Skyway, we created a Skyway serializer that wraps the existing
Input/OutputStream with our SkywayInput/OutputStream objects... The entire
SkywaySerializer class contains less than 100 lines of code."  This module
is exactly that shim: it implements the generic
:class:`~repro.serial.base.Serializer` interface over the exchange layer,
so the Spark and Flink engines (and JSBS) can swap serializers by
configuration, unchanged.

The adapter holds no protocol logic of its own: writers are plain Skyway
output streams or (in delta mode) unbound
:class:`~repro.exchange.loopback.LoopbackGraphChannel` endpoints, and
*every* reader comes from :func:`repro.exchange.dispatch.open_reader`,
which routes epoch frames and plain streams by the leading byte — the
sniffing that used to live here.

Both JVMs involved must have a :class:`~repro.core.runtime.SkywayRuntime`
attached (sharing one driver registry) — the same cluster-wide setup the
paper requires.

Exchange-layer imports happen lazily inside methods: this module loads
during ``repro.core`` package init, before :mod:`repro.delta` /
:mod:`repro.exchange` (which import back into ``repro.core``) can.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, TYPE_CHECKING

from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.jvm.jvm import JVM
from repro.serial.base import (
    DeserializationStream,
    SerializationError,
    SerializationStream,
    Serializer,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.delta.policy import DeltaPolicy
    from repro.exchange.channel import GraphChannel


def _runtime_of(jvm: JVM):
    runtime = jvm.skyway
    if runtime is None:
        raise SerializationError(
            f"JVM {jvm.name} has no Skyway runtime attached; call "
            f"repro.core.attach_skyway(driver, workers) first"
        )
    return runtime


class SkywaySerializer(Serializer):
    """The drop-in serializer; ``compress_headers`` enables the §5.2
    future-work compact transfer encoding for every stream.

    ``delta=True`` opts into epoch-based incremental transfer: streams for
    the same ``(jvm, channel)`` pair share one unbound exchange channel,
    so the first close ships the full graph and later closes ship only
    what mutated since.  Channels hold a card table on the sender's write
    barrier until released — callers that retire a channel key should call
    :meth:`release_channel` (or :meth:`close` for all of them).
    """

    name = "skyway"

    def __init__(self, thread_id: int = 0,
                 compress_headers: bool = False,
                 delta: bool = False,
                 delta_policy: Optional["DeltaPolicy"] = None) -> None:
        if delta:
            from repro.policy.shims import warn_deprecated

            warn_deprecated("SkywaySerializer(delta=True)")
        self.thread_id = thread_id
        self.compress_headers = compress_headers
        self.delta = delta
        self.delta_policy = delta_policy
        #: Per-(sender JVM, channel key) exchange channels, created lazily.
        self._channels: Dict[Tuple[str, str], "GraphChannel"] = {}

    def new_stream(self, jvm: JVM, thread_id: int = None,
                   channel: str = "default"):
        tid = self.thread_id if thread_id is None else thread_id
        if self.delta:
            return ChannelSerializationStream(self.channel_for(jvm, channel))
        return SkywaySerializationStream(jvm, tid, self.compress_headers)

    def new_reader(self, jvm: JVM, data: bytes) -> DeserializationStream:
        from repro.exchange.dispatch import open_reader

        return open_reader(_runtime_of(jvm), data)

    def channel_for(self, jvm: JVM, channel: str = "default") -> "GraphChannel":
        """The (lazily created) exchange channel for one ``(jvm, key)``
        pair — an unbound loopback endpoint: it frames epochs, the engine
        moves the bytes."""
        from repro.exchange.capabilities import ChannelCapabilities
        from repro.exchange.loopback import LoopbackGraphChannel

        runtime = _runtime_of(jvm)
        key = (jvm.name, channel)
        existing = self._channels.get(key)
        if existing is None:
            existing = LoopbackGraphChannel(
                runtime,
                destination=channel,
                requested=ChannelCapabilities(kernel=True, delta=True),
                policy=self.delta_policy,
            )
            self._channels[key] = existing
        return existing

    def release_channel(self, jvm: JVM, channel: str = "default") -> None:
        """Close and drop one channel (detaching its card table from the
        sender's write barrier); a later use of the key starts fresh."""
        existing = self._channels.pop((jvm.name, channel), None)
        if existing is not None:
            existing.close()

    def close(self) -> None:
        """Release every channel this serializer created."""
        for existing in self._channels.values():
            existing.close()
        self._channels.clear()


class SkywaySerializationStream(SerializationStream):
    def __init__(self, jvm: JVM, thread_id: int,
                 compress_headers: bool = False) -> None:
        runtime = _runtime_of(jvm)
        # Each serializer stream is its own destination/phase: real shuffle
        # code calls shuffle_start per phase; the generic Serializer API has
        # no phase notion, so a fresh phase per stream keeps baddr state
        # from aliasing across streams.
        runtime.shuffle_start()
        self._stream = SkywayObjectOutputStream(
            runtime,
            destination=f"stream-{id(self)}",
            thread_id=thread_id,
            compress_headers=compress_headers,
        )

    def write_object(self, root: int) -> None:
        self._stream.write_object(root)

    def close(self) -> bytes:
        return self._stream.close()

    @property
    def bytes_written(self) -> int:
        return self._stream.bytes_written


class ChannelSerializationStream(SerializationStream):
    """Delta-mode writer: roots accumulate, close() ships one epoch
    through the exchange channel and returns its framed bytes."""

    def __init__(self, channel: "GraphChannel") -> None:
        self._channel = channel
        self._roots: list = []
        self._frame_bytes = 0
        self._closed = False

    def write_object(self, root: int) -> None:
        if self._closed:
            raise SerializationError("delta stream is closed")
        self._roots.append(root)

    def close(self) -> bytes:
        if self._closed:
            raise SerializationError("delta stream already closed")
        self._closed = True
        receipt = self._channel.send(self._roots)
        self._frame_bytes = len(receipt.frame)
        return receipt.frame

    @property
    def bytes_written(self) -> int:
        return self._frame_bytes
