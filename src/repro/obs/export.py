"""Exporters: Chrome ``trace_event`` JSON, terminal reports, snapshot diff.

The Chrome format is the ``chrome://tracing`` / Perfetto "JSON Array
Format": a ``traceEvents`` list of ``"X"`` (complete) events with ``ts``
and ``dur`` in microseconds, plus ``M`` metadata events naming processes
and threads.  Span attributes ride in ``args`` so the tooltip in Perfetto
shows epoch / mode / wire bytes per span.

``render_phase_report`` is the paper-style table: spans rolled up by name
(count, wall time, simulated time) followed by the per-channel exchange
breakdown straight out of the registry sources — the wire-byte and
simulated-clock columns are read from ``ExchangeMetrics.as_dict()``
itself, which is how the report agrees with the ledger to the byte/µs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional


def _span_dict(span: Any) -> Dict[str, Any]:
    if isinstance(span, Mapping):
        return dict(span)
    return span.as_dict()


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def to_chrome_trace(spans: Iterable[Any],
                    trace_id: Optional[str] = None) -> Dict[str, Any]:
    """Build a ``chrome://tracing`` document from spans (Span or dict)."""
    dicts = [_span_dict(s) for s in spans]
    if trace_id is None and dicts:
        trace_id = dicts[0].get("trace_id")

    # Stable small pids/tids: one pid per process name, one tid per
    # (process, thread ident) pair, in first-appearance order.
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    events: List[Dict[str, Any]] = []
    for d in dicts:
        proc = str(d.get("process", "?"))
        if proc not in pids:
            pid = pids[proc] = len(pids) + 1
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": proc},
            })
        pid = pids[proc]
        tkey = (proc, d.get("thread", 0))
        if tkey not in tids:
            tid = tids[tkey] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": f"{proc}/t{tid}"},
            })
        tid = tids[tkey]

        start = float(d["start_us"])
        end = d.get("end_us")
        closed = end is not None
        dur = max(0.0, float(end) - start) if closed else 0.0
        args: Dict[str, Any] = {
            "span_id": d.get("span_id"),
            "parent_id": d.get("parent_id"),
            "trace_id": d.get("trace_id"),
        }
        if d.get("sim_start_us") is not None and d.get("sim_end_us") is not None:
            args["sim_us"] = float(d["sim_end_us"]) - float(d["sim_start_us"])
        attrs = d.get("attrs") or {}
        if attrs:
            args.update(attrs)
        if not closed:
            args["unclosed"] = True
        events.append({
            "ph": "X", "name": str(d.get("name", "?")),
            "pid": pid, "tid": tid,
            "ts": start, "dur": dur,
            "cat": "repro", "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id or ""},
    }


def validate_chrome_trace(doc: Any) -> List[str]:
    """Return a list of problems (empty == valid).

    Checks structure, span-id uniqueness, parent resolution and
    containment, single-trace-id, and that every span is closed — the
    invariants the CI smoke job gates on.
    """
    problems: List[str] = []
    if not isinstance(doc, Mapping) or "traceEvents" not in doc:
        return ["document is not a mapping with a traceEvents list"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]

    spans: Dict[str, Dict[str, Any]] = {}
    trace_ids = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, Mapping):
            problems.append(f"event #{i} is not a mapping")
            continue
        ph = ev.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            problems.append(f"event #{i} has unexpected phase {ph!r}")
            continue
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in ev:
                problems.append(f"event #{i} ({ev.get('name')}) missing {key!r}")
        args = ev.get("args") or {}
        sid = args.get("span_id")
        if not sid:
            problems.append(f"event #{i} ({ev.get('name')}) has no span_id")
            continue
        if sid in spans:
            problems.append(f"duplicate span_id {sid}")
        spans[sid] = dict(ev)
        if args.get("trace_id"):
            trace_ids.add(args["trace_id"])
        if args.get("unclosed"):
            problems.append(f"span {sid} ({ev.get('name')}) never closed")
        if float(ev.get("dur", 0.0)) < 0:
            problems.append(f"span {sid} has negative duration")

    if len(trace_ids) > 1:
        problems.append(f"multiple trace ids: {sorted(trace_ids)}")
    if not spans:
        problems.append("trace contains no spans")

    tolerance_us = 2.0  # clock reads on either side of start/finish
    for sid, ev in spans.items():
        parent_id = (ev.get("args") or {}).get("parent_id")
        if not parent_id:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            problems.append(
                f"span {sid} ({ev.get('name')}) parent {parent_id} not in trace"
            )
            continue
        p_start = float(parent["ts"])
        p_end = p_start + float(parent["dur"])
        c_start = float(ev["ts"])
        c_end = c_start + float(ev["dur"])
        if c_start < p_start - tolerance_us or c_end > p_end + tolerance_us:
            problems.append(
                f"span {sid} ({ev.get('name')}) "
                f"[{c_start:.0f},{c_end:.0f}] escapes parent "
                f"{parent_id} ({parent.get('name')}) [{p_start:.0f},{p_end:.0f}]"
            )
    return problems


# ---------------------------------------------------------------------------
# terminal reports
# ---------------------------------------------------------------------------

def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:10.3f} s"
    if us >= 1e3:
        return f"{us / 1e3:10.3f} ms"
    return f"{us:10.1f} µs"


def _rollup(spans: Iterable[Any]) -> Dict[str, Dict[str, float]]:
    agg: Dict[str, Dict[str, float]] = {}
    for s in spans:
        d = _span_dict(s)
        row = agg.setdefault(str(d.get("name", "?")),
                             {"count": 0, "wall_us": 0.0, "sim_us": 0.0})
        row["count"] += 1
        if d.get("end_us") is not None:
            row["wall_us"] += float(d["end_us"]) - float(d["start_us"])
        if d.get("sim_start_us") is not None and d.get("sim_end_us") is not None:
            row["sim_us"] += float(d["sim_end_us"]) - float(d["sim_start_us"])
    return agg


def render_phase_report(snapshot: Mapping[str, Any]) -> str:
    """The paper-style phase breakdown from one obs snapshot."""
    lines: List[str] = []
    trace = snapshot.get("trace") or {}
    spans = trace.get("spans") or []
    lines.append("== Phase breakdown (spans) ==")
    if spans:
        lines.append(f"trace {trace.get('trace_id', '?')}  "
                     f"spans={len(spans)} open={trace.get('open_spans', 0)}")
        agg = _rollup(spans)
        lines.append(f"{'phase':<24} {'count':>6} {'wall':>13} {'sim':>13}")
        for name in sorted(agg, key=lambda n: -agg[n]["wall_us"]):
            row = agg[name]
            lines.append(
                f"{name:<24} {int(row['count']):>6} "
                f"{_fmt_us(row['wall_us']):>13} {_fmt_us(row['sim_us']):>13}"
            )
    else:
        lines.append("(no trace in snapshot — run with tracing enabled)")

    metrics = snapshot.get("metrics") or {}
    sources = metrics.get("sources") or {}
    exchange_rows = []
    for name in sorted(sources):
        src = sources[name]
        if not isinstance(src, Mapping):
            continue
        breakdown = src.get("breakdown")
        if isinstance(breakdown, Mapping):
            exchange_rows.append((name, src, breakdown))
    if exchange_rows:
        lines.append("")
        lines.append("== Exchange channels (ledger-exact) ==")
        for name, src, breakdown in exchange_rows:
            wire = src.get("wire_bytes", breakdown.get("bytes_written", 0))
            lines.append(f"{name}: sends={src.get('sends', '?')} "
                         f"wire_bytes={wire}")
            for cat, seconds in sorted(breakdown.items()):
                if cat == "bytes_written":
                    continue
                lines.append(f"    {cat:<20} {_fmt_us(float(seconds) * 1e6)}")

    counters = metrics.get("counters") or {}
    if counters:
        lines.append("")
        lines.append("== Counters ==")
        for key in sorted(counters):
            lines.append(f"{key:<44} {counters[key]:>14g}")
    hists = metrics.get("histograms") or {}
    if hists:
        lines.append("")
        lines.append("== Histograms ==")
        for key in sorted(hists):
            h = hists[key]
            lines.append(
                f"{key:<44} n={int(h['count'])} sum={h['sum']:g} "
                f"min={h['min']:g} max={h['max']:g}"
            )
    other = [n for n in sorted(sources) if not (
        isinstance(sources[n], Mapping) and "breakdown" in sources[n])]
    if other:
        lines.append("")
        lines.append("== Other sources ==")
        for name in other:
            lines.append(f"{name}: {json.dumps(sources[name], default=str)[:120]}")
    return "\n".join(lines)


def _flatten(prefix: str, value: Any, out: Dict[str, float]) -> None:
    if isinstance(value, Mapping):
        for k in value:
            _flatten(f"{prefix}.{k}" if prefix else str(k), value[k], out)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        out[prefix] = float(value)


def render_diff(old: Mapping[str, Any], new: Mapping[str, Any]) -> str:
    """Numeric deltas between two obs snapshots (``repro.obs diff``)."""
    a: Dict[str, float] = {}
    b: Dict[str, float] = {}
    _flatten("", old.get("metrics", old), a)
    _flatten("", new.get("metrics", new), b)
    lines = ["== Snapshot diff (new - old) =="]
    changed = 0
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va == vb:
            continue
        changed += 1
        if va is None:
            lines.append(f"+ {key:<52} {vb:g}")
        elif vb is None:
            lines.append(f"- {key:<52} (was {va:g})")
        else:
            lines.append(f"  {key:<52} {va:g} -> {vb:g} ({vb - va:+g})")
    if changed == 0:
        lines.append("(no numeric differences)")
    return "\n".join(lines)
