"""repro.exchange — one layer for every send mode over every substrate.

Before this package, three ad-hoc forks decided how an object graph moved:
the serializer sniffed delta frames, ``SparkContext`` forked on
``transport=``, and the socket worker only placed full streams.  Now the
stack is::

    applications (PageRank, TPC-H, benchmarks)
        └── engines (repro.spark, repro.flink)
              └── exchange (GraphChannel + Exchange)     <- this package
                    ├── loopback substrate (in-process, simulated wire)
                    └── socket substrate (worker processes, real TCP)
                          └── managed heaps (repro.core / repro.heap)

A :class:`GraphChannel` negotiates capabilities (kernel fast path, delta
epochs, compact headers, parallel streams) against its substrate's offer
and ships epochs; an :class:`Exchange` hands out channels, blob transfers
and parallel sends for one cluster; :class:`ExchangeMetrics` merges the
simulated breakdown, the delta ledger, and the measured transport counters
into one JSON-exportable snapshot per channel.
"""

from repro.exchange.capabilities import (
    ChannelCapabilities,
    DEFAULT_REQUEST,
    LOOPBACK_OFFER,
    SOCKET_OFFER,
)
from repro.exchange.channel import GraphChannel, SendReceipt
from repro.exchange.dispatch import open_reader, receive_epoch
from repro.exchange.errors import (
    DeltaStaleError,
    ExchangeConfigError,
    ExchangeError,
    ExchangeProtocolError,
)
from repro.exchange.loopback import LoopbackGraphChannel
from repro.exchange.metrics import ExchangeMetrics
from repro.exchange.service import Exchange
from repro.exchange.socket import SocketGraphChannel

__all__ = [
    "ChannelCapabilities",
    "DEFAULT_REQUEST",
    "DeltaStaleError",
    "Exchange",
    "ExchangeConfigError",
    "ExchangeError",
    "ExchangeMetrics",
    "ExchangeProtocolError",
    "GraphChannel",
    "LOOPBACK_OFFER",
    "LoopbackGraphChannel",
    "SOCKET_OFFER",
    "SendReceipt",
    "SocketGraphChannel",
    "open_reader",
    "receive_epoch",
]
