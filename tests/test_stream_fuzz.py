"""Corruption/truncation fuzzing of the framed Skyway stream (satellite of
the socket transport: whatever the wire delivers, the decoder must answer
with one typed SkywayStreamError or a fully-consistent graph — never a
bare struct.error/KeyError, never a silently partial graph).

Bit flips in primitive payload bytes are *allowed* to decode successfully
(they are application data; the transport layer's frame CRC is what
catches them in flight) — but then the graph must be complete: right root
count, trailer checks passed.
"""

import pytest

from repro.core.runtime import attach_skyway
from repro.core.streams import (
    IncrementalStreamDecoder,
    SkywayObjectInputStream,
    SkywayObjectOutputStream,
    SkywayStreamError,
)
from repro.exchange import ChannelCapabilities, LoopbackGraphChannel
from repro.exchange.dispatch import receive_epoch
from repro.exchange.errors import ExchangeProtocolError
from repro.delta.channel import DeltaStaleError
from repro.jvm.jvm import JVM

from tests.conftest import make_date, make_list, sample_classpath


def _framed_stream(compress_headers: bool):
    """A small two-root stream (Date graph + linked list) plus the sending
    runtime's registry, for building fresh receivers."""
    classpath = sample_classpath()
    src = JVM("fuzz-src", classpath=classpath)
    attach_skyway(src, [])
    out = SkywayObjectOutputStream(src.skyway, "peer",
                                   compress_headers=compress_headers)
    date = make_date(src, 2018, 3, 28)
    head = make_list(src, range(40))
    out.write_object(date)
    out.write_object(head)
    data = out.close()
    return src, data


def _fresh_receiver_runtime(src):
    # Tiny heaps: the fuzz loops build thousands of throwaway receivers
    # (one per mangled stream), and the graph is under 2KB.
    dst = JVM("fuzz-dst", classpath=sample_classpath(),
              young_bytes=32 * 1024, old_bytes=256 * 1024)
    from repro.core.runtime import SkywayRuntime
    return SkywayRuntime(dst, src.skyway.driver_registry, is_driver=False)


def _try_accept(src, data):
    """Feed a (possibly mangled) stream; returns root count on success.

    Any exception other than SkywayStreamError escapes and fails the test.
    """
    runtime = _fresh_receiver_runtime(src)
    stream = SkywayObjectInputStream(runtime)
    stream.accept(data)
    return stream.root_count


@pytest.mark.parametrize("compress_headers", [False, True],
                         ids=["raw", "compact"])
def test_truncation_at_every_boundary_is_typed(compress_headers):
    src, data = _framed_stream(compress_headers)
    # Every strict prefix must raise the one typed error.  Stride 1 over
    # the whole stream: cheap at this size and leaves no gap untested.
    for cut in range(len(data)):
        with pytest.raises(SkywayStreamError):
            _try_accept(src, data[:cut])


@pytest.mark.parametrize("compress_headers", [False, True],
                         ids=["raw", "compact"])
def test_bit_flips_never_leak_bare_errors(compress_headers):
    src, data = _framed_stream(compress_headers)
    flips_survived = 0
    for pos in range(len(data)):
        for bit in (0x01, 0x80):
            mangled = bytearray(data)
            mangled[pos] ^= bit
            try:
                roots = _try_accept(src, bytes(mangled))
            except SkywayStreamError:
                continue  # the typed verdict — exactly what we demand
            # Silent acceptance is only legal for a fully-parsed stream
            # (payload-byte damage); the structure must still be whole.
            assert roots == 2
            flips_survived += 1
    # Sanity: some payload flips must survive (primitive field bytes),
    # otherwise the harness isn't exercising the silent-acceptance arm.
    assert flips_survived > 0


def test_trailing_garbage_is_typed():
    src, data = _framed_stream(False)
    with pytest.raises(SkywayStreamError, match="trailing bytes"):
        _try_accept(src, data + b"\x00")
    with pytest.raises(SkywayStreamError, match="trailing bytes"):
        _try_accept(src, data + data)


def test_chunked_feeding_matches_single_shot():
    src, data = _framed_stream(False)
    whole = _fresh_receiver_runtime(src)
    whole_decoder = IncrementalStreamDecoder(whole)
    whole_decoder.feed(data)
    whole_roots = whole_decoder.finish()

    for step in (1, 3, 7, 64, 1024):
        runtime = _fresh_receiver_runtime(src)
        decoder = IncrementalStreamDecoder(runtime)
        for i in range(0, len(data), step):
            decoder.feed(data[i:i + step])
        assert decoder.complete
        roots = decoder.finish()
        assert len(roots) == len(whole_roots) == 2
        assert decoder.top_marks == whole_decoder.top_marks
        assert (decoder.receiver.buffer.logical_size
                == whole_decoder.receiver.buffer.logical_size)


def test_error_reports_byte_offset():
    src, data = _framed_stream(False)
    mangled = bytearray(data)
    mangled[0] = 0xEE  # impossible codec id, detected at offset 0
    with pytest.raises(SkywayStreamError, match="codec id"):
        _try_accept(src, bytes(mangled))


# ---------------------------------------------------------------------------
# epoch-frame fuzzing (the exchange layer's FULL/DELTA wire shapes)
# ---------------------------------------------------------------------------

#: The only exceptions an epoch receive may surface: protocol damage is
#: wrapped, and staleness is the epoch protocol's NACK (a bit flip landing
#: in the channel-id or epoch varint legitimately looks stale).
EPOCH_ERRORS = (ExchangeProtocolError, DeltaStaleError)


@pytest.fixture(scope="module")
def epoch_frames():
    """One FULL frame and the DELTA frame that follows it on the same
    channel (a PATCH, a NEW object, and a SAME-REF root), plus the sender
    for building receivers."""
    src = JVM("fuzz-epoch-src", classpath=sample_classpath())
    attach_skyway(src, [])
    channel = LoopbackGraphChannel(
        src.skyway, destination="fuzz-epoch",
        requested=ChannelCapabilities(kernel=True, delta=True),
        channel_id=7321,
    )
    date = make_date(src, 2018, 3, 28)
    head = make_list(src, range(30))
    full = channel.send([date, head])
    assert full.mode == "full"
    # One field patched, one fresh node spliced in: PATCH + NEW records.
    src.set_field(head, "payload", 777)
    node = src.new_instance("ListNode")
    src.set_field(node, "payload", 888)
    src.set_field(node, "next", src.get_field(head, "next"))
    src.set_field(head, "next", node)
    delta = channel.send([date, head])
    assert delta.mode == "delta"
    return src, full.frame, delta.frame


def _apply_epoch(src, data, prime=None):
    """Apply an epoch frame on a fresh receiver (optionally primed with an
    earlier frame to hold channel state); returns the root count."""
    runtime = _fresh_receiver_runtime(src)
    if prime is not None:
        receive_epoch(runtime, prime)
    return len(receive_epoch(runtime, data))


def test_epoch_frames_apply_cleanly(epoch_frames):
    src, full, delta = epoch_frames
    assert _apply_epoch(src, full) == 2
    assert _apply_epoch(src, delta, prime=full) == 2
    # A DELTA with no channel state is the NACK, not a decode error.
    with pytest.raises(DeltaStaleError):
        _apply_epoch(src, delta)


def test_full_frame_truncation_is_typed(epoch_frames):
    src, full, _ = epoch_frames
    for cut in range(len(full)):
        with pytest.raises(EPOCH_ERRORS):
            _apply_epoch(src, full[:cut])


def test_delta_frame_truncation_is_typed(epoch_frames):
    src, full, delta = epoch_frames
    for cut in range(len(delta)):
        with pytest.raises(EPOCH_ERRORS):
            _apply_epoch(src, delta[:cut], prime=full)


def test_full_frame_bit_flips_never_leak_bare_errors(epoch_frames):
    src, full, _ = epoch_frames
    flips_survived = 0
    for pos in range(len(full)):
        for bit in (0x01, 0x80):
            mangled = bytearray(full)
            mangled[pos] ^= bit
            try:
                roots = _apply_epoch(src, bytes(mangled))
            except EPOCH_ERRORS:
                continue
            assert roots == 2  # payload damage must still parse whole
            flips_survived += 1
    assert flips_survived > 0


def test_delta_frame_bit_flips_never_leak_bare_errors(epoch_frames):
    src, full, delta = epoch_frames
    flips_survived = 0
    for pos in range(len(delta)):
        for bit in (0x01, 0x80):
            mangled = bytearray(delta)
            mangled[pos] ^= bit
            try:
                roots = _apply_epoch(src, bytes(mangled), prime=full)
            except EPOCH_ERRORS:
                continue
            assert roots == 2
            flips_survived += 1
    assert flips_survived > 0
