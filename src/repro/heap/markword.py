"""Mark-word encoding: lock bits, identity hashcode, GC age, forwarding.

Follows the 64-bit HotSpot mark word that the paper's Figure 6 describes
("mark contains object locks, hash code of the object, and GC bits"):

.. code-block:: text

    bits  63..39   38..8          7..3      2       1..0
          unused   hash (31 bit)  age (5)   biased  lock

The Skyway sender *resets GC and lock bits while preserving the hashcode*
(paper §4.2 "Header Update") so that hash-based structures keep their layout
on the receiver.  During GC, a mark word whose lock bits are ``0b11`` holds
a forwarding pointer instead (HotSpot's "marked" state).
"""

from __future__ import annotations

MARK_WORD_BITS = 64

_LOCK_SHIFT = 0
_LOCK_BITS = 0b11
_BIASED_SHIFT = 2
_AGE_SHIFT = 3
_AGE_BITS = 0b11111
_HASH_SHIFT = 8
_HASH_BITS = (1 << 31) - 1

#: Lock-bit patterns (HotSpot values).
LOCK_UNLOCKED = 0b01
LOCK_THIN = 0b00
LOCK_INFLATED = 0b10
LOCK_MARKED = 0b11  # forwarding pointer installed during GC

#: Maximum tenuring age representable (5 bits).
MAX_AGE = _AGE_BITS

#: A fresh object's mark word: unlocked, no hash, age 0.
FRESH_MARK = LOCK_UNLOCKED


def get_lock_bits(mark: int) -> int:
    return (mark >> _LOCK_SHIFT) & _LOCK_BITS


def set_lock_bits(mark: int, bits: int) -> int:
    if bits & ~_LOCK_BITS:
        raise ValueError(f"lock bits out of range: {bits:#x}")
    return (mark & ~_LOCK_BITS) | bits


def get_hash(mark: int) -> int:
    """The cached identity hashcode, or 0 if never computed."""
    return (mark >> _HASH_SHIFT) & _HASH_BITS


def set_hash(mark: int, hashcode: int) -> int:
    if hashcode & ~_HASH_BITS:
        raise ValueError(f"hashcode exceeds 31 bits: {hashcode:#x}")
    return (mark & ~(_HASH_BITS << _HASH_SHIFT)) | (hashcode << _HASH_SHIFT)


def has_hash(mark: int) -> bool:
    return get_hash(mark) != 0


def get_age(mark: int) -> int:
    return (mark >> _AGE_SHIFT) & _AGE_BITS


def set_age(mark: int, age: int) -> int:
    if not 0 <= age <= MAX_AGE:
        raise ValueError(f"age out of range: {age}")
    return (mark & ~(_AGE_BITS << _AGE_SHIFT)) | (age << _AGE_SHIFT)


def is_biased(mark: int) -> bool:
    return bool((mark >> _BIASED_SHIFT) & 1)


def set_biased(mark: int, biased: bool) -> int:
    if biased:
        return mark | (1 << _BIASED_SHIFT)
    return mark & ~(1 << _BIASED_SHIFT)


def reset_for_transfer(mark: int) -> int:
    """Skyway's header update: clear GC bits (age) and lock/bias state while
    preserving the cached hashcode (paper §4.2)."""
    hashcode = get_hash(mark)
    return set_hash(FRESH_MARK, hashcode)


# -- forwarding (GC) -------------------------------------------------------


def make_forwarding(target_address: int) -> int:
    """Encode a forwarding pointer in a mark word (lock bits = 0b11).

    Addresses are 8-byte aligned so the low 2 bits are free for the marker.
    """
    if target_address & 0b111:
        raise ValueError(f"forwarding target not aligned: {target_address:#x}")
    return target_address | LOCK_MARKED


def is_forwarded(mark: int) -> bool:
    return get_lock_bits(mark) == LOCK_MARKED


def forwarding_target(mark: int) -> int:
    if not is_forwarded(mark):
        raise ValueError("mark word does not hold a forwarding pointer")
    return mark & ~0b111
