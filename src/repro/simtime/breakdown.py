"""Breakdown: an immutable summary of per-category simulated time.

Experiments report :class:`Breakdown` rows that mirror the paper's stacked
bars (computation / serialization / write I/O / deserialization / read I/O)
plus total bytes written/shuffled, so tables like Table 2 and Table 4 can be
computed with simple arithmetic over them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Mapping

from repro.simtime.clock import Category


@dataclasses.dataclass(frozen=True)
class Breakdown:
    """Per-category simulated seconds, plus byte counters.

    ``read_io`` includes network time, matching the paper ("The network cost
    is negligible and included in the read I/O").
    """

    computation: float = 0.0
    serialization: float = 0.0
    write_io: float = 0.0
    deserialization: float = 0.0
    read_io: float = 0.0
    network: float = 0.0
    bytes_written: int = 0
    local_bytes: int = 0
    remote_bytes: int = 0

    @classmethod
    def from_totals(
        cls,
        totals: Mapping[Category, float],
        bytes_written: int = 0,
        local_bytes: int = 0,
        remote_bytes: int = 0,
    ) -> "Breakdown":
        return cls(
            computation=totals.get(Category.COMPUTATION, 0.0),
            serialization=totals.get(Category.SERIALIZATION, 0.0),
            write_io=totals.get(Category.WRITE_IO, 0.0),
            deserialization=totals.get(Category.DESERIALIZATION, 0.0),
            read_io=totals.get(Category.READ_IO, 0.0)
            + totals.get(Category.NETWORK, 0.0),
            network=totals.get(Category.NETWORK, 0.0),
            bytes_written=bytes_written,
            local_bytes=local_bytes,
            remote_bytes=remote_bytes,
        )

    @property
    def total(self) -> float:
        """End-to-end simulated runtime (network already inside read_io)."""
        return (
            self.computation
            + self.serialization
            + self.write_io
            + self.deserialization
            + self.read_io
        )

    @property
    def sd_fraction(self) -> float:
        """Fraction of runtime spent inside S/D functions (paper: ~30%)."""
        if self.total == 0:
            return 0.0
        return (self.serialization + self.deserialization) / self.total

    def add(self, other: "Breakdown") -> "Breakdown":
        return Breakdown(
            computation=self.computation + other.computation,
            serialization=self.serialization + other.serialization,
            write_io=self.write_io + other.write_io,
            deserialization=self.deserialization + other.deserialization,
            read_io=self.read_io + other.read_io,
            network=self.network + other.network,
            bytes_written=self.bytes_written + other.bytes_written,
            local_bytes=self.local_bytes + other.local_bytes,
            remote_bytes=self.remote_bytes + other.remote_bytes,
        )

    @staticmethod
    def sum(items: Iterable["Breakdown"]) -> "Breakdown":
        acc = Breakdown()
        for item in items:
            acc = acc.add(item)
        return acc

    def normalized_to(self, baseline: "Breakdown") -> Dict[str, float]:
        """Ratios vs. a baseline run, in Table 2 / Table 4 column order."""

        def ratio(mine: float, theirs: float) -> float:
            if theirs == 0:
                return 0.0 if mine == 0 else float("inf")
            return mine / theirs

        return {
            "overall": ratio(self.total, baseline.total),
            "ser": ratio(self.serialization, baseline.serialization),
            "write": ratio(self.write_io, baseline.write_io),
            "des": ratio(self.deserialization, baseline.deserialization),
            "read": ratio(self.read_io, baseline.read_io),
            "size": ratio(float(self.bytes_written), float(baseline.bytes_written)),
        }

    def as_dict(self) -> Dict[str, float]:
        return {
            "computation": self.computation,
            "serialization": self.serialization,
            "write_io": self.write_io,
            "deserialization": self.deserialization,
            "read_io": self.read_io,
            "network": self.network,
            "total": self.total,
            "bytes_written": float(self.bytes_written),
            "local_bytes": float(self.local_bytes),
            "remote_bytes": float(self.remote_bytes),
        }
