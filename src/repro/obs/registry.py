"""One metrics registry the existing ledgers feed.

Counters, gauges and histograms carry labels (encoded into the series key
Prometheus-style: ``name{k=v,...}``); *sources* are the bridge to the
ledgers that already exist — a registered callable is evaluated at
:meth:`MetricsRegistry.snapshot` time, so ``ExchangeMetrics.as_dict()``,
``TransportMetrics.as_dict()``, ``EventLog.as_dicts()`` and GC stats all
land in one JSON document without being rewritten.

Sources must deregister when their owner closes (channels do this in
``GraphChannel.close()``, clients in ``WorkerClient.close()``) so no entry
outlives the object it reads — the lifecycle mirror of the serializer's
``release_channel`` fix.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Mapping


def series_key(name: str, labels: Mapping[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms plus snapshot sources."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, float]] = {}
        self._sources: Dict[str, Callable[[], Any]] = {}

    # -- series ------------------------------------------------------------

    def counter(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        key = series_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = series_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = {
                    "count": 0.0, "sum": 0.0,
                    "min": float("inf"), "max": float("-inf"),
                }
            hist["count"] += 1
            hist["sum"] += value
            hist["min"] = min(hist["min"], value)
            hist["max"] = max(hist["max"], value)

    # -- sources -----------------------------------------------------------

    def register_source(self, name: str, source: Callable[[], Any]) -> None:
        with self._lock:
            self._sources[name] = source

    def deregister_source(self, name: str) -> None:
        with self._lock:
            self._sources.pop(name, None)

    def source_names(self) -> List[str]:
        with self._lock:
            return sorted(self._sources)

    # -- lifecycle ---------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._sources.clear()

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Evaluate every source and copy every series.  A source that
        raises reports its error in place — one broken ledger must not
        take the snapshot down."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {k: dict(v) for k, v in self._histograms.items()}
            sources = list(self._sources.items())
        resolved: Dict[str, Any] = {}
        for name, fn in sources:
            try:
                resolved[name] = fn()
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                resolved[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "sources": resolved,
        }


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry every layer feeds."""
    return _REGISTRY
