"""Registry handshake over real sockets: two processes with different
class-registration histories must converge on one numbering after HELLO,
late class loads must re-HELLO automatically, and a tID the worker has
never heard of must surface as a typed error naming the ID."""

import pytest

from repro.apps.incremental import VERTEX_CLASS
from repro.core.type_registry import UnknownTypeIDError
from repro.transport import WorkerClient
from repro.transport.bootstrap import build_runtime
from repro.transport.errors import RemoteWorkerError
from repro.transport.testing import SAMPLE_FACTORY

from tests.conftest import make_date, make_list


def _connect(runtime, handle, **kwargs):
    return WorkerClient(
        runtime, handle.host, handle.port,
        node_name=runtime.jvm.name, **kwargs,
    ).connect()


def test_unknown_type_id_error_names_the_id():
    err = UnknownTypeIDError(42)
    assert err.tid == 42
    assert "tID 42" in str(err)


def test_digests_agree_across_drivers_with_different_load_orders(spawned_worker):
    """Two driver processes registering classes in opposite orders get
    conflicting local numberings; after each handshakes with the worker,
    identical graphs must still land identically (the acceptance check is
    the worker-side position-independent digest)."""
    a = build_runtime("driver-a", SAMPLE_FACTORY)
    list_a = make_list(a.jvm, range(10))       # ListNode registered first
    date_a = make_date(a.jvm, 2018, 3, 28)

    b = build_runtime("driver-b", SAMPLE_FACTORY)
    date_b = make_date(b.jvm, 2018, 3, 28)     # Date family registered first
    list_b = make_list(b.jvm, range(10))

    # The premise: local numberings genuinely conflict before any handshake.
    assert a.view.snapshot() != b.view.snapshot()

    with _connect(a, spawned_worker) as ca:
        result_a, _ = ca.send_graph([list_a, date_a])
    with _connect(b, spawned_worker) as cb:
        result_b, _ = cb.send_graph([list_b, date_b])

    assert result_a["roots"] == result_b["roots"] == 2
    assert result_a["objects"] == result_b["objects"]
    assert result_a["digest"] == result_b["digest"]


def test_worker_extras_teach_a_fresh_driver(spawned_worker):
    """Names the worker learned from one driver flow back, via HELLO_ACK
    extras, to a later driver that never loaded those classes."""
    teacher = build_runtime("teacher", SAMPLE_FACTORY)
    head = make_list(teacher.jvm, range(5))
    with _connect(teacher, spawned_worker) as client:
        client.send_graph([head])

    pupil = build_runtime("pupil", SAMPLE_FACTORY)
    assert "ListNode" not in pupil.view.snapshot()
    with _connect(pupil, spawned_worker) as client:
        assert "ListNode" in pupil.view.snapshot()
        # ...and the converged numbering works immediately on the wire.
        result, _ = client.send_graph([make_list(pupil.jvm, range(5))])
        assert result["roots"] == 1


def test_late_class_load_triggers_rehello(spawned_worker, transport_driver):
    """Classes loaded after connect() must be announced before the next
    stream; send_graph re-HELLOs on its own.  VertexI is on both class
    paths (the shared factory) but unloaded — and so unregistered — at
    connect time."""
    with _connect(transport_driver, spawned_worker) as client:
        before = client._synced_names
        assert VERTEX_CLASS not in before
        jvm = transport_driver.jvm
        pin = jvm.pin(jvm.new_instance(VERTEX_CLASS))
        try:
            result, _ = client.send_graph([pin.address])
        finally:
            jvm.unpin(pin)
        assert result["roots"] == 1
        assert VERTEX_CLASS in client._synced_names
        assert client._synced_names != before


def test_class_missing_from_worker_classpath_is_typed(
    spawned_worker, transport_driver
):
    """A class defined only on the driver: the re-HELLO teaches the worker
    its tID, but the worker's class path cannot produce a definition —
    that must surface as the typed remote stream error naming the class,
    not a hang or a silent partial graph."""
    with _connect(transport_driver, spawned_worker) as client:
        jvm = transport_driver.jvm
        jvm.classpath.define("DriverOnly", [("x", "I")])
        pin = jvm.pin(jvm.new_instance("DriverOnly"))
        try:
            with pytest.raises(RemoteWorkerError, match="DriverOnly"):
                client.send_graph([pin.address])
        finally:
            jvm.unpin(pin)


def test_desynced_tid_surfaces_as_typed_remote_error(
    spawned_worker, transport_driver
):
    """If the re-HELLO is sabotaged, the stream carries a tID the worker
    cannot resolve — that must come back as one typed error naming the
    ID, not a hang or a bare KeyError."""
    with _connect(transport_driver, spawned_worker) as client:
        jvm = transport_driver.jvm
        jvm.classpath.define("Unannounced", [("x", "I")])
        pin = jvm.pin(jvm.new_instance("Unannounced"))
        # Pretend the new snapshot was already synced so send_graph skips
        # the re-HELLO it would normally perform.
        client._synced_names = frozenset(transport_driver.view.snapshot())
        try:
            with pytest.raises(RemoteWorkerError, match="tID") as excinfo:
                client.send_graph([pin.address])
        finally:
            jvm.unpin(pin)
        # The remote decoder wraps the registry miss in its one typed
        # stream error; the original type and offending ID stay visible.
        assert "UnknownTypeIDError" in str(excinfo.value)
        assert "no class registered with tID" in excinfo.value.message
