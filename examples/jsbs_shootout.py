#!/usr/bin/env python
"""The JSBS serializer shootout (Figure 7) at laptop scale.

Every library in the catalog serializes media-content objects, broadcasts
them across a 5-node cluster, and deserializes on the receivers; results
print fastest-first with the paper's headline ratios.

Run:  python examples/jsbs_shootout.py [--quick]
"""

import sys

from repro.bench.report import format_figure7
from repro.jsbs.harness import run_jsbs
from repro.jsbs.libraries import LIBRARY_CATALOG


def main() -> None:
    quick = "--quick" in sys.argv
    specs = LIBRARY_CATALOG
    if quick:
        keep = {"skyway", "colfer", "protostuff", "kryo-manual", "kryo-opt",
                "avro-generic", "thrift", "java-built-in"}
        specs = [s for s in LIBRARY_CATALOG if s.name in keep]

    results = run_jsbs(specs, nodes=5, objects=10, rounds=2)
    print(format_figure7(results))

    by_name = {r.library: r for r in results}
    sky = by_name["skyway"]
    sky_sd = sky.serialization + sky.deserialization
    for name, paper in (("kryo-manual", "2.2x"), ("java-built-in", "67.3x")):
        r = by_name[name]
        ratio = (r.serialization + r.deserialization) / sky_sd
        print(f"{name}: {ratio:.1f}x slower than Skyway on S/D (paper: {paper})")


if __name__ == "__main__":
    main()
