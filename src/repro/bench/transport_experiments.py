"""T-SOCKET — the real-socket transport experiment (paper §4.2, measured).

Everything else in ``repro.bench`` reports *simulated* time; this
experiment moves real bytes between real processes and reports wall-clock.
One spawned worker, one driver, one vertex graph: each (mode, chunk size)
cell sends the same graph over loopback TCP, pipelined (traversal
overlapping socket I/O through the bounded chunk queue) versus
store-and-forward (traverse fully, then send) — the §4.2 claim as a
measurement rather than a model.

Loopback is effectively infinite bandwidth, which would hide the overlap
(both modes degenerate to traversal time), so the wire is paced to a
configurable Mb/s — the same role the testbed's 1000 Mb/s Ethernet plays
in the paper, scaled to this reproduction's traversal throughput.  An
unthrottled row is reported too, showing the traversal-bound regime.

The experiment also cross-checks the transport end to end: the worker's
position-independent digest of the received graph must equal an in-process
receive of the identical framed bytes (byte_identical below).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.apps.incremental import build_vertex_graph
from repro.core.runtime import SkywayRuntime
from repro.core.streams import SkywayObjectInputStream
from repro.jvm.jvm import JVM
from repro.transport import WorkerClient, WorkerHandle, WorkerSpec, graph_digest
from repro.transport.bootstrap import MB, build_runtime
from repro.transport.testing import (
    SAMPLE_FACTORY,
    ring_edges,
    sample_worker_classpath,
)

DEFAULT_VERTICES = 80_000
DEFAULT_WIRE_MBPS = 16.0
DEFAULT_CHUNK_SIZES = (64 * 1024, 256 * 1024)


def _reference_digest(driver: SkywayRuntime, data: bytes) -> str:
    """In-process receive of the same framed bytes, digest-normalized."""
    ref_jvm = JVM("transport-ref", classpath=sample_worker_classpath(),
                  old_bytes=512 * MB)
    ref_runtime = SkywayRuntime(ref_jvm, driver.driver_registry,
                                is_driver=False)
    stream = SkywayObjectInputStream(ref_runtime)
    stream.accept(data)
    return graph_digest(ref_jvm, stream.receiver)


def run_transport_experiment(
    vertices: int = DEFAULT_VERTICES,
    chunk_sizes: Sequence[int] = DEFAULT_CHUNK_SIZES,
    wire_mbps: Optional[float] = DEFAULT_WIRE_MBPS,
    repeats: int = 2,
) -> Dict[str, object]:
    """Returns a JSON-serializable result dict (see module docstring)."""
    handle = WorkerHandle.spawn(WorkerSpec(
        name="bench-worker", classpath_factory=SAMPLE_FACTORY,
        old_bytes=512 * MB, read_timeout=300.0,
    ))
    driver = build_runtime("bench-driver", SAMPLE_FACTORY, old_bytes=512 * MB)
    client = WorkerClient(driver, handle.host, handle.port,
                          read_timeout=300.0).connect()
    try:
        edges = ring_edges(vertices, vertices)
        root = driver.jvm.pin(build_vertex_graph(driver.jvm, edges))

        # Correctness cross-check first (also warms class loading on both
        # sides so the timed runs measure steady state).
        result, data = client.send_graph([root.address])
        byte_identical = result["digest"] == _reference_digest(driver, data)

        runs: List[Dict[str, object]] = []
        for chunk_bytes in chunk_sizes:
            for mode, store in (("pipelined", False),
                                ("store_and_forward", True)):
                best = float("inf")
                best_stalls = 0
                best_stall_s = 0.0
                for _ in range(repeats):
                    stalls0 = client.metrics.queue_full_stalls
                    stall_s0 = client.metrics.stall_seconds
                    started = time.perf_counter()
                    client.send_graph(
                        [root.address], chunk_bytes=chunk_bytes,
                        store_and_forward=store, throttle_mbps=wire_mbps,
                    )
                    elapsed = time.perf_counter() - started
                    if elapsed < best:
                        best = elapsed
                        best_stalls = (client.metrics.queue_full_stalls
                                       - stalls0)
                        best_stall_s = (client.metrics.stall_seconds
                                        - stall_s0)
                runs.append({
                    "mode": mode,
                    "chunk_bytes": chunk_bytes,
                    "wire_mbps": wire_mbps,
                    "seconds": round(best, 4),
                    "queue_full_stalls": best_stalls,
                    "stall_seconds": round(best_stall_s, 4),
                })

        # The traversal-bound regime: no pacing, loopback at full speed.
        unthrottled = {}
        for mode, store in (("pipelined", False), ("store_and_forward", True)):
            started = time.perf_counter()
            client.send_graph([root.address],
                              store_and_forward=store, throttle_mbps=None)
            unthrottled[mode] = round(time.perf_counter() - started, 4)

        by_mode: Dict[str, float] = {}
        for run in runs:
            mode = str(run["mode"])
            by_mode[mode] = min(by_mode.get(mode, float("inf")),
                                float(run["seconds"]))
        return {
            "graph": {
                "vertices": vertices,
                "edges": len(edges),
                "objects": result["objects"],
                "stream_bytes": len(data),
                "stream_mb": round(len(data) / 1e6, 2),
            },
            "byte_identical": byte_identical,
            "runs": runs,
            "unthrottled_seconds": unthrottled,
            "best": {
                "pipelined_seconds": by_mode.get("pipelined"),
                "store_and_forward_seconds": by_mode.get("store_and_forward"),
                "overlap_speedup": round(
                    by_mode["store_and_forward"] / by_mode["pipelined"], 3)
                    if by_mode.get("pipelined") else None,
            },
            "driver_transport": client.metrics.as_dict(),
        }
    finally:
        try:
            client.shutdown_worker()
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass
        client.close()
        handle.stop()


def format_transport_report(result: Dict[str, object]) -> str:
    graph = result["graph"]
    lines = [
        "T-SOCKET — pipelined vs store-and-forward over loopback TCP",
        f"  graph: {graph['vertices']} vertices, {graph['objects']} objects, "
        f"{graph['stream_mb']} MB framed stream",
        f"  byte-identical to in-process receive: {result['byte_identical']}",
        "",
        f"  {'mode':<18} {'chunk':>8} {'wire':>9} {'seconds':>8} "
        f"{'stalls':>7} {'stall_s':>8}",
    ]
    for run in result["runs"]:
        wire = f"{run['wire_mbps']}Mbps" if run["wire_mbps"] else "open"
        lines.append(
            f"  {run['mode']:<18} {run['chunk_bytes']:>8} {wire:>9} "
            f"{run['seconds']:>8.3f} {run['queue_full_stalls']:>7} "
            f"{run['stall_seconds']:>8.3f}"
        )
    un = result["unthrottled_seconds"]
    best = result["best"]
    lines += [
        "",
        f"  unthrottled: pipelined {un['pipelined']:.3f}s, "
        f"store-and-forward {un['store_and_forward']:.3f}s "
        "(traversal-bound: overlap has nothing to hide)",
        f"  best paced: pipelined {best['pipelined_seconds']:.3f}s vs "
        f"store-and-forward {best['store_and_forward_seconds']:.3f}s "
        f"-> {best['overlap_speedup']:.2f}x from overlap (paper §4.2)",
    ]
    return "\n".join(lines)
