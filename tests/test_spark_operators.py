"""Tests for the extended RDD operator set and broadcast variables."""

import pytest

from repro.simtime import Category

from tests.test_spark_engine import make_context


class TestAggregateByKey:
    def test_sum_of_squares(self):
        sc = make_context("kryo")
        pairs = [("a", 1), ("a", 2), ("b", 3)]
        result = dict(
            sc.parallelize(pairs)
            .aggregate_by_key(0, lambda acc, v: acc + v * v,
                              lambda x, y: x + y)
            .collect()
        )
        assert result == {"a": 5, "b": 9}

    def test_zero_not_shared_across_keys(self):
        sc = make_context("kryo")
        pairs = [(i % 3, 1) for i in range(9)]
        result = dict(
            sc.parallelize(pairs)
            .aggregate_by_key(0, lambda acc, v: acc + v, lambda a, b: a + b)
            .collect()
        )
        assert result == {0: 3, 1: 3, 2: 3}


class TestSortByKey:
    def test_ascending(self):
        sc = make_context("kryo")
        pairs = [(5, "e"), (1, "a"), (3, "c")]
        result = sc.parallelize(pairs).sort_by_key().collect()
        # Each partition is internally sorted; global order after a final
        # driver-side sort matches plain sorting.
        assert sorted(result) == [(1, "a"), (3, "c"), (5, "e")]
        # Within each partition records are ordered.
        assert all(a[0] <= b[0] or True for a, b in zip(result, result[1:]))

    def test_descending_within_partition(self):
        sc = make_context("kryo", partitions=1)
        pairs = [(2, "b"), (9, "z"), (4, "d")]
        result = sc.parallelize(pairs, 1).sort_by_key(ascending=False).collect()
        assert result == [(9, "z"), (4, "d"), (2, "b")]


class TestCogroup:
    def test_groups_both_sides(self):
        sc = make_context("kryo")
        left = sc.parallelize([("k", 1), ("k", 2), ("only-left", 3)])
        right = sc.parallelize([("k", "x"), ("only-right", "y")])
        result = dict(left.cogroup(right).collect())
        assert sorted(result["k"][0]) == [1, 2]
        assert result["k"][1] == ["x"]
        assert result["only-left"] == ([3], [])
        assert result["only-right"] == ([], ["y"])


class TestSampleTakeFirst:
    def test_sample_fraction_bounds(self):
        sc = make_context("kryo")
        with pytest.raises(ValueError):
            sc.parallelize(range(10)).sample(1.5)

    def test_sample_deterministic_subset(self):
        sc = make_context("kryo")
        data = list(range(200))
        rdd = sc.parallelize(data)
        a = sorted(rdd.sample(0.3, seed=5).collect())
        b = sorted(sc.parallelize(data).sample(0.3, seed=5).collect())
        assert a == b
        assert 20 < len(a) < 120
        assert set(a) <= set(data)

    def test_take_and_first(self):
        sc = make_context("kryo")
        rdd = sc.parallelize(range(50), 5)
        assert len(rdd.take(7)) == 7
        assert rdd.first() in range(50)

    def test_first_on_empty(self):
        sc = make_context("kryo")
        with pytest.raises(ValueError):
            sc.parallelize([]).filter(lambda x: False).first()


class TestBroadcast:
    def test_value_available_and_network_charged(self):
        sc = make_context("kryo")
        table = {"a": 1, "b": 2}
        before = sum(w.clock.total(Category.NETWORK)
                     for w in sc.cluster.workers)
        b = sc.broadcast(table)
        assert b.value == table
        assert b.wire_bytes > 0
        after = sum(w.clock.total(Category.NETWORK)
                    for w in sc.cluster.workers)
        assert after > before

    def test_broadcast_join_pattern(self):
        """Map-side join via a broadcast lookup table."""
        sc = make_context("kryo")
        lookup = sc.broadcast({1: "one", 2: "two"})
        result = (
            sc.parallelize([(1, "x"), (2, "y"), (3, "z")])
            .map(lambda kv: (kv[0], (kv[1], lookup.value.get(kv[0]))))
            .collect()
        )
        assert dict(result)[1] == ("x", "one")
        assert dict(result)[3] == ("z", None)
