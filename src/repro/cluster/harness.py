"""Spawn-a-whole-fleet harness for tests and the B-FLEET benchmark.

One :class:`FleetHarness` owns a coordinator process plus N strict-mode
worker processes, waits for every worker's registration to land, and
offers the two fault injections the failure matrix needs:

* :meth:`kill_worker` — SIGKILL, no goodbye: the coordinator finds out
  through missed heartbeats (or a sender's ``report_dead``);
* :meth:`restart_worker` — a fresh process under the same name; its
  re-registration bumps the generation, which is what forces every
  existing channel to it through the FULL-resync path.

Everything is reaped in :meth:`stop` (idempotent, context-manager
friendly), so no coordinator or worker outlives a test.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.cluster.coordinator import CoordinatorHandle, CoordinatorSpec
from repro.cluster.errors import ClusterConfigError
from repro.transport.bootstrap import MB
from repro.transport.client import WorkerHandle
from repro.transport.errors import WorkerStartupError
from repro.transport.testing import SAMPLE_FACTORY
from repro.transport.worker import WorkerSpec


class FleetHarness:
    """A live fleet: one coordinator, N registered workers."""

    def __init__(
        self,
        size: int,
        classpath_factory: str = SAMPLE_FACTORY,
        name: str = "fleet",
        heartbeat_interval: float = 0.2,
        miss_limit: int = 3,
        read_timeout: float = 30.0,
        young_bytes: int = 4 * MB,
        old_bytes: int = 64 * MB,
        startup_timeout: float = 30.0,
        serve_mode: str = "async",
        telemetry: bool = True,
        straggler_factor: float = 3.0,
        straggler_min_samples: int = 3,
    ) -> None:
        if size < 1:
            raise ClusterConfigError("a fleet needs at least one worker")
        self.size = size
        self.name = name
        self._classpath_factory = classpath_factory
        self._read_timeout = read_timeout
        self._young_bytes = young_bytes
        self._old_bytes = old_bytes
        self._startup_timeout = startup_timeout
        self._serve_mode = serve_mode
        self._telemetry = telemetry
        self._stopped = False
        self.coordinator = CoordinatorHandle.spawn(
            CoordinatorSpec(
                name=f"{name}-coordinator",
                heartbeat_interval=heartbeat_interval,
                miss_limit=miss_limit,
                straggler_factor=straggler_factor,
                straggler_min_samples=straggler_min_samples,
            ),
            startup_timeout=startup_timeout,
        )
        self.workers: Dict[str, WorkerHandle] = {}
        try:
            for index in range(size):
                worker = f"{name}-w{index}"
                self.workers[worker] = WorkerHandle.spawn(
                    self._worker_spec(worker),
                    startup_timeout=startup_timeout,
                )
            self.wait_all_alive()
        except Exception:
            self.stop()
            raise

    def _worker_spec(self, worker: str) -> WorkerSpec:
        return WorkerSpec(
            name=worker,
            classpath_factory=self._classpath_factory,
            read_timeout=self._read_timeout,
            young_bytes=self._young_bytes,
            old_bytes=self._old_bytes,
            serve_mode=self._serve_mode,
            coordinator_host=self.coordinator.host,
            coordinator_port=self.coordinator.port,
            strict_channels=True,
            telemetry=self._telemetry,
        )

    @property
    def worker_names(self) -> List[str]:
        return sorted(self.workers)

    # -- registration convergence -----------------------------------------

    def wait_all_alive(self, timeout: Optional[float] = None,
                       names: Optional[List[str]] = None) -> None:
        """Block until every named worker is registered and alive at the
        coordinator (registration is in the worker's startup path, so this
        converges in one heartbeat round)."""
        from repro.cluster.membership import CoordinatorClient

        wanted = set(names if names is not None else self.workers)
        deadline = time.monotonic() + (
            timeout if timeout is not None else self._startup_timeout
        )
        with CoordinatorClient(self.coordinator.host,
                               self.coordinator.port) as client:
            while True:
                records = client.call("workers")["workers"]
                alive = {r["name"] for r in records if r["alive"]}
                if wanted <= alive:
                    return
                if time.monotonic() > deadline:
                    raise WorkerStartupError(
                        f"workers never registered: "
                        f"{sorted(wanted - alive)}"
                    )
                time.sleep(0.05)

    def generation_of(self, worker: str) -> int:
        from repro.cluster.membership import CoordinatorClient

        with CoordinatorClient(self.coordinator.host,
                               self.coordinator.port) as client:
            record = client.call("lookup", name=worker)
        return int(record["generation"]) if record.get("found") else 0

    # -- fault injection ---------------------------------------------------

    def kill_worker(self, worker: str) -> None:
        """SIGKILL — the worker vanishes without a goodbye; the
        coordinator learns from silence (or a sender's report)."""
        self.workers[worker].kill()

    def restart_worker(self, worker: str,
                       timeout: Optional[float] = None) -> WorkerHandle:
        """A fresh process under the same name.  Returns once the new
        incarnation's registration (a *newer* generation) has landed."""
        old_generation = self.generation_of(worker)
        handle = self.workers[worker]
        if handle.process.is_alive():
            handle.kill()
        new_handle = WorkerHandle.spawn(
            self._worker_spec(worker),
            startup_timeout=self._startup_timeout,
        )
        self.workers[worker] = new_handle
        deadline = time.monotonic() + (
            timeout if timeout is not None else self._startup_timeout
        )
        while self.generation_of(worker) <= old_generation:
            if time.monotonic() > deadline:
                raise WorkerStartupError(
                    f"restarted worker {worker!r} never re-registered"
                )
            time.sleep(0.05)
        return new_handle

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        """Reap everything; safe to call twice (and from fixtures)."""
        if self._stopped:
            return
        self._stopped = True
        for handle in self.workers.values():
            try:
                handle.stop()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        try:
            self.coordinator.stop()
        except Exception:  # noqa: BLE001 - teardown best-effort
            pass

    def __enter__(self) -> "FleetHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
