"""The JVM process abstraction: heap + loader + clock + GC in one object.

A :class:`JVM` is one managed runtime in the simulated cluster.  Engines and
serializers interact with object graphs through it: allocation with
GC-on-demand, identity hashcodes cached in mark words, reflective access
(:mod:`repro.jvm.reflection`) for the baseline serializers, and the
Python↔heap marshalling bridge (:mod:`repro.jvm.marshal`).
"""

from repro.jvm.jvm import JVM
from repro.jvm.reflection import Reflection
from repro.jvm.marshal import to_heap, from_heap, HeapValueError

__all__ = ["JVM", "Reflection", "to_heap", "from_heap", "HeapValueError"]
