"""RDDs: lazily evaluated, partitioned collections with lineage.

Narrow transformations (map/filter/flatMap/mapValues/mapPartitions) pipeline
within a stage on the partition's executor node.  Wide transformations
(reduceByKey/groupByKey/join/distinct/partitionBy) introduce a shuffle
dependency: computing a reduce partition forces every parent partition's map
output first (a stage boundary).  ``cache()`` keeps computed partitions on
their executor, as iterative workloads (PageRank) rely on.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.simtime import Category
from repro.spark.partitioner import HashPartitioner

if TYPE_CHECKING:  # pragma: no cover
    from repro.spark.context import SparkContext

Record = Any
Pair = Tuple[Any, Any]


class RDD:
    """Base class: lineage node with ``num_partitions`` partitions."""

    def __init__(self, sc: "SparkContext", num_partitions: int) -> None:
        self.sc = sc
        self.id = sc.next_rdd_id()
        self.num_partitions = num_partitions
        self._cached = False
        self._cache_store: Dict[int, List[Record]] = {}

    # -- to be provided by subclasses ----------------------------------------

    def compute(self, partition: int) -> List[Record]:
        raise NotImplementedError

    # -- evaluation -----------------------------------------------------------

    def partition_values(self, partition: int) -> List[Record]:
        if self._cached and partition in self._cache_store:
            self.sc.events.emit("cache_hit", rdd=self.id, partition=partition)
            return self._cache_store[partition]
        values = self.compute(partition)
        self.sc.tasks_run += 1
        self.sc.events.emit(
            "task", rdd=self.id, partition=partition,
            node=self.sc.node_for_partition(partition).name,
            records=len(values), op=type(self).__name__,
        )
        if self._cached:
            self._cache_store[partition] = values
        return values

    def describe(self) -> str:
        """A lineage description (Spark's toDebugString): this RDD and its
        ancestry, one per line, marking shuffle boundaries and caching."""
        lines: List[str] = []
        self._describe_into(lines, depth=0)
        return "\n".join(lines)

    def _describe_into(self, lines: List[str], depth: int) -> None:
        label = getattr(self, "name", None) or getattr(self, "op_name", None) \
            or type(self).__name__
        cached = " [cached]" if self._cached else ""
        lines.append(f"{'  ' * depth}({self.num_partitions}) "
                     f"#{self.id} {label}{cached}")
        for parent in self._parents():
            parent._describe_into(lines, depth + 1)

    def _parents(self) -> List["RDD"]:
        out: List[RDD] = []
        for attr in ("parent", "left", "right",
                     "left_shuffled", "right_shuffled"):
            node = getattr(self, attr, None)
            if node is not None:
                out.append(node)
        return out

    def cache(self) -> "RDD":
        self._cached = True
        return self

    def unpersist(self) -> "RDD":
        self._cached = False
        self._cache_store.clear()
        return self

    # -- narrow transformations --------------------------------------------------

    def map(self, fn: Callable[[Record], Record], name: str = "map") -> "RDD":
        return MappedRDD(self, lambda it: [fn(x) for x in it], name, ops_per_record=1)

    def flat_map(self, fn: Callable[[Record], Iterable[Record]],
                 name: str = "flatMap") -> "RDD":
        def apply(items: List[Record]) -> List[Record]:
            out: List[Record] = []
            for item in items:
                out.extend(fn(item))
            return out
        return MappedRDD(self, apply, name, ops_per_record=1)

    def filter(self, fn: Callable[[Record], bool], name: str = "filter") -> "RDD":
        return MappedRDD(self, lambda it: [x for x in it if fn(x)], name, 1)

    def map_values(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda kv: (kv[0], fn(kv[1])), name="mapValues")

    def map_partitions(
        self, fn: Callable[[List[Record]], List[Record]], name: str = "mapPartitions"
    ) -> "RDD":
        return MappedRDD(self, fn, name, ops_per_record=1)

    def key_by(self, fn: Callable[[Record], Any]) -> "RDD":
        return self.map(lambda x: (fn(x), x), name="keyBy")

    # -- wide transformations ---------------------------------------------------

    def reduce_by_key(
        self, fn: Callable[[Any, Any], Any], num_partitions: Optional[int] = None
    ) -> "RDD":
        return ShuffledRDD(self, num_partitions, combiner=fn, op_name="reduceByKey")

    def group_by_key(self, num_partitions: Optional[int] = None) -> "RDD":
        return ShuffledRDD(self, num_partitions, combiner=None, op_name="groupByKey")

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD":
        keyed = self.map(lambda x: (x, None), name="distinct-key")
        reduced = keyed.reduce_by_key(lambda a, b: a, num_partitions)
        return reduced.map(lambda kv: kv[0], name="distinct-unkey")

    def join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        return JoinedRDD(self, other, num_partitions)

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self, other)

    def partition_by(self, num_partitions: int) -> "RDD":
        return ShuffledRDD(self, num_partitions, combiner=None,
                           op_name="partitionBy", flatten_groups=True)

    def aggregate_by_key(
        self,
        zero: Any,
        seq_fn: Callable[[Any, Any], Any],
        comb_fn: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        """Per-key aggregation with distinct in-partition and merge
        functions (Spark's aggregateByKey): seq folds values into the
        accumulator map-side, comb merges accumulators reduce-side."""
        seeded = self.map(lambda kv: (kv[0], seq_fn(zero, kv[1])),
                          name="aggregate-seed")
        return ShuffledRDD(seeded, num_partitions, combiner=comb_fn,
                           op_name="aggregateByKey")

    def sort_by_key(self, ascending: bool = True,
                    num_partitions: Optional[int] = None) -> "RDD":
        """Total ordering via shuffle + per-partition sort + driver-side
        concatenation order (range partitioning simplified to hash
        partitions sorted at collect)."""
        shuffled = ShuffledRDD(self, num_partitions, combiner=None,
                               op_name="sortByKey", flatten_groups=True)
        return shuffled.map_partitions(
            lambda records: sorted(records, key=lambda kv: kv[0],
                                   reverse=not ascending),
            name="sort-partition",
        )

    def cogroup(self, other: "RDD",
                num_partitions: Optional[int] = None) -> "RDD":
        """(key, ([left values], [right values])) for every key present on
        either side (Spark's cogroup / CoGroupedRDD)."""
        tagged = self.map(lambda kv: (kv[0], (0, kv[1])), name="cogroup-l") \
            .union(other.map(lambda kv: (kv[0], (1, kv[1])), name="cogroup-r"))
        grouped = tagged.group_by_key(num_partitions)

        def split(kv):
            key, tagged_values = kv
            left = [v for tag, v in tagged_values if tag == 0]
            right = [v for tag, v in tagged_values if tag == 1]
            return (key, (left, right))

        return grouped.map(split, name="cogroup-split")

    def sample(self, fraction: float, seed: int = 17) -> "RDD":
        """Deterministic Bernoulli sample (seeded per partition)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")

        def sample_partition(records: List[Record]) -> List[Record]:
            import random as _random
            rng = _random.Random(seed)
            return [r for r in records if rng.random() < fraction]

        return self.map_partitions(sample_partition, name="sample")

    # -- actions ------------------------------------------------------------------

    def collect(self) -> List[Record]:
        """Gather all partitions at the driver (the paper's ``collect``)."""
        out: List[Record] = []
        for p in range(self.num_partitions):
            values = self.partition_values(p)
            node = self.sc.node_for_partition(p)
            # Results return to the driver through the data serializer path
            # in real Spark; the volume is tiny next to shuffles, so only
            # network movement is modeled here.
            self.sc.cluster.transfer(node, self.sc.cluster.driver,
                                     64 * max(1, len(values)))
            out.extend(values)
        return out

    def count(self) -> int:
        total = 0
        for p in range(self.num_partitions):
            total += len(self.partition_values(p))
        return total

    def take(self, n: int) -> List[Record]:
        """First n records, scanning partitions until satisfied (Spark
        launches incremental jobs; computed partitions stop early here)."""
        out: List[Record] = []
        for p in range(self.num_partitions):
            if len(out) >= n:
                break
            out.extend(self.partition_values(p))
        return out[:n]

    def first(self) -> Record:
        result = self.take(1)
        if not result:
            raise ValueError("first() on an empty RDD")
        return result[0]

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        sentinel = object()
        acc: Any = sentinel
        for p in range(self.num_partitions):
            for value in self.partition_values(p):
                acc = value if acc is sentinel else fn(acc, value)
        if acc is sentinel:
            raise ValueError("reduce of empty RDD")
        return acc


class ParallelizedRDD(RDD):
    """Driver-provided data, range-partitioned across executors."""

    def __init__(self, sc: "SparkContext", items: List[Record], n: int) -> None:
        super().__init__(sc, n)
        self._slices: List[List[Record]] = [[] for _ in range(n)]
        for i, item in enumerate(items):
            self._slices[i % n].append(item)

    def compute(self, partition: int) -> List[Record]:
        return list(self._slices[partition])


class MappedRDD(RDD):
    """A pipelined narrow transformation."""

    def __init__(
        self,
        parent: RDD,
        apply: Callable[[List[Record]], List[Record]],
        name: str,
        ops_per_record: int,
    ) -> None:
        super().__init__(parent.sc, parent.num_partitions)
        self.parent = parent
        self.apply = apply
        self.name = name
        self.ops_per_record = ops_per_record

    def compute(self, partition: int) -> List[Record]:
        inputs = self.parent.partition_values(partition)
        node = self.sc.node_for_partition(partition)
        self.sc.closures.ship(self.id, self.id, self.name, node)
        self.sc.charge_compute(node, len(inputs), self.ops_per_record)
        with node.clock.phase(Category.COMPUTATION):
            return self.apply(inputs)


class UnionRDD(RDD):
    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(left.sc, left.num_partitions + right.num_partitions)
        self.left = left
        self.right = right

    def compute(self, partition: int) -> List[Record]:
        if partition < self.left.num_partitions:
            return self.left.partition_values(partition)
        return self.right.partition_values(partition - self.left.num_partitions)


class ShuffledRDD(RDD):
    """A wide dependency: map outputs are shuffled and (optionally)
    combined; produces ``(key, value)`` or ``(key, [values])`` records."""

    def __init__(
        self,
        parent: RDD,
        num_partitions: Optional[int],
        combiner: Optional[Callable[[Any, Any], Any]],
        op_name: str,
        flatten_groups: bool = False,
    ) -> None:
        n = num_partitions if num_partitions is not None else parent.num_partitions
        super().__init__(parent.sc, n)
        self.parent = parent
        self.combiner = combiner
        self.op_name = op_name
        self.flatten_groups = flatten_groups
        self.partitioner = HashPartitioner(n)
        self._shuffle_id: Optional[int] = None

    # -- map stage ---------------------------------------------------------------

    def _ensure_map_outputs(self) -> int:
        if self._shuffle_id is not None:
            return self._shuffle_id
        self._shuffle_id = self.sc.shuffle.new_shuffle_id()
        for p in range(self.parent.num_partitions):
            records = self.parent.partition_values(p)
            node = self.sc.node_for_partition(p)
            self.sc.closures.ship(self.id, self.id, f"{self.op_name}-map", node)
            if self.combiner is not None and self.sc.config.map_side_combine:
                records = self._combine(records, node)
            self.sc.shuffle.write_map_output(
                self._shuffle_id, p, records, self.partitioner
            )
        return self._shuffle_id

    def _combine(self, records: Sequence[Pair], node) -> List[Pair]:
        self.sc.charge_compute(node, len(records))
        with node.clock.phase(Category.COMPUTATION):
            acc: Dict[Any, Any] = {}
            for key, value in records:
                if key in acc:
                    acc[key] = self.combiner(acc[key], value)  # type: ignore[misc]
                else:
                    acc[key] = value
            return list(acc.items())

    # -- reduce stage -----------------------------------------------------------

    def compute(self, partition: int) -> List[Record]:
        shuffle_id = self._ensure_map_outputs()
        node = self.sc.node_for_partition(partition)
        self.sc.closures.ship(self.id, self.id, f"{self.op_name}-reduce", node)
        records = self.sc.shuffle.read_reduce_input(
            shuffle_id, partition, self.parent.num_partitions
        )
        self.sc.charge_compute(node, len(records))
        with node.clock.phase(Category.COMPUTATION):
            if self.combiner is not None:
                acc: Dict[Any, Any] = {}
                for key, value in records:
                    if key in acc:
                        acc[key] = self.combiner(acc[key], value)
                    else:
                        acc[key] = value
                return list(acc.items())
            if self.flatten_groups:
                return records
            groups: Dict[Any, List[Any]] = {}
            for key, value in records:
                groups.setdefault(key, []).append(value)
            return list(groups.items())


class JoinedRDD(RDD):
    """Inner join of two pair RDDs (both sides shuffle)."""

    def __init__(self, left: RDD, right: RDD, num_partitions: Optional[int]) -> None:
        n = num_partitions if num_partitions is not None else max(
            left.num_partitions, right.num_partitions
        )
        super().__init__(left.sc, n)
        # Tag records so one shuffle carries both sides, like Spark's
        # CoGroupedRDD over a shared partitioner.
        self.left_shuffled = ShuffledRDD(
            left.map(lambda kv: (kv[0], (0, kv[1])), name="join-tag-left"),
            n, combiner=None, op_name="join-left", flatten_groups=True,
        )
        self.right_shuffled = ShuffledRDD(
            right.map(lambda kv: (kv[0], (1, kv[1])), name="join-tag-right"),
            n, combiner=None, op_name="join-right", flatten_groups=True,
        )

    def compute(self, partition: int) -> List[Record]:
        left = self.left_shuffled.partition_values(partition)
        right = self.right_shuffled.partition_values(partition)
        node = self.sc.node_for_partition(partition)
        self.sc.charge_compute(node, len(left) + len(right))
        with node.clock.phase(Category.COMPUTATION):
            left_groups: Dict[Any, List[Any]] = {}
            for key, (_, value) in left:
                left_groups.setdefault(key, []).append(value)
            out: List[Record] = []
            for key, (_, value) in right:
                for lv in left_groups.get(key, ()):
                    out.append((key, (lv, value)))
            return out
