"""Typed rows and Flink's built-in per-field serializers.

A :class:`RowType` is the compile-time schema of a dataset.  The built-in
serializer encodes each field with a type-specialized codec (fixed-width
numerics, length-prefixed UTF-8 strings) and *no* type tags — the schema is
static, exactly why Flink's built-in serializers beat generic ones.

Lazy deserialization: the receiving side decodes a row's key and accessed
fields only; the remaining fields stay binary until touched (they never are,
in batch pipelines that project early).  Costs are charged accordingly.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
from typing import Any, List, Optional, Sequence, Tuple

from repro.jvm.jvm import JVM
from repro.net.streams import ByteInputStream, ByteOutputStream
from repro.simtime import CostModel


class FieldKind(enum.Enum):
    LONG = "long"
    INT = "int"
    DOUBLE = "double"
    STRING = "string"
    DATE = "date"  # stored as int32 days since epoch

    @property
    def fixed_size(self) -> Optional[int]:
        return {
            FieldKind.LONG: 8,
            FieldKind.INT: 4,
            FieldKind.DOUBLE: 8,
            FieldKind.DATE: 4,
            FieldKind.STRING: None,
        }[self]


@dataclasses.dataclass(frozen=True)
class RowType:
    """A named, ordered field schema."""

    name: str
    fields: Tuple[Tuple[str, FieldKind], ...]

    @classmethod
    def of(cls, name: str, *fields: Tuple[str, FieldKind]) -> "RowType":
        return cls(name, tuple(fields))

    @property
    def arity(self) -> int:
        return len(self.fields)

    def index_of(self, field_name: str) -> int:
        for i, (n, _) in enumerate(self.fields):
            if n == field_name:
                return i
        raise KeyError(f"{self.name} has no field {field_name!r}")

    def kinds(self) -> List[FieldKind]:
        return [k for _, k in self.fields]

    def concat(self, other: "RowType", name: Optional[str] = None) -> "RowType":
        """Schema of a join result (left fields then right fields)."""
        merged = self.fields + other.fields
        return RowType(name or f"{self.name}*{other.name}", merged)

    def project(self, indices: Sequence[int], name: Optional[str] = None) -> "RowType":
        picked = tuple(self.fields[i] for i in indices)
        return RowType(name or f"{self.name}#proj", picked)


class BuiltinRowSerializer:
    """Flink's statically-chosen per-field serializer for one RowType.

    ``field_dispatch_cost`` is the per-field TypeSerializer invocation:
    a megamorphic virtual call plus output-view boundary checks (heavier
    than a bare accessor; Flink's own profiling attributes ~23.5% of query
    runtime to serialization, paper §5.3).
    """

    def __init__(self, row_type: RowType,
                 field_dispatch_cost: float = 55e-9) -> None:
        self.row_type = row_type
        self.field_dispatch_cost = field_dispatch_cost

    # -- encoding -----------------------------------------------------------------

    def write_row(self, out: ByteOutputStream, row: Sequence[Any],
                  jvm: JVM) -> int:
        """Serialize one row; charges per-field built-in codec costs and
        returns the encoded byte count."""
        cost = jvm.cost_model
        start = out.position
        jvm.clock.charge(cost.sd_function_call)  # row serializer dispatch
        for value, (fname, kind) in zip(row, self.row_type.fields):
            # One field-serializer virtual dispatch per field (Flink wires a
            # TypeSerializer object per field).
            jvm.clock.charge(self.field_dispatch_cost)
            self._write_field(out, kind, value)
        written = out.position - start
        jvm.clock.charge(cost.memcpy(written))
        return written

    @staticmethod
    def _write_field(out: ByteOutputStream, kind: FieldKind, value: Any) -> None:
        if kind is FieldKind.LONG:
            out.write_i64(int(value))
        elif kind is FieldKind.INT or kind is FieldKind.DATE:
            out.write_i32(int(value))
        elif kind is FieldKind.DOUBLE:
            out.write_f64(float(value))
        elif kind is FieldKind.STRING:
            out.write_utf(value)
        else:  # pragma: no cover - exhaustive
            raise TypeError(kind)

    # -- decoding ------------------------------------------------------------------

    def read_row(
        self,
        inp: ByteInputStream,
        jvm: JVM,
        accessed: Optional[Sequence[int]] = None,
    ) -> Tuple[Any, ...]:
        """Deserialize one row lazily: decode costs are charged only for
        ``accessed`` field indices (None = all).  All values are returned
        (the binary row travels with the record in real Flink; untouched
        fields simply never pay decode cost)."""
        cost = jvm.cost_model
        jvm.clock.charge(cost.sd_function_call)
        accessed_set = set(accessed) if accessed is not None else None
        values: List[Any] = []
        start = inp.position
        for i, (fname, kind) in enumerate(self.row_type.fields):
            value = self._read_field(inp, kind)
            values.append(value)
            if accessed_set is None or i in accessed_set:
                jvm.clock.charge(self.field_dispatch_cost)
        jvm.clock.charge(cost.memcpy(inp.position - start))
        return tuple(values)

    @staticmethod
    def _read_field(inp: ByteInputStream, kind: FieldKind) -> Any:
        if kind is FieldKind.LONG:
            return inp.read_i64()
        if kind is FieldKind.INT or kind is FieldKind.DATE:
            return inp.read_i32()
        if kind is FieldKind.DOUBLE:
            return inp.read_f64()
        if kind is FieldKind.STRING:
            return inp.read_utf()
        raise TypeError(kind)  # pragma: no cover - exhaustive
