"""The distributed JSBS harness (paper §5.1).

Per library: every node serializes the media dataset, broadcasts the bytes
to all the other nodes, and each receiver deserializes them back into
objects; repeated for a configurable number of rounds.  Reported per
library: total serialization, deserialization, and network seconds across
the cluster — the three stacked components of Figure 7.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.runtime import attach_skyway
from repro.jsbs.libraries import LIBRARY_CATALOG, LibrarySpec, build_serializer
from repro.jsbs.media import install_media_classes, make_media_content
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.serial.kryo import KryoRegistrator
from repro.simtime import Category
from repro.simtime.costmodel import INFINIBAND_COST_MODEL
from repro.types.classdef import ClassPath
from repro.types.corelib import install_core_classes


@dataclasses.dataclass(frozen=True)
class JsbsResult:
    """One Figure 7 bar: per-library component times (simulated seconds)."""

    library: str
    serialization: float
    deserialization: float
    network: float
    bytes_per_object: float

    @property
    def total(self) -> float:
        return self.serialization + self.deserialization + self.network


def _media_registrator() -> KryoRegistrator:
    reg = KryoRegistrator()
    for name in ("data.media.MediaContent", "data.media.Media",
                 "data.media.Image"):
        reg.register(name)
    return reg


def run_jsbs(
    libraries: Optional[List[LibrarySpec]] = None,
    nodes: int = 5,
    objects: int = 20,
    rounds: int = 3,
) -> List[JsbsResult]:
    """Run the distributed benchmark; returns results sorted fastest-first.

    The paper uses 5 nodes, millions of objects, 1000 rounds; defaults here
    are laptop-scale (results are per-configuration totals, so ordering and
    ratios — the figure's content — are scale-invariant).
    """
    if libraries is None:
        libraries = LIBRARY_CATALOG
    results: List[JsbsResult] = []
    for spec in libraries:
        results.append(_run_one(spec, nodes, objects, rounds))
    results.sort(key=lambda r: r.total)
    return results


def _run_one(spec: LibrarySpec, nodes: int, objects: int,
             rounds: int) -> JsbsResult:
    classpath = install_media_classes(install_core_classes(ClassPath()))
    # The JSBS nodes are InfiniBand-connected (paper §2.2); see the profile
    # note in repro.simtime.costmodel.
    cluster = Cluster(
        lambda name: JVM(name, classpath=classpath,
                         cost_model=INFINIBAND_COST_MODEL),
        worker_count=nodes - 1,
        cost_model=INFINIBAND_COST_MODEL,
    )
    if spec.family == "skyway":
        attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                      cluster=cluster)
    serializer = build_serializer(spec, registrator=_media_registrator())

    all_nodes = list(cluster.nodes())
    datasets = {}
    for node in all_nodes:
        pins = [node.jvm.pin(make_media_content(node.jvm, i))
                for i in range(objects)]
        datasets[node.name] = pins

    # Setup (class loading, type registration, dataset materialization) is
    # one-time work amortized over the paper's 1000 rounds; measure the
    # benchmark loop only.
    cluster.reset_clocks()

    total_bytes = 0
    payload_count = 0
    for _ in range(rounds):
        for sender in all_nodes:
            with sender.clock.phase(Category.SERIALIZATION):
                stream = serializer.new_stream(sender.jvm)
                for pin in datasets[sender.name]:
                    stream.write_object(pin.address)
                data = stream.close()
            total_bytes += len(data)
            payload_count += objects
            for receiver in all_nodes:
                if receiver is sender:
                    continue
                cluster.transfer(sender, receiver, len(data))
                with receiver.clock.phase(Category.DESERIALIZATION):
                    reader = serializer.new_reader(receiver.jvm, data)
                    received = 0
                    while reader.has_next():
                        reader.read_object()
                        received += 1
                    reader.close()
                assert received == objects, (spec.name, received)

    totals = cluster.total_clock()
    return JsbsResult(
        library=spec.name,
        serialization=totals.total(Category.SERIALIZATION),
        deserialization=totals.total(Category.DESERIALIZATION),
        network=totals.total(Category.NETWORK),
        bytes_per_object=total_bytes / max(1, payload_count),
    )
