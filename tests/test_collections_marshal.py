"""Tests for simulated java.util collections and Python<->heap marshalling."""

import pytest

from repro.heap.heap import NULL
from repro.jvm.collections import ArrayListOps, HashMapOps, java_hash_of
from repro.jvm.marshal import HeapValueError, Obj, from_heap, to_heap


class TestHashMap:
    def test_put_get(self, jvm):
        ops = HashMapOps(jvm)
        m = ops.new()
        pin = jvm.pin(m)
        k = jvm.pin(jvm.new_string("alpha"))
        v = jvm.pin(jvm.new_string("one"))
        ops.put(pin.address, k.address, v.address)
        got = ops.get(pin.address, k.address)
        assert jvm.read_string(got) == "one"

    def test_get_missing_returns_null(self, jvm):
        ops = HashMapOps(jvm)
        m = jvm.pin(ops.new()).address
        key = jvm.pin(jvm.new_string("nope")).address
        assert ops.get(m, key) == NULL

    def test_replace_existing_key(self, jvm):
        ops = HashMapOps(jvm)
        m = jvm.pin(ops.new()).address
        k1 = jvm.pin(jvm.new_string("k")).address
        k2 = jvm.pin(jvm.new_string("k")).address  # equal but distinct
        ops.put(m, k1, jvm.pin(jvm.new_string("v1")).address)
        ops.put(m, k2, jvm.pin(jvm.new_string("v2")).address)
        assert ops.size(m) == 1
        assert jvm.read_string(ops.get(m, k1)) == "v2"

    def test_many_entries_with_resize(self, jvm):
        ops = HashMapOps(jvm)
        pin = jvm.pin(ops.new(capacity=4))
        for i in range(60):
            k = jvm.pin(jvm.new_string(f"key-{i}"))
            v = jvm.pin(jvm.new_string(f"val-{i}"))
            new_addr = ops.put(pin.address, k.address, v.address)
            pin.address = new_addr
            jvm.unpin(k)
            jvm.unpin(v)
        assert ops.size(pin.address) == 60
        probe = jvm.pin(jvm.new_string("key-37"))
        assert jvm.read_string(ops.get(pin.address, probe.address)) == "val-37"

    def test_identity_keys_use_mark_word_hash(self, jvm):
        ops = HashMapOps(jvm)
        m = jvm.pin(ops.new()).address
        key = jvm.pin(jvm.new_instance("Date")).address
        val = jvm.pin(jvm.new_string("x")).address
        ops.put(m, key, val)
        assert java_hash_of(jvm, key) == jvm.identity_hash(key)
        assert ops.get(m, key) != NULL

    def test_rehash_in_place_restores_lookup(self, jvm):
        """If node hashes are corrupted (as after a hash-invalidating
        transfer), get() misses until rehash_in_place runs."""
        ops = HashMapOps(jvm)
        pin = jvm.pin(ops.new())
        key = jvm.pin(jvm.new_instance("Date"))
        val = jvm.pin(jvm.new_string("payload"))
        pin.address = ops.put(pin.address, key.address, val.address)
        # Corrupt: change the key's identity hash (simulating a new node
        # receiving a fresh identity hash after ordinary deserialization).
        from repro.heap import markword
        mark = jvm.heap.read_mark(key.address)
        new_mark = markword.set_hash(mark, (markword.get_hash(mark) + 12345) % (1 << 31 - 1) + 1)
        jvm.heap.write_mark(key.address, new_mark)
        assert ops.get(pin.address, key.address) == NULL
        ops.rehash_in_place(pin.address)
        assert ops.get(pin.address, key.address) != NULL

    def test_rehash_charges_per_entry(self, jvm):
        ops = HashMapOps(jvm)
        pin = jvm.pin(ops.new())
        for i in range(10):
            k = jvm.pin(jvm.new_string(f"k{i}"))
            pin.address = ops.put(pin.address, k.address, NULL)
            jvm.unpin(k)
        before = jvm.clock.total()
        ops.rehash_in_place(pin.address)
        spent = jvm.clock.total() - before
        assert spent == pytest.approx(10 * jvm.cost_model.hash_insert)


class TestArrayList:
    def test_append_get(self, jvm):
        ops = ArrayListOps(jvm)
        lst = jvm.pin(ops.new(2))
        for i in range(20):
            e = jvm.pin(jvm.new_string(str(i)))
            ops.append(lst.address, e.address)
            jvm.unpin(e)
        assert ops.size(lst.address) == 20
        assert jvm.read_string(ops.get(lst.address, 13)) == "13"

    def test_bounds(self, jvm):
        ops = ArrayListOps(jvm)
        lst = jvm.pin(ops.new()).address
        with pytest.raises(IndexError):
            ops.get(lst, 0)


class TestMarshal:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 42, -(1 << 40), 3.25, "", "héllo",
        b"\x00\xffbytes", (1, "two", 3.0), [1, 2, 3], {"a": 1, "b": [2, 3]},
        {"nested": {"x": (1, 2)}}, [(1, 2), (3, 4)],
    ])
    def test_roundtrip(self, jvm, value):
        addr = to_heap(jvm, value)
        assert from_heap(jvm, addr) == value

    def test_obj_roundtrip(self, jvm):
        date = Obj("Date", {
            "year": Obj("Year4D", {"year": 2018}),
            "month": Obj("Month2D", {"month": 3}),
            "day": Obj("Day2D", {"day": 24}),
        })
        addr = to_heap(jvm, date)
        back = from_heap(jvm, addr)
        assert back.class_name == "Date"
        assert back["year"]["year"] == 2018
        assert back["day"]["day"] == 24

    def test_obj_with_primitive_fields(self, jvm):
        m = Obj("Mixed", {"i": -5, "j": 1 << 40, "d": 2.5, "z": True})
        back = from_heap(jvm, to_heap(jvm, m))
        assert back["i"] == -5
        assert back["j"] == 1 << 40
        assert back["d"] == 2.5
        assert back["z"] == 1

    def test_shared_substructure_preserved(self, jvm):
        shared = ["s"]
        addr = to_heap(jvm, (shared, shared))
        back = from_heap(jvm, addr)
        assert back[0] is back[1]

    def test_unmappable_type_rejected(self, jvm):
        with pytest.raises(HeapValueError):
            to_heap(jvm, object())

    def test_bool_is_boolean_not_long(self, jvm):
        addr = to_heap(jvm, True)
        assert jvm.klass_of(addr).name == "java.lang.Boolean"

    def test_large_structure_survives_gc_pressure(self, classpath):
        from repro.jvm.jvm import JVM
        jvm = JVM("pressure", classpath=classpath,
                  young_bytes=64 * 1024, old_bytes=4 * 1024 * 1024)
        data = {f"key-{i}": list(range(5)) for i in range(50)}
        addr = to_heap(jvm, data)
        pin = jvm.pin(addr)
        for _ in range(500):
            jvm.new_instance("Date")  # churn
        assert from_heap(jvm, pin.address) == data
