"""Per-JVM class loading.

Each JVM owns a :class:`ClassLoader` that turns :class:`ClassDef`\\ s from the
cluster class path into :class:`~repro.heap.klass.Klass` meta-objects with
concrete offsets for that JVM's heap layout.  Loading is lazy (on first
reference) and recursive (superclasses first), and fires *load hooks* — the
mechanism Skyway's type registry uses to assign a global type ID at class
load time (paper §4.1: "We modify the class loader on each worker JVM so
that during the loading of a class, the loader obtains the ID for the
class").
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.heap.klass import Klass
from repro.heap.layout import HeapLayout
from repro.types import descriptors
from repro.types.classdef import ClassPath, OBJECT_CLASS

LoadHook = Callable[[Klass], None]


class ClassNotFoundError(KeyError):
    """Raised when a class name cannot be resolved on the class path."""


class ClassLoader:
    """Loads classes for one JVM and assigns per-JVM klass IDs.

    Klass IDs are deliberately distinct across JVMs (they start from a
    per-loader base) so that a raw klass word leaking across the wire is
    caught immediately by tests — mirroring the real-world fact that klass
    pointers are process-local addresses.
    """

    _instance_counter = itertools.count()

    def __init__(self, classpath: ClassPath, layout: HeapLayout) -> None:
        self.classpath = classpath
        self.layout = layout
        self._loaded: Dict[str, Klass] = {}
        self._by_id: Dict[int, Klass] = {}
        self._hooks: List[LoadHook] = []
        # Distinct klass-id spaces per loader instance.
        base = (next(self._instance_counter) + 1) << 32
        self._next_id = itertools.count(base, 8)

    # -- hooks --------------------------------------------------------------

    def add_load_hook(self, hook: LoadHook) -> None:
        """Register a callback fired after each class is loaded.

        Hooks registered late are replayed over already-loaded classes, so
        attaching Skyway to a warmed-up JVM still numbers every type.
        """
        self._hooks.append(hook)
        for klass in list(self._loaded.values()):
            hook(klass)

    # -- loading -----------------------------------------------------------

    def load(self, name: str) -> Klass:
        """Resolve ``name`` to a Klass, loading it (and supers) if needed.

        Array classes are named by their descriptor (``[I``,
        ``[Ljava.lang.Integer;``) and are created on demand; their element
        class is loaded too when it is a reference type.
        """
        existing = self._loaded.get(name)
        if existing is not None:
            return existing
        if name.startswith(descriptors.ARRAY_PREFIX):
            klass = self._load_array(name)
        else:
            klass = self._load_instance_class(name)
        return klass

    def is_loaded(self, name: str) -> bool:
        return name in self._loaded

    def loaded_classes(self) -> List[Klass]:
        return list(self._loaded.values())

    def by_klass_id(self, klass_id: int) -> Klass:
        try:
            return self._by_id[klass_id]
        except KeyError:
            raise ClassNotFoundError(f"no klass with id {klass_id:#x}") from None

    def object_klass(self) -> Klass:
        return self.load(OBJECT_CLASS)

    # -- internals -----------------------------------------------------------

    def _load_instance_class(self, name: str) -> Klass:
        classdef = self.classpath.get(name)
        if classdef is None:
            raise ClassNotFoundError(name)
        super_klass: Optional[Klass] = None
        if classdef.super_name is not None:
            super_klass = self.load(classdef.super_name)
        klass = Klass.for_instance_class(
            name, self.layout, super_klass, classdef.field_pairs
        )
        return self._install(klass)

    def _load_array(self, name: str) -> Klass:
        element = descriptors.component_of(name)
        if descriptors.is_reference(element) and not descriptors.is_array(element):
            # Ensure the element class exists (and is numbered) too.
            self.load(descriptors.referenced_class(element))
        elif descriptors.is_array(element):
            self.load(element)
        klass = Klass.for_array(element, self.layout, self.object_klass())
        return self._install(klass)

    def _install(self, klass: Klass) -> Klass:
        klass.klass_id = next(self._next_id)
        self._loaded[klass.name] = klass
        self._by_id[klass.klass_id] = klass
        for hook in self._hooks:
            hook(klass)
        return klass
