"""TriangleCounting (the paper's motivating workload, §2.2): counts the
triangles induced by graph edges via neighbor-set intersection.

The RDD formulation follows GraphX's approach: canonicalize edges (src <
dst), build adjacency sets, then for each edge intersect the endpoint
neighborhoods — three shuffle rounds (adjacency build plus two joins).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.spark.context import SparkContext


def triangle_count(
    sc: SparkContext,
    edges: List[Tuple[int, int]],
    num_partitions: int = None,
) -> int:
    """Number of distinct triangles in the undirected graph."""
    canonical = (
        sc.parallelize(edges, num_partitions)
        .map(lambda e: (min(e), max(e)), name="canonicalize")
        .filter(lambda e: e[0] != e[1], name="drop-loops")
        .distinct()
    )

    # Forward adjacency: N+(u) = { v > u : (u, v) in E }.  For the edge
    # (u, v) with u < v, any w in N+(u) ∩ N+(v) closes the triangle
    # {u, v, w} with u < v < w — so each triangle is counted exactly once,
    # at its lexicographically smallest edge.
    adjacency = canonical.group_by_key().map_values(frozenset).cache()

    # Attach N+(u) to each edge (u, v), then N+(v).
    with_src_nbrs = canonical.join(adjacency).map(
        lambda kv: (kv[1][0], (kv[0], kv[1][1])), name="swap-to-dst"
    )
    # Records: (v, ((u, N+(u)), N+(v))).
    with_both = with_src_nbrs.join(adjacency)

    counts = with_both.map(
        lambda kv: len(kv[1][0][1] & kv[1][1]), name="intersect"
    )
    return sum(counts.collect())
