"""Deprecation plumbing for the pre-policy-plane entry points.

``SparkContext.delta_broadcast`` / ``SparkContext.parallel_send`` /
``SkywaySerializer(delta=...)`` still work, but each warns **once** per
process that ``send(root, policy=...)`` is the front door now.
"""

from __future__ import annotations

import warnings
from typing import Set

_warned: Set[str] = set()


def warn_deprecated(old: str, new: str = "SparkContext.send(policy=...)",
                    stacklevel: int = 3) -> None:
    """Emit a single :class:`DeprecationWarning` per entry point."""
    if old in _warned:
        return
    _warned.add(old)
    warnings.warn(
        f"{old} is deprecated; the policy plane decides send modes now — "
        f"use {new}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_deprecation_warnings() -> None:
    """Re-arm the warn-once guards (tests only)."""
    _warned.clear()
