"""The Skyway worker process: a socket server around a receiving runtime.

One worker = one spawned process = one JVM + Skyway runtime, listening on a
loopback TCP port.  The protocol per connection:

1. HELLO / HELLO_ACK — registry convergence (:mod:`registry_sync`).  A
   driver may re-HELLO on the same connection after loading new classes;
   the worker treats any HELLO as a fresh merge.
2. CALL frames carrying a JSON ``{"op": ...}``; data-bearing ops are
   followed by DATA chunks + TRAILER.  Each op answers RESULT or ERROR.
3. BYE ends the connection; the worker keeps accepting new ones (this is
   what lets a driver's retry/backoff recover from a killed connection).

Connections are served one thread each, so a driver can hold N streams
open at once (the multi-stream parallel send).  Everything that mutates
shared state — the heap, the class loader, the registry, placement — runs
under one server-wide lock taken per *chunk*, not per stream: socket reads
stay concurrent while heap mutation stays serialized, so N arriving
streams interleave placement the way the paper's per-thread output buffers
interleave on the send side (§4.2).

Any exception inside an op is reported as one ERROR frame naming the
exception type, then the connection closes — mid-stream state is
unrecoverable, a fresh connection is not.

Ops:

``ping``
    Echo, for liveness and handshake tests.
``recv_graph``
    Receive one Skyway object stream into this heap (placement overlapping
    arrival), absolutize, and reply with root count, object/byte tallies
    and the position-independent :func:`~repro.transport.digest.graph_digest`.
    ``retain=false`` (default) unpins the roots after digesting so
    repeated benchmark sends don't exhaust the worker heap.
``recv_blob``
    Receive an opaque byte blob (the Spark broadcast path) and reply with
    its size and CRC.
``recv_epoch``
    Receive one FULL/DELTA epoch frame for a delta-capable graph channel:
    an EPOCH frame announces (channel id, epoch, kind), DATA chunks carry
    the delta-wire frame, and the worker routes it through the runtime's
    :class:`~repro.delta.channel.DeltaReceiveEndpoint`.  A stale delta
    (worker restarted, state dropped, epoch gap) answers an ERROR frame
    naming ``DeltaStaleError`` — the cross-process NACK the sender reacts
    to by forcing its next epoch full.
``stats``
    Runtime + transport counters.
``shutdown``
    Acknowledge, then exit the accept loop.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import socket
import threading
import zlib
from typing import List, Optional

from repro import obs
from repro.core.streams import IncrementalStreamDecoder
from repro.delta.channel import DeltaReceiveEndpoint
from repro.delta.wire import FRAME_DELTA, FRAME_FULL, DeltaFrame, parse_frame
from repro.transport import frames, registry_sync
from repro.transport.bootstrap import MB, build_runtime
from repro.transport.connection import FrameConnection
from repro.transport.digest import graph_digest, semantic_graph_digest
from repro.transport.errors import TransportClosed, TransportError
from repro.transport.metrics import TransportMetrics
from repro.transport.pipeline import pump_stream


@dataclasses.dataclass
class WorkerSpec:
    """Everything a spawned worker needs, in picklable form."""

    name: str
    classpath_factory: str  # "module:function" -> ClassPath
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; actual port reported back over the pipe
    read_timeout: float = 10.0
    young_bytes: int = 4 * MB
    old_bytes: int = 64 * MB


class _ConnPump:
    """Adapter giving ``SkywayObjectInputStream`` its ``transport.pump``."""

    def __init__(self, conn: FrameConnection) -> None:
        self._conn = conn
        self.stream_bytes = 0

    def pump(self, decoder) -> None:
        self.stream_bytes = pump_stream(self._conn, decoder)


class _LockedDecoder:
    """Serialize a concurrent receive at chunk granularity.

    Each connection thread reads its own socket, but every byte a decoder
    turns into heap mutation (segment placement, class loading, registry
    lookups) runs under the server-wide state lock.  Locking per chunk
    rather than per stream is what lets N parallel streams interleave
    placement — the receive half of the multi-stream send."""

    def __init__(self, decoder: IncrementalStreamDecoder,
                 lock: threading.Lock) -> None:
        self._decoder = decoder
        self._lock = lock

    def feed(self, chunk: bytes) -> None:
        with self._lock:
            self._decoder.feed(chunk)


class _BlobSink:
    """A trivial decoder standing in for the stream decoder: recv_blob
    pumps opaque bytes (e.g. Java-serializer broadcast payloads)."""

    def __init__(self) -> None:
        self.data = bytearray()

    def feed(self, chunk: bytes) -> None:
        self.data.extend(chunk)


class WorkerServer:
    """The in-process server object (runs inside the spawned worker)."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.runtime = build_runtime(
            spec.name, spec.classpath_factory,
            young_bytes=spec.young_bytes, old_bytes=spec.old_bytes,
        )
        self.metrics = TransportMetrics()
        self._running = True
        self.graphs_received = 0
        self.epochs_received = 0
        #: One lock guards every mutation of shared runtime state (heap,
        #: loader, registry, placement, tallies).  Connection threads take
        #: it per chunk, so streams interleave without interleaving *inside*
        #: an object placement.
        self._state_lock = threading.Lock()
        self._conn_threads: List[threading.Thread] = []
        #: Structured, attributable diagnostics: one logger per worker id,
        #: level picked up from REPRO_LOG_LEVEL in :func:`worker_main`.
        self.log = logging.getLogger(f"repro.worker.{spec.name}")

    # -- op handlers -------------------------------------------------------

    def _op_ping(self, conn: FrameConnection, call: dict) -> dict:
        return {"op": "ping", "echo": call.get("echo"),
                "worker": self.spec.name}

    def _op_recv_graph(self, conn: FrameConnection, call: dict) -> dict:
        lock = self._state_lock
        with lock:
            decoder = IncrementalStreamDecoder(self.runtime)
        pump = _ConnPump(conn)
        with self.metrics.phase("receive"), \
                obs.span("recv.receive", clock=self.runtime.jvm.clock):
            pump.pump(_LockedDecoder(decoder, lock))
        with lock:
            roots = decoder.finish()
            receiver = decoder.receiver
            token = self.runtime.track_input_buffer(receiver, roots)
            with self.metrics.phase("digest"), obs.span("recv.digest"):
                digest = graph_digest(self.runtime.jvm, receiver)
            result = {
                "op": "recv_graph",
                "roots": len(roots),
                "objects": receiver.objects_received,
                "logical_bytes": receiver.buffer.logical_size,
                "stream_bytes": pump.stream_bytes,
                "digest": digest,
                "retained": bool(call.get("retain", False)),
            }
            self.graphs_received += 1
            if not call.get("retain", False):
                # unpin roots; GC reclaims on future pressure
                self.runtime.free_input_buffer(token)
        return result

    def _op_recv_blob(self, conn: FrameConnection, call: dict) -> dict:
        sink = _BlobSink()
        with self.metrics.phase("receive"), obs.span("recv.receive"):
            pump_stream(conn, sink)
        return {
            "op": "recv_blob",
            "bytes": len(sink.data),
            "crc32": zlib.crc32(bytes(sink.data)),
        }

    def _op_recv_epoch(self, conn: FrameConnection, call: dict) -> dict:
        header = frames.decode_epoch_header(
            conn.expect_frame(frames.EPOCH)
        )
        channel_id, epoch, kind = header
        sink = _BlobSink()
        with self.metrics.phase("receive"), \
                obs.span("recv.receive", channel=channel_id, epoch=epoch):
            stream_bytes = pump_stream(conn, sink)
        data = bytes(sink.data)
        with self._state_lock:
            frame = parse_frame(data)
            actual_kind = (FRAME_DELTA if isinstance(frame, DeltaFrame)
                           else FRAME_FULL)
            if (frame.channel_id, frame.epoch, actual_kind) \
                    != (channel_id, epoch, kind):
                raise TransportError(
                    f"EPOCH header announced channel {channel_id} epoch "
                    f"{epoch} kind {kind:#x}, frame carries channel "
                    f"{frame.channel_id} epoch {frame.epoch} kind "
                    f"{actual_kind:#x}"
                )
            endpoint = DeltaReceiveEndpoint.for_runtime(self.runtime)
            # DeltaStaleError propagates to the op dispatcher, which turns
            # it into the ERROR frame the driver reads as a NACK.
            roots = endpoint.receive(data)
            result = {
                "op": "recv_epoch",
                "channel_id": channel_id,
                "epoch": epoch,
                "kind": "delta" if actual_kind == FRAME_DELTA else "full",
                "roots": len(roots),
                "root_addresses": list(roots),
                "stream_bytes": stream_bytes,
            }
            if call.get("digest", True):
                with self.metrics.phase("digest"), obs.span("recv.digest"):
                    result["digest"] = semantic_graph_digest(
                        self.runtime.jvm, roots
                    )
            self.epochs_received += 1
        return result

    def _op_stats(self, conn: FrameConnection, call: dict) -> dict:
        return {
            "op": "stats",
            "worker": self.spec.name,
            "graphs_received": self.graphs_received,
            "epochs_received": self.epochs_received,
            "runtime": {
                k: v for k, v in self.runtime.stats().items()
                if isinstance(v, (int, str, bool))
            },
            "transport": self.metrics.as_dict(),
        }

    def _op_shutdown(self, conn: FrameConnection, call: dict) -> dict:
        self._running = False
        return {"op": "shutdown", "ok": True}

    _OPS = {
        "ping": _op_ping,
        "recv_graph": _op_recv_graph,
        "recv_blob": _op_recv_blob,
        "recv_epoch": _op_recv_epoch,
        "stats": _op_stats,
        "shutdown": _op_shutdown,
    }

    # -- connection loop ---------------------------------------------------

    def _handshake(self, conn: FrameConnection, payload: bytes) -> None:
        version, peer, driver_map = frames.decode_hello(payload)
        if version != frames.PROTOCOL_VERSION:
            raise TransportError(
                f"protocol version mismatch: peer {peer!r} speaks "
                f"v{version}, this worker v{frames.PROTOCOL_VERSION}"
            )
        with self._state_lock:
            extras = registry_sync.extra_names(
                self.runtime.view.snapshot(), driver_map
            )
            conn.send_frame(
                frames.HELLO_ACK,
                frames.encode_hello_ack(self.spec.name, extras),
            )
            merged = registry_sync.merge_registries(driver_map, extras)
            registry_sync.install_merged(self.runtime, merged)
        self.log.info(
            "handshake with %s: %d driver classes, %d worker extras",
            peer, len(driver_map), len(extras),
        )

    def serve_connection(self, conn: FrameConnection) -> None:
        """Run one connection to completion (BYE, EOF, or a fatal op
        error).  Op failures answer ERROR then end the connection."""
        trace_pending = False
        while self._running:
            try:
                ftype, payload = conn.recv_frame()
            except TransportClosed:
                return  # peer went away between calls; accept loop continues
            if ftype == frames.BYE:
                return
            try:
                if ftype == frames.HELLO:
                    self._handshake(conn, payload)
                    continue
                if ftype == frames.TRACE:
                    # Driver trace context for the next CALL: enable (or
                    # re-point) this worker's tracer and parent this
                    # thread's spans under the driver's current span.
                    trace_id, parent_span = frames.decode_trace(payload)
                    tracer = obs.enable(
                        process=f"worker:{self.spec.name}",
                        trace_id=trace_id or None,
                    )
                    tracer.adopt_remote(parent_span or None)
                    trace_pending = True
                    continue
                if ftype != frames.CALL:
                    raise TransportError(
                        f"protocol violation: unexpected "
                        f"{frames.frame_name(ftype)} frame between calls"
                    )
                call = frames.decode_json(payload, what="CALL")
                handler = self._OPS.get(call.get("op"))
                if handler is None:
                    raise TransportError(f"unknown op {call.get('op')!r}")
                self.log.debug("serving op %s", call.get("op"))
                if trace_pending:
                    result = self._traced_call(conn, call, handler)
                else:
                    result = handler(self, conn, call)
                conn.send_frame(frames.RESULT, frames.encode_json(result))
            except Exception as exc:  # noqa: BLE001 - reported as ERROR frame
                self.log.warning(
                    "op failed, answering ERROR: %s: %s",
                    type(exc).__name__, exc,
                )
                try:
                    conn.send_frame(
                        frames.ERROR,
                        frames.encode_error(type(exc).__name__, str(exc)),
                    )
                except TransportError:
                    pass
                return
            finally:
                if trace_pending and ftype == frames.CALL:
                    trace_pending = False
                    tracer = obs.get_tracer()
                    if tracer is not None:
                        tracer.clear_remote()

    def _traced_call(self, conn: FrameConnection, call: dict,
                     handler) -> dict:
        """Serve one op inside a ``worker.<op>`` span and ship this
        thread's spans back inside the RESULT under ``"trace"``."""
        tracer = obs.get_tracer()
        mark = tracer.mark()
        with tracer.span(f"worker.{call.get('op')}",
                         clock=self.runtime.jvm.clock):
            result = handler(self, conn, call)
        result["trace"] = tracer.export_payload(tracer.drain(mark))
        return result

    def _serve_thread(self, conn: FrameConnection) -> None:
        try:
            self.serve_connection(conn)
        finally:
            conn.close()

    def serve_forever(self, listener: socket.socket) -> None:
        """Accept loop: one daemon thread per connection, so N driver
        streams can be in flight at once.  Shutdown drains the accept
        loop, then joins whatever connections are still open."""
        listener.settimeout(0.25)  # poll so shutdown can exit the loop
        try:
            while self._running:
                try:
                    sock, _addr = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                conn = FrameConnection(
                    sock, read_timeout=self.spec.read_timeout,
                    metrics=self.metrics,
                )
                thread = threading.Thread(
                    target=self._serve_thread, args=(conn,),
                    name=f"skyway-conn-{len(self._conn_threads)}",
                    daemon=True,
                )
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
                thread.start()
        finally:
            for thread in self._conn_threads:
                thread.join(timeout=5.0)


def configure_worker_logging() -> None:
    """Structured logging for spawned workers: level from REPRO_LOG_LEVEL
    (default WARNING), records tagged with the per-worker logger name."""
    level_name = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
    level = getattr(logging, level_name, None)
    if not isinstance(level, int):
        level = logging.WARNING
    logging.basicConfig(
        level=level,
        format="%(asctime)s %(levelname)s %(name)s [pid %(process)d] "
               "%(message)s",
    )


def worker_main(spec: WorkerSpec, port_pipe) -> None:
    """Entry point of the spawned process.  Binds, reports the actual port
    through ``port_pipe``, then serves until shutdown."""
    configure_worker_logging()
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        server = WorkerServer(spec)
        listener.bind((spec.host, spec.port))
        listener.listen(8)
        server.log.info("listening on %s:%d",
                        spec.host, listener.getsockname()[1])
        port_pipe.send(("ok", listener.getsockname()[1]))
    except Exception as exc:  # noqa: BLE001 - parent re-raises as typed error
        try:
            port_pipe.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            listener.close()
        return
    finally:
        port_pipe.close()
    try:
        server.serve_forever(listener)
    finally:
        listener.close()
