"""ASCII rendering of experiment results in the paper's shapes."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.simtime import Breakdown

_COMPONENTS = [
    ("computation", "Computation"),
    ("serialization", "Serialization"),
    ("write_io", "Write I/O"),
    ("deserialization", "Deserialization"),
    ("read_io", "Read I/O"),
]


def geometric_mean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_breakdown_table(
    rows: Mapping[str, Breakdown], title: str, time_unit: str = "ms"
) -> str:
    """Stacked-bar data as a table: one row per configuration, one column
    per runtime component (Figure 3(a) / Figure 8 shape)."""
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[time_unit]
    header = f"{'config':<24}" + "".join(
        f"{label:>16}" for _, label in _COMPONENTS
    ) + f"{'Total':>16}"
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for name, b in rows.items():
        d = b.as_dict()
        cells = "".join(f"{d[key] * scale:>16.3f}" for key, _ in _COMPONENTS)
        lines.append(f"{name:<24}{cells}{b.total * scale:>16.3f}")
    lines.append(f"(times in simulated {time_unit})")
    return "\n".join(lines)


def format_bytes_table(rows: Mapping[str, Tuple[int, int]], title: str) -> str:
    """Figure 3(b): local vs remote bytes per serializer."""
    header = f"{'serializer':<16}{'Local Bytes':>16}{'Remote Bytes':>16}{'Total':>16}"
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for name, (local, remote) in rows.items():
        lines.append(f"{name:<16}{local:>16,}{remote:>16,}{local + remote:>16,}")
    return "\n".join(lines)


def format_normalized_table(
    per_config: Mapping[str, List[Dict[str, float]]],
    title: str,
    columns: Sequence[str] = ("overall", "ser", "write", "des", "read", "size"),
) -> str:
    """Table 2 / Table 4 shape: per serializer, min~max range and geomean of
    each normalized column."""
    header = f"{'Sys':<10}" + "".join(f"{c.capitalize():>20}" for c in columns)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for system, norms in per_config.items():
        cells = []
        for col in columns:
            values = [n[col] for n in norms if math.isfinite(n[col])]
            if not values:
                cells.append(f"{'-':>20}")
                continue
            lo, hi = min(values), max(values)
            gm = geometric_mean(values)
            cells.append(f"{lo:>7.2f} ~{hi:>6.2f} ({gm:.2f})")
        lines.append(f"{system:<10}" + "".join(f"{c:>20}" for c in cells))
    return "\n".join(lines)


def format_figure7(results, time_unit: str = "us") -> str:
    """Figure 7: per-library stacked components, fastest first."""
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[time_unit]
    header = (
        f"{'library':<36}{'Network':>12}{'Deser':>12}{'Ser':>12}"
        f"{'Total':>12}{'B/obj':>10}"
    )
    lines = ["Figure 7 — JSBS serializer comparison", "=" * len(header),
             header, "-" * len(header)]
    for r in results:
        lines.append(
            f"{r.library:<36}{r.network * scale:>12.2f}"
            f"{r.deserialization * scale:>12.2f}"
            f"{r.serialization * scale:>12.2f}"
            f"{r.total * scale:>12.2f}{r.bytes_per_object:>10.0f}"
        )
    lines.append(f"(times in simulated {time_unit}, totals sorted ascending)")
    return "\n".join(lines)


def format_table1(rows: List[Dict[str, object]]) -> str:
    header = (
        f"{'Graph':<14}{'#Edges(paper)':>15}{'#Vertices(paper)':>18}"
        f"{'#Edges(gen)':>13}{'#Verts(gen)':>13}{'scale-down':>12}  Description"
    )
    lines = ["Table 1 — Graph inputs", "=" * len(header), header,
             "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['graph']:<14}{row['paper_edges']:>15,}"
            f"{row['paper_vertices']:>18,}{row['generated_edges']:>13,}"
            f"{row['generated_vertices']:>13,}{row['scale_down']:>12,}"
            f"  {row['description']}"
        )
    return "\n".join(lines)


def format_kv_section(title: str, pairs: Mapping[str, object]) -> str:
    width = max(len(k) for k in pairs) + 2
    lines = [title, "-" * len(title)]
    for key, value in pairs.items():
        if isinstance(value, float):
            lines.append(f"{key:<{width}}{value:.4g}")
        else:
            lines.append(f"{key:<{width}}{value}")
    return "\n".join(lines)
