"""Marshalling between Python values and simulated heap object graphs.

The dataflow engines compute over plain Python values for speed, but every
byte that crosses a shuffle boundary must exist as a real heap object graph
(that is what serializers and Skyway operate on).  ``to_heap`` materializes
a Python value as objects; ``from_heap`` reads a graph back.

Mapping:

==================  =========================================
Python              simulated heap
==================  =========================================
``None``            null
``bool``            ``java.lang.Boolean``
``int``             ``java.lang.Long``
``float``           ``java.lang.Double``
``str``             ``java.lang.String`` (char[] backed)
``bytes``           ``byte[]``
``tuple``           ``repro.runtime.TupleN`` (reference fields)
``list``            ``java.util.ArrayList``
``dict``            ``java.util.HashMap`` (bucketed nodes)
``Obj``             an instance of a user-registered class
==================  =========================================

``Obj`` lets workloads use domain classes (the paper's ``Date``/``Year4D``,
JSBS's ``MediaContent``, TPC-H rows) with primitive fields laid out exactly
as a Java object would be.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from repro.heap.heap import NULL
from repro.jvm.collections import ArrayListOps, HashMapOps
from repro.jvm.jvm import JVM
from repro.types import corelib, descriptors


class HeapValueError(TypeError):
    """A Python value that has no heap mapping (or vice versa)."""


@dataclasses.dataclass
class Obj:
    """A Python-side description of an instance of a registered class."""

    class_name: str
    fields: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def __getitem__(self, name: str) -> Any:
        return self.fields[name]

    def get(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)


def to_heap(jvm: JVM, value: Any, charge: bool = False) -> int:
    """Materialize ``value`` as a heap object graph; returns its address.

    ``charge`` controls whether allocations charge the cost model (engines
    charge materialization to computation; tests usually do not care).
    The returned address is only GC-stable if the caller pins it.
    """
    return _Marshaller(jvm, charge).to_heap(value)


def to_heap_many(jvm: JVM, values, charge: bool = False):
    """Materialize several values with one shared memo, so repeated
    sub-values (interned flag strings, shared keys) become shared heap
    objects — as they are in a real JVM.  Returns a list of addresses; the
    caller must pin what it keeps."""
    marshaller = _Marshaller(jvm, charge)
    try:
        return [marshaller._convert(v) for v in values]
    finally:
        for pin in marshaller._pins:
            jvm.unpin(pin)


def from_heap(jvm: JVM, address: int) -> Any:
    """Read a heap object graph back into Python values."""
    return _Unmarshaller(jvm).from_heap(address)


class _Marshaller:
    def __init__(self, jvm: JVM, charge: bool) -> None:
        self.jvm = jvm
        self.charge = charge
        self._memo: Dict[int, int] = {}  # id(py value) -> handle index
        self._pins: List[Any] = []

    def to_heap(self, value: Any) -> int:
        try:
            return self._convert(value)
        finally:
            for pin in self._pins:
                self.jvm.unpin(pin)

    def _convert(self, value: Any) -> int:
        jvm = self.jvm
        if value is None:
            return NULL
        key = id(value)
        if key in self._memo:
            return self._pins[self._memo[key]].address
        if isinstance(value, bool):
            return self._box(corelib.BOOLEAN, value)
        if isinstance(value, int):
            return self._box(corelib.LONG, value)
        if isinstance(value, float):
            return self._box(corelib.DOUBLE, value)
        if isinstance(value, str):
            return self._pin_memo(value, jvm.new_string(value, charge=self.charge))
        if isinstance(value, bytes):
            return self._byte_array(value)
        if isinstance(value, tuple):
            return self._tuple(value)
        if isinstance(value, list):
            prim = _primitive_kind(value)
            if prim is not None:
                return self._primitive_array(value, prim)
            return self._list(value)
        if isinstance(value, (set, frozenset)):
            prim = _primitive_kind(value)
            if prim is not None:
                return self._primitive_set(value, prim)
            return self._set(value)
        if isinstance(value, dict):
            return self._dict(value)
        if isinstance(value, Obj):
            return self._obj(value)
        raise HeapValueError(f"no heap mapping for {type(value).__name__}")

    def _pin_memo(self, value: Any, address: int) -> int:
        pin = self.jvm.pin(address)
        self._memo[id(value)] = len(self._pins)
        self._pins.append(pin)
        return address

    def _box(self, class_name: str, value: Any) -> int:
        addr = self.jvm.new_instance(class_name, charge=self.charge)
        self.jvm.set_field(addr, "value", value)
        return self._pin_memo(value, addr)

    def _byte_array(self, data: bytes) -> int:
        addr = self.jvm.new_array("B", len(data), charge=self.charge)
        pin_index = len(self._pins)
        self._pin_memo(data, addr)
        addr = self._pins[pin_index].address
        for i, b in enumerate(data):
            self.jvm.heap.write_element(addr, i, b - 256 if b >= 128 else b)
        return addr

    def _tuple(self, value: Tuple[Any, ...]) -> int:
        signature = _specialization_of(value)
        if signature is not None:
            return self._specialized_tuple(value, signature)
        name = corelib.tuple_class_name(len(value))
        addr = self.jvm.new_instance(name, charge=self.charge)
        idx = len(self._pins)
        self._pin_memo(value, addr)
        for i, item in enumerate(value):
            item_addr = self._convert(item)
            self.jvm.set_field(self._pins[idx].address, f"f{i}", item_addr)
        return self._pins[idx].address

    def _specialized_tuple(self, value: Tuple[Any, ...], signature: str) -> int:
        """Scala-style specialized tuple: primitive fields, no boxes."""
        name = corelib.specialized_tuple_name(signature)
        addr = self.jvm.new_instance(name, charge=self.charge)
        idx = len(self._pins)
        self._pin_memo(value, addr)
        for i, (letter, item) in enumerate(zip(signature, value)):
            if letter == "L":
                item_addr = self._convert(item)
                self.jvm.set_field(self._pins[idx].address, f"f{i}", item_addr)
            else:
                self.jvm.set_field(self._pins[idx].address, f"f{i}", item)
        return self._pins[idx].address

    def _primitive_array(self, value, kind: str) -> int:
        """Homogeneous numeric lists become primitive arrays (long[] /
        double[]) — how Spark/GraphX actually represents adjacency and
        rank data on the heap."""
        items = list(value)
        addr = self.jvm.new_array(kind, len(items), charge=self.charge)
        idx = len(self._pins)
        self._pin_memo(value, addr)
        arr = self._pins[idx].address
        for i, item in enumerate(items):
            self.jvm.heap.write_element(arr, i, item)
        return arr

    def _primitive_set(self, value, kind: str) -> int:
        wrapper_name = corelib.LONGSET if kind == "J" else corelib.DOUBLESET
        addr = self.jvm.new_instance(wrapper_name, charge=self.charge)
        idx = len(self._pins)
        self._pin_memo(value, addr)
        items = sorted(value)
        arr = self.jvm.new_array(kind, len(items), charge=self.charge)
        self.jvm.set_field(self._pins[idx].address, "elements", arr)
        for i, item in enumerate(items):
            self.jvm.heap.write_element(arr, i, item)
        return self._pins[idx].address

    def _list(self, value: List[Any]) -> int:
        ops = ArrayListOps(self.jvm)
        addr = ops.new(capacity=max(1, len(value)))
        idx = len(self._pins)
        self._pin_memo(value, addr)
        for item in value:
            item_addr = self._convert(item)
            ops.append(self._pins[idx].address, item_addr)
        return self._pins[idx].address

    def _set(self, value) -> int:
        """Sets become java.util.HashSet: an element array in sorted-repr
        order (deterministic layout for byte-level comparisons)."""
        jvm = self.jvm
        ordered = sorted(value, key=repr)
        addr = jvm.new_instance(corelib.HASHSET, charge=self.charge)
        idx = len(self._pins)
        self._pin_memo(value, addr)
        data = jvm.new_array("Ljava.lang.Object;", max(1, len(ordered)))
        jvm.set_field(self._pins[idx].address, "elementData", data)
        jvm.set_field(self._pins[idx].address, "size", len(ordered))
        for i, item in enumerate(ordered):
            item_addr = self._convert(item)
            arr = jvm.get_field(self._pins[idx].address, "elementData")
            jvm.heap.write_element(arr, i, item_addr)
        return self._pins[idx].address

    def _dict(self, value: Dict[Any, Any]) -> int:
        ops = HashMapOps(self.jvm)
        addr = ops.new(capacity=max(4, int(len(value) / 0.75) + 1))
        idx = len(self._pins)
        self._pin_memo(value, addr)
        for k, v in value.items():
            k_addr = self._convert(k)
            k_pin = self.jvm.pin(k_addr)
            v_addr = self._convert(v)
            ops.put(self._pins[idx].address, k_pin.address, v_addr)
            self.jvm.unpin(k_pin)
        return self._pins[idx].address

    def _obj(self, value: Obj) -> int:
        jvm = self.jvm
        klass = jvm.loader.load(value.class_name)
        addr = jvm.new_instance(value.class_name, charge=self.charge)
        idx = len(self._pins)
        self._pin_memo(value, addr)
        for field_name, field_value in value.fields.items():
            field = klass.field(field_name)
            if descriptors.is_reference(field.descriptor):
                ref = self._convert(field_value)
                jvm.set_field(self._pins[idx].address, field_name, ref)
            else:
                jvm.set_field(self._pins[idx].address, field_name, field_value)
        return self._pins[idx].address


def _primitive_kind(values) -> "Optional[str]":
    """``"J"``/``"D"`` when every element is a plain int/float (bool
    excluded), else None."""
    items = list(values)
    if not items:
        return None
    if all(type(v) is int for v in items):
        return "J"
    if all(type(v) is float for v in items):
        return "D"
    return None


def _specialization_of(value: Tuple[Any, ...]):
    """The specialized signature for a tuple, or None for the generic class.

    bool is excluded (it would round-trip as int); a tuple qualifies when
    at least one field is a primitive int/float and arity is small.
    """
    if not 1 <= len(value) <= corelib.SPECIALIZED_ARITY_LIMIT:
        return None
    letters = []
    for item in value:
        if isinstance(item, bool):
            return None
        if isinstance(item, int):
            letters.append("J")
        elif isinstance(item, float):
            letters.append("D")
        else:
            letters.append("L")
    signature = "".join(letters)
    if signature == "L" * len(value):
        return None
    return signature


class _Unmarshaller:
    def __init__(self, jvm: JVM) -> None:
        self.jvm = jvm
        self._memo: Dict[int, Any] = {}

    def from_heap(self, address: int) -> Any:
        jvm = self.jvm
        if address == NULL:
            return None
        if address in self._memo:
            return self._memo[address]
        klass = jvm.klass_of(address)
        name = klass.name

        if name == corelib.STRING:
            value = jvm.read_string(address)
            self._memo[address] = value
            return value
        if name == corelib.BOOLEAN:
            value = bool(jvm.get_field(address, "value"))
            self._memo[address] = value
            return value
        if name in (corelib.INTEGER, corelib.LONG):
            value = int(jvm.get_field(address, "value"))
            self._memo[address] = value
            return value
        if name == corelib.DOUBLE:
            value = float(jvm.get_field(address, "value"))
            self._memo[address] = value
            return value
        if name == corelib.ARRAYLIST:
            result: List[Any] = []
            self._memo[address] = result
            ops = ArrayListOps(jvm)
            for item in ops.items(address):
                result.append(self.from_heap(item))
            return result
        if name in (corelib.LONGSET, corelib.DOUBLESET):
            arr = jvm.get_field(address, "elements")
            length = jvm.heap.array_length(arr) if arr else 0
            items = frozenset(
                jvm.heap.read_element(arr, i) for i in range(length)
            )
            self._memo[address] = items
            return items
        if name == corelib.HASHSET:
            size = jvm.get_field(address, "size")
            data = jvm.get_field(address, "elementData")
            items = [
                self.from_heap(jvm.heap.read_element(data, i)) for i in range(size)
            ]
            result = frozenset(items)
            self._memo[address] = result
            return result
        if name == corelib.HASHMAP:
            mapping: Dict[Any, Any] = {}
            self._memo[address] = mapping
            ops = HashMapOps(jvm)
            for k, v in ops.entries(address):
                mapping[self.from_heap(k)] = self.from_heap(v)
            return mapping
        if name.startswith(corelib.TUPLE_PREFIX):
            suffix = name[len(corelib.TUPLE_PREFIX):]
            if "$" in suffix:
                _, signature = suffix.split("$", 1)
                items_list = []
                for i, letter in enumerate(signature):
                    raw = jvm.get_field(address, f"f{i}")
                    if letter == "L":
                        items_list.append(self.from_heap(raw))
                    elif letter == "D":
                        items_list.append(float(raw))
                    else:
                        items_list.append(int(raw))
                items = tuple(items_list)
                self._memo[address] = items
                return items
            arity = int(suffix)
            items = tuple(
                self.from_heap(jvm.get_field(address, f"f{i}")) for i in range(arity)
            )
            self._memo[address] = items
            return items
        if klass.is_array:
            return self._array(address, klass)
        return self._obj(address, klass)

    def _array(self, address: int, klass) -> Any:
        jvm = self.jvm
        length = jvm.heap.array_length(address)
        elem = klass.element_descriptor
        if elem == "B":
            raw = bytes(
                (jvm.heap.read_element(address, i)) & 0xFF for i in range(length)
            )
            self._memo[address] = raw
            return raw
        items: List[Any] = []
        self._memo[address] = items
        for i in range(length):
            value = jvm.heap.read_element(address, i)
            if descriptors.is_reference(elem or ""):
                items.append(self.from_heap(value))
            else:
                items.append(value)
        return items

    def _obj(self, address: int, klass) -> Obj:
        jvm = self.jvm
        result = Obj(klass.name, {})
        self._memo[address] = result
        for field in klass.all_fields():
            raw = jvm.heap.read_field(address, field)
            if descriptors.is_reference(field.descriptor):
                result.fields[field.name] = self.from_heap(raw)
            else:
                result.fields[field.name] = raw
        return result
