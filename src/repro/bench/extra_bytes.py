"""The §5.2 extra-bytes analysis.

"To understand what constitutes the extra bytes produced by Skyway, we
analyzed these bytes for our Spark applications.  Our results show that, on
average, object headers take 51%, object paddings take 34%, and the
remaining 15% are taken by pointers."

The reproduction sends each Spark workload's record population through a
real Skyway stream and decomposes the transferred image into header,
pointer, primitive-data, and padding bytes (counters maintained by the
sender); the "extra" bytes are everything that a compact field-only
encoding would not carry — headers, padding, and pointers.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bench.memory import _workload_records
from repro.core.runtime import attach_skyway
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.jvm.jvm import JVM
from repro.jvm.marshal import to_heap
from repro.types.corelib import standard_classpath


def measure_extra_byte_composition(
    apps: Tuple[str, ...] = ("WC", "PR", "CC", "TC"),
    scale: float = 0.15,
) -> Dict[str, Dict[str, float]]:
    """Per app: fractions of the *extra* (non-data) bytes taken by headers,
    padding, and pointers, plus the data fraction of the total image."""
    out: Dict[str, Dict[str, float]] = {}
    for app in apps:
        classpath = standard_classpath()
        src = JVM(f"{app}-src", classpath=classpath,
                  old_bytes=192 * 1024 * 1024)
        dst = JVM(f"{app}-dst", classpath=classpath,
                  old_bytes=192 * 1024 * 1024)
        attach_skyway(src, [dst])
        records = _workload_records(app, scale)
        pins = [src.pin(to_heap(src, record)) for record in records]
        stream = SkywayObjectOutputStream(src.skyway, destination="probe")
        for pin in pins:
            stream.write_object(pin.address)
        data = stream.close()
        reader = SkywayObjectInputStream(dst.skyway)
        reader.accept(data)  # exercise the receive path too

        sender = stream.sender
        extra = sender.header_bytes + sender.padding_bytes + sender.pointer_bytes
        out[app] = {
            "headers": sender.header_bytes / extra,
            "padding": sender.padding_bytes / extra,
            "pointers": sender.pointer_bytes / extra,
            "data_fraction_of_total": sender.data_bytes / sender.bytes_sent,
            "total_bytes": float(sender.bytes_sent),
        }
    return out


def average_composition(per_app: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    keys = ("headers", "padding", "pointers")
    return {
        key: sum(v[key] for v in per_app.values()) / len(per_app)
        for key in keys
    }
