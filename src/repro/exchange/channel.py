"""The ``GraphChannel`` protocol: one stateful sender per destination.

Every send mode in the repo — plain full streams, compiled-kernel clones,
epoch deltas, compact headers — is a *capability* of one channel type, not
a separate code path.  A channel is opened with requested capabilities,
negotiates them against its substrate's offer, and its ``send(roots)``
ships one epoch, returning a :class:`SendReceipt` that says what traveled
(mode, bytes, receiver roots, digest) however it traveled.

Both substrate implementations delegate the epoch protocol itself to
:class:`~repro.delta.channel.DeltaSendChannel` — full-only channels are
delta channels with the tracker disabled, so FULL framing, epoch numbering
and channel-id routing stay one implementation across substrates (which is
also what makes cross-substrate byte parity checkable at all).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.delta.channel import DeltaSendChannel
from repro.delta.policy import ChannelStats, EpochDecision
from repro.exchange.capabilities import ChannelCapabilities
from repro.exchange.errors import ExchangeError
from repro.exchange.metrics import ExchangeMetrics
from repro.policy import PolicyEngine, SendPlan
from repro.simtime import Category


@dataclasses.dataclass
class SendReceipt:
    """What one ``send()`` shipped and what the receiver now holds."""

    mode: str  # "full" | "delta"
    reason: str  # the EpochDecision reason
    epoch: int
    wire_bytes: int
    #: The framed epoch bytes as produced by the sender (the *last* frame
    #: when a NACK forced a resend) — the cross-substrate parity handle.
    frame: bytes
    #: Receiver-heap root addresses (empty for an unbound channel).
    roots: Tuple[int, ...] = ()
    #: Semantic graph digest of the receiver's roots, when requested.
    digest: Optional[str] = None
    #: True when this send hit a staleness NACK and recovered with a
    #: forced FULL resend (wire_bytes then counts both frames).
    nack_recovered: bool = False
    #: The substrate's raw receive result (the worker's RESULT payload on
    #: sockets; None on loopback).
    result: Optional[dict] = None
    #: The engine's (clamped) decision this send executed — mode, reason,
    #: streams, digest/compact knobs and the signals that drove it.
    plan: Optional[SendPlan] = None


_obs_source_ids = itertools.count(1)


class GraphChannel:
    """Base of both substrate channels: negotiation + shared bookkeeping."""

    substrate = "abstract"

    def __init__(
        self,
        destination: str,
        requested: ChannelCapabilities,
        offered: ChannelCapabilities,
    ) -> None:
        # Negotiation grants the union of what both sides can do; whether
        # a given epoch *uses* a capability (compact headers, kernels,
        # parallel streams) is the policy plane's call — SendPlan.clamp()
        # bounds each plan by these capabilities per epoch.
        caps = requested.intersect(offered)
        self.destination = destination
        self.requested = requested
        self.offered = offered
        self.capabilities = caps
        self.sends = 0
        self.wire_bytes = 0
        self.nack_recoveries = 0
        self._sim_totals: Dict[Category, float] = {}
        self._channel: Optional[DeltaSendChannel] = None  # set by subclass
        self._closed = False
        #: Feed this channel's ExchangeMetrics into the obs registry;
        #: deregistered on close() so no registry entry outlives the
        #: channel (the PR 4 release_channel lifecycle, mirrored).
        self._obs_source = (
            f"exchange.{self.substrate}.{destination}"
            f"#{next(_obs_source_ids)}"
        )
        obs.registry().register_source(self._obs_source, self._obs_metrics)

    def _obs_metrics(self) -> Dict[str, object]:
        if self._closed or self._channel is None:
            return {"closed": True}
        return self.metrics().as_dict()

    # -- the protocol -------------------------------------------------------

    def send(self, roots: Sequence[int], **kwargs) -> SendReceipt:
        with obs.span("exchange.send", substrate=self.substrate,
                      destination=self.destination) as sp:
            receipt = self._send_impl(roots, **kwargs)
            sp.set(mode=receipt.mode, epoch=receipt.epoch,
                   wire_bytes=receipt.wire_bytes,
                   nack=receipt.nack_recovered)
        return receipt

    def _send_impl(self, roots: Sequence[int], **kwargs) -> SendReceipt:
        raise NotImplementedError

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        obs.registry().deregister_source(self._obs_source)
        if self._channel is not None:
            self._channel.close()

    # -- shared bookkeeping -------------------------------------------------

    def _require_open(self) -> DeltaSendChannel:
        if self._closed or self._channel is None:
            raise ExchangeError(
                f"channel to {self.destination!r} is closed"
            )
        return self._channel

    def _note_sim(self, deltas: Dict[Category, float]) -> None:
        for category, seconds in deltas.items():
            if seconds:
                self._sim_totals[category] = (
                    self._sim_totals.get(category, 0.0) + seconds
                )

    def _account_send(self, receipt: SendReceipt) -> SendReceipt:
        self.sends += 1
        self.wire_bytes += receipt.wire_bytes
        if receipt.nack_recovered:
            self.nack_recoveries += 1
        reg = obs.registry()
        labels = dict(substrate=self.substrate,
                      destination=self.destination)
        reg.counter("exchange.sends", **labels)
        reg.gauge("exchange.bytes_per_epoch",
                  self.wire_bytes / self.sends, **labels)
        if receipt.plan is not None:
            reg.gauge("exchange.mutation_rate",
                      receipt.plan.mutation_rate, **labels)
        return receipt

    # -- introspection ------------------------------------------------------

    @property
    def channel_id(self) -> int:
        return self._require_open().channel_id

    @property
    def epoch(self) -> int:
        return self._require_open().epoch

    @property
    def last_decision(self) -> Optional[EpochDecision]:
        return self._require_open().last_decision

    @property
    def last_plan(self) -> Optional[SendPlan]:
        return self._require_open().last_plan

    @property
    def engine(self) -> PolicyEngine:
        return self._require_open().engine

    @property
    def stats(self) -> ChannelStats:
        return self._require_open().stats

    def plan_next(self, roots: Sequence[int]) -> SendPlan:
        """Decide (and cache) the next epoch's plan without sending —
        the dispatch hook that lets a caller route ``parallel-N`` plans
        to the multi-stream sender instead."""
        return self._require_open().plan_next(list(roots))

    def discard_plan(self) -> None:
        self._require_open().discard_plan()

    def force_full_next(self) -> None:
        self._require_open().force_full_next()

    def metrics(self) -> ExchangeMetrics:
        """The unified snapshot: sim breakdown + delta stats (+ transport
        counters on substrates that have a wire)."""
        channel = self._require_open()
        return ExchangeMetrics.build(
            substrate=self.substrate,
            destination=self.destination,
            channel_id=channel.channel_id,
            capabilities=self.capabilities.as_dict(),
            sends=self.sends,
            wire_bytes=self.wire_bytes,
            nack_recoveries=self.nack_recoveries,
            sim_totals=self._sim_totals,
            stats=channel.stats,
            transport=self._transport_dict(),
            last_plan=(channel.last_plan.as_dict()
                       if channel.last_plan is not None else None),
        )

    def _transport_dict(self) -> Optional[Dict[str, object]]:
        return None


def collect_roots(roots: Sequence[int]) -> List[int]:
    out = list(roots)
    if not out:
        raise ExchangeError("send() needs at least one root")
    return out
