"""B-EXCHANGE — one exchange layer, every substrate, measured end to end.

The refactor's contract is that a :class:`~repro.exchange.channel
.GraphChannel` behaves identically whichever substrate carries it: the
in-process loopback and a spawned socket worker must frame *byte-identical*
epochs for the same sends, and the receiving heaps must agree digest-wise
whether an epoch arrived FULL or as a DELTA patch.  This experiment holds
that contract as a measurement:

* one driver runtime, one heap-resident vertex graph per mutation rate;
* four channels per rate — {delta, full-only} x {loopback, socket} — with
  channel ids *pinned pairwise* so the two substrates frame the same ids;
* epoch 1 bootstraps all four (always FULL), one PageRank superstep
  mutates ``rate`` of the vertices, epoch 2 is the measured send.

The socket wire is paced to a configurable Mb/s (loopback TCP would hide
the transfer-size difference), so the headline numbers are real wall-clock:
at low mutation rates the DELTA epoch must beat the FULL epoch in wire
bytes *and* seconds; at 100% mutation the policy's fallback shows up as a
FULL epoch and no win is claimed.  ``exchange_checks_pass`` is the CI gate
over all of it — byte parity, digest parity, and the delta win.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.apps.incremental import IncrementalPageRank, build_vertex_graph
from repro.core.runtime import SkywayRuntime
from repro.exchange import (
    ChannelCapabilities,
    LoopbackGraphChannel,
    SocketGraphChannel,
)
from repro.jvm.jvm import JVM
from repro.transport import WorkerClient, WorkerHandle, WorkerSpec
from repro.transport.bootstrap import MB, build_runtime
from repro.transport.testing import SAMPLE_FACTORY, sample_worker_classpath

DEFAULT_VERTICES = 4_000
#: Slow enough that the FULL epoch's wire time dominates its serialization
#: time — the regime where transfer size decides wall-clock (the testbed
#: Ethernet's role in the paper, scaled to this reproduction's encoder).
DEFAULT_WIRE_MBPS = 4.0
SMOKE_VERTICES = 800
DEFAULT_RATES = (0.01, 0.10, 1.0)

#: Delta channels request the full epoch protocol; full-only channels
#: decline the delta capability, which routes every epoch through FULL
#: framing on the same channel implementation (no separate code path).
DELTA_REQUEST = ChannelCapabilities(kernel=True, delta=True)
FULL_REQUEST = ChannelCapabilities(kernel=True, delta=False)


def irregular_edges(n: int) -> List[tuple]:
    """A ring plus quadratic chords: deterministic, connected, and with
    *varying* in-degrees — a uniform ring-and-permutation graph is already
    PageRank's fixpoint, so nothing would ever mutate."""
    return ([(i, (i + 1) % n) for i in range(n)]
            + [(i, (i * i + 1) % n) for i in range(n)])


def _loopback_receiver(driver: SkywayRuntime, tag: str) -> SkywayRuntime:
    """A fresh in-process receiving runtime, classpath-identical to the
    socket worker so both substrates translate to the same layout."""
    jvm = JVM(f"exchange-recv-{tag}", classpath=sample_worker_classpath(),
              old_bytes=512 * MB)
    return SkywayRuntime(jvm, driver.driver_registry, is_driver=False)


def _timed_send(channel, roots) -> Dict[str, object]:
    started = time.perf_counter()
    receipt = channel.send(roots, digest=True)
    return {
        "seconds": time.perf_counter() - started,
        "receipt": receipt,
    }


def _run_rate(
    driver: SkywayRuntime,
    client: WorkerClient,
    vertices: int,
    rate: float,
    index: int,
    wire_mbps: Optional[float],
) -> Dict[str, object]:
    """One mutation rate: four channels, two epochs, all cross-checks."""
    edges = irregular_edges(vertices)
    pin = driver.jvm.pin(build_vertex_graph(driver.jvm, edges))
    graph = pin.address
    pagerank = IncrementalPageRank(driver.jvm, graph)
    receiver = _loopback_receiver(driver, f"{index}")

    # Pinned pairwise ids: the loopback and socket member of each pair
    # frame the same channel id (and, with one shared sender heap, the
    # same bytes); the delta and full pairs stay distinct per receiver.
    delta_id = 9_000 + index * 10 + 1
    full_id = 9_000 + index * 10 + 2
    dest = f"exchange-bench-{index}"
    channels = {
        "loop_delta": LoopbackGraphChannel(
            driver, destination=dest, requested=DELTA_REQUEST,
            receiver_runtime=receiver, channel_id=delta_id),
        "loop_full": LoopbackGraphChannel(
            driver, destination=dest, requested=FULL_REQUEST,
            receiver_runtime=receiver, channel_id=full_id),
        "sock_delta": SocketGraphChannel(
            driver, client, requested=DELTA_REQUEST, channel_id=delta_id,
            destination=dest, throttle_mbps=wire_mbps),
        "sock_full": SocketGraphChannel(
            driver, client, requested=FULL_REQUEST, channel_id=full_id,
            destination=dest, throttle_mbps=wire_mbps),
    }
    try:
        # Epoch 1: bootstrap (always FULL), untimed — it warms both heaps
        # and pins the parity baseline.
        epoch1 = {name: ch.send([graph], digest=True)
                  for name, ch in channels.items()}
        mutated = pagerank.step(active_fraction=rate)
        # Epoch 2: the measured epoch.  Loopback first (no wire to time),
        # then the paced socket sends, each wall-clocked.
        epoch2 = {
            "loop_delta": channels["loop_delta"].send([graph], digest=True),
            "loop_full": channels["loop_full"].send([graph], digest=True),
        }
        timed = {
            "sock_delta": _timed_send(channels["sock_delta"], [graph]),
            "sock_full": _timed_send(channels["sock_full"], [graph]),
        }
        epoch2["sock_delta"] = timed["sock_delta"]["receipt"]
        epoch2["sock_full"] = timed["sock_full"]["receipt"]

        frames_identical = all(
            epoch[f"loop_{kind}"].frame == epoch[f"sock_{kind}"].frame
            for epoch in (epoch1, epoch2)
            for kind in ("delta", "full")
        )
        digests = {epoch2[name].digest for name in epoch2}
        digests_identical = (
            len({r.digest for r in epoch1.values()}) == 1
            and len(digests) == 1
            and None not in digests
        )
        delta_seconds = timed["sock_delta"]["seconds"]
        full_seconds = timed["sock_full"]["seconds"]
        decision = epoch2["sock_delta"]
        row = {
            "mutation_fraction": rate,
            "vertices": vertices,
            "vertices_mutated": mutated,
            "delta_mode": decision.mode,
            "delta_reason": decision.reason,
            "delta_wire_bytes": decision.wire_bytes,
            "full_wire_bytes": epoch2["sock_full"].wire_bytes,
            "bytes_ratio": (epoch2["sock_full"].wire_bytes
                            / decision.wire_bytes),
            "delta_seconds": round(delta_seconds, 4),
            "full_seconds": round(full_seconds, 4),
            "time_ratio": round(full_seconds / delta_seconds, 3),
            "frames_byte_identical": frames_identical,
            "digests_identical": digests_identical,
            "nack_recovered": any(r.nack_recovered for r in epoch2.values()),
        }
        if index == 0:
            # One unified metrics snapshot per substrate, to show the
            # merged ledger (sim breakdown + delta stats + wire counters).
            row["metrics"] = {
                "loopback": channels["loop_delta"].metrics().as_dict(),
                "socket": channels["sock_delta"].metrics().as_dict(),
            }
        return row
    finally:
        for channel in channels.values():
            channel.close()
        driver.jvm.unpin(pin)


def run_exchange_experiment(
    vertices: int = DEFAULT_VERTICES,
    mutation_rates: Sequence[float] = DEFAULT_RATES,
    wire_mbps: Optional[float] = DEFAULT_WIRE_MBPS,
    smoke: bool = False,
) -> Dict[str, object]:
    """Returns a JSON-serializable result dict (see module docstring)."""
    if smoke:
        vertices = min(vertices, SMOKE_VERTICES)
    handle = WorkerHandle.spawn(WorkerSpec(
        name="exchange-worker", classpath_factory=SAMPLE_FACTORY,
        old_bytes=512 * MB, read_timeout=300.0,
    ))
    driver = build_runtime("exchange-driver", SAMPLE_FACTORY,
                           old_bytes=512 * MB)
    client = WorkerClient(driver, handle.host, handle.port,
                          read_timeout=300.0).connect()
    try:
        rows = [
            _run_rate(driver, client, vertices, rate, i, wire_mbps)
            for i, rate in enumerate(mutation_rates)
        ]
        return {
            "vertices": vertices,
            "wire_mbps": wire_mbps,
            "smoke": smoke,
            "rows": rows,
            "worker_epochs_received": client.stats().get("epochs_received"),
            "checks": _checks(rows),
        }
    finally:
        try:
            client.shutdown_worker()
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass
        client.close()
        handle.stop()


def _checks(rows: List[Dict[str, object]]) -> Dict[str, bool]:
    low = [r for r in rows if float(r["mutation_fraction"]) <= 0.10]
    return {
        "frames_byte_identical": all(r["frames_byte_identical"]
                                     for r in rows),
        "digests_identical": all(r["digests_identical"] for r in rows),
        "delta_mode_at_low_mutation": all(r["delta_mode"] == "delta"
                                          for r in low),
        "delta_beats_full_bytes": all(
            r["delta_wire_bytes"] < r["full_wire_bytes"] for r in low),
        "delta_beats_full_seconds": all(
            r["delta_seconds"] < r["full_seconds"] for r in low),
    }


def exchange_checks_pass(result: Dict[str, object]) -> bool:
    return all(result["checks"].values())


def format_exchange_report(result: Dict[str, object]) -> str:
    lines = [
        "B-EXCHANGE — delta vs full epochs over the paced socket wire, "
        "with loopback parity",
        f"  graph: {result['vertices']} vertices per rate; wire paced to "
        f"{result['wire_mbps']} Mb/s",
        f"  worker epochs received: {result['worker_epochs_received']}",
        "",
        f"  {'mutated':>8} {'mode':<6} {'delta_B':>9} {'full_B':>9} "
        f"{'B_ratio':>8} {'delta_s':>8} {'full_s':>8} {'t_ratio':>8} "
        f"{'parity':>7}",
    ]
    for row in result["rows"]:
        parity = ("ok" if row["frames_byte_identical"]
                  and row["digests_identical"] else "FAIL")
        lines.append(
            f"  {row['mutation_fraction']:>7.0%} {row['delta_mode']:<6} "
            f"{row['delta_wire_bytes']:>9} {row['full_wire_bytes']:>9} "
            f"{row['bytes_ratio']:>7.1f}x {row['delta_seconds']:>8.3f} "
            f"{row['full_seconds']:>8.3f} {row['time_ratio']:>7.2f}x "
            f"{parity:>7}"
        )
    checks = result["checks"]
    lines += [
        "",
        "  checks: " + "  ".join(
            f"{name}={'pass' if ok else 'FAIL'}"
            for name, ok in checks.items()
        ),
    ]
    return "\n".join(lines)
