"""Delta-aware heap broadcast: iterative state shipped as epochs.

Spark's stock broadcast (``SparkContext.broadcast``) re-serializes the
whole value every time it is called — fine for read-only lookup tables,
wasteful for iterative algorithms whose shared state changes a little per
superstep (PageRank ranks, connected-components labels).

:class:`DeltaHeapBroadcast` keeps the authoritative copy of the value *on
the driver heap* and maintains one
:class:`~repro.delta.channel.DeltaSendChannel` per worker.  Each
``push()`` ships one epoch to every worker: FULL the first time, DELTA
thereafter — only the objects mutated through the heap write barrier since
the previous push travel the wire.  Receivers patch their retained input
buffers in place, so the worker-side address of the value is stable across
epochs (``value_on(worker)`` keeps returning the same root).

Staleness is handled like a NACK: if a worker raises
:class:`~repro.delta.channel.DeltaStaleError` (its old generation was
compacted, or it lost channel state), the driver forces that channel full
and resends the whole graph once.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.delta.channel import (
    DeltaReceiveEndpoint,
    DeltaSendChannel,
    DeltaStaleError,
)
from repro.delta.policy import ChannelStats, DeltaPolicy
from repro.net.cluster import Cluster, Node
from repro.simtime import Category


@dataclasses.dataclass
class PushReport:
    """What one ``push()`` epoch cost, per worker and in total."""

    epoch: int
    wire_bytes: int
    modes: Dict[str, str]  # worker name -> "full" | "delta"
    resends: int  # stale-channel full resends this push


class DeltaHeapBroadcast:
    """A driver-heap value broadcast incrementally to every worker."""

    def __init__(
        self,
        cluster: Cluster,
        root: int,
        policy: Optional[DeltaPolicy] = None,
    ) -> None:
        driver = cluster.driver
        runtime = driver.jvm.skyway
        if runtime is None:
            raise RuntimeError(
                "delta broadcast needs Skyway attached to the cluster "
                "(repro.core.attach_skyway)"
            )
        self.cluster = cluster
        self.root = root
        self._pin = driver.jvm.pin(root)
        self._channels: Dict[str, DeltaSendChannel] = {
            worker.name: DeltaSendChannel(
                runtime, destination=worker.name, policy=policy
            )
            for worker in cluster.workers
        }
        self._worker_roots: Dict[str, int] = {}
        self.pushes: List[PushReport] = []

    # ------------------------------------------------------------------
    # shipping
    # ------------------------------------------------------------------

    def push(self) -> PushReport:
        """Ship one epoch of the value to every worker."""
        driver = self.cluster.driver
        total = 0
        modes: Dict[str, str] = {}
        resends = 0
        epoch = 0
        for worker in self.cluster.workers:
            channel = self._channels[worker.name]
            sent = self._push_one(driver, worker, channel)
            if sent < 0:  # stale: forced full resend happened
                resends += 1
                sent = -sent
            total += sent
            modes[worker.name] = self._channels[worker.name].last_decision.mode
            epoch = channel.epoch
        report = PushReport(
            epoch=epoch, wire_bytes=total, modes=modes, resends=resends
        )
        self.pushes.append(report)
        return report

    def _push_one(self, driver: Node, worker: Node,
                  channel: DeltaSendChannel) -> int:
        with driver.clock.phase(Category.SERIALIZATION):
            frame = channel.send([self.root])
        try:
            self._deliver(driver, worker, frame)
            return len(frame)
        except DeltaStaleError:
            # NACK: rebuild the worker's copy with one forced full send.
            channel.force_full_next()
            with driver.clock.phase(Category.SERIALIZATION):
                frame = channel.send([self.root])
            self._deliver(driver, worker, frame)
            return -len(frame)

    def _deliver(self, driver: Node, worker: Node, frame: bytes) -> None:
        self.cluster.transfer(driver, worker, len(frame))
        endpoint = DeltaReceiveEndpoint.for_runtime(worker.jvm.skyway)
        with worker.clock.phase(Category.DESERIALIZATION):
            roots = endpoint.receive(frame)
        self._worker_roots[worker.name] = roots[0]

    # ------------------------------------------------------------------
    # reading / accounting
    # ------------------------------------------------------------------

    def value_on(self, worker: Node) -> int:
        """The worker-heap address of the broadcast value (stable across
        delta epochs; changes only when a full resend rebuilds it)."""
        try:
            return self._worker_roots[worker.name]
        except KeyError:
            raise RuntimeError(
                f"no epoch pushed to {worker.name} yet; call push() first"
            ) from None

    @property
    def wire_bytes(self) -> int:
        return sum(report.wire_bytes for report in self.pushes)

    def channel_stats(self) -> Dict[str, ChannelStats]:
        return {name: ch.stats for name, ch in self._channels.items()}

    def close(self) -> None:
        """Unpin the driver copy and detach every channel's card table."""
        self.cluster.driver.jvm.unpin(self._pin)
        for channel in self._channels.values():
            channel.close()
