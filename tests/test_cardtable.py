"""Tests for the old-generation card table."""

import pytest

from repro.heap.cardtable import CardTable


@pytest.fixture
def table():
    return CardTable(start=0x1000, end=0x1000 + 8 * 512, card_size=512)


class TestMarking:
    def test_initially_clean(self, table):
        assert table.dirty_count == 0
        assert not table.is_dirty(0x1000)

    def test_mark_single(self, table):
        table.mark(0x1000 + 513)
        assert table.is_dirty(0x1000 + 512)
        assert not table.is_dirty(0x1000)

    def test_mark_out_of_span(self, table):
        with pytest.raises(ValueError):
            table.mark(0x999)

    def test_mark_range_spans_cards(self, table):
        table.mark_range(0x1000 + 500, 600)  # crosses card 0 -> 2
        assert table.is_dirty(0x1000)
        assert table.is_dirty(0x1000 + 512)
        assert table.is_dirty(0x1000 + 1024)
        assert table.dirty_count == 3

    def test_mark_range_zero_bytes_noop(self, table):
        table.mark_range(0x1000, 0)
        assert table.dirty_count == 0

    def test_clear(self, table):
        table.mark(0x1000)
        table.clear()
        assert table.dirty_count == 0


class TestDirtyRanges:
    def test_empty(self, table):
        assert list(table.dirty_ranges()) == []

    def test_single_run(self, table):
        table.mark(0x1000 + 512)
        table.mark(0x1000 + 1024)
        ranges = list(table.dirty_ranges())
        assert ranges == [(0x1000 + 512, 0x1000 + 1536)]

    def test_two_runs(self, table):
        table.mark(0x1000)
        table.mark(0x1000 + 1536)
        ranges = list(table.dirty_ranges())
        assert len(ranges) == 2

    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            CardTable(0, 1024, card_size=500)


class TestBoundarySemantics:
    """Edge semantics the delta tracker depends on: end-exclusive spans,
    exact card-boundary ranges, and coalescing of adjacent dirty runs."""

    def test_mark_range_ending_on_boundary_excludes_next_card(self, table):
        table.mark_range(0x1000, 512)  # [0x1000, 0x1200): exactly card 0
        assert table.is_dirty(0x1000)
        assert not table.is_dirty(0x1000 + 512)
        assert table.dirty_count == 1

    def test_mark_range_starting_on_boundary(self, table):
        table.mark_range(0x1000 + 512, 1)
        assert not table.is_dirty(0x1000)
        assert table.is_dirty(0x1000 + 512)

    def test_one_byte_at_last_byte_of_card(self, table):
        table.mark_range(0x1000 + 511, 1)
        assert table.is_dirty(0x1000)
        assert not table.is_dirty(0x1000 + 512)

    def test_two_byte_range_straddling_boundary(self, table):
        table.mark_range(0x1000 + 511, 2)
        assert table.dirty_count == 2

    def test_end_address_is_exclusive(self, table):
        end = 0x1000 + 8 * 512
        with pytest.raises(ValueError):
            table.mark(end)
        table.mark(end - 1)  # last valid byte
        assert table.is_dirty(end - 1)

    def test_mark_range_clamped_at_table_end(self, table):
        end = 0x1000 + 8 * 512
        table.mark_range(end - 16, 4096)  # extends far past the span
        assert table.is_dirty(end - 1)
        assert table.dirty_count == 1

    def test_negative_length_is_noop(self, table):
        table.mark_range(0x1000, -8)
        assert table.dirty_count == 0

    def test_dirty_ranges_coalesce_adjacent_cards(self, table):
        table.mark_range(0x1000 + 500, 600)  # cards 0-2
        table.mark(0x1000 + 1600)  # card 3, adjacent to the run
        assert list(table.dirty_ranges()) == [(0x1000, 0x1000 + 2048)]

    def test_dirty_ranges_clamped_to_end_on_partial_last_card(self):
        table = CardTable(start=0, end=100, card_size=64)  # 2 cards, torn
        table.mark_range(90, 5)
        assert list(table.dirty_ranges()) == [(64, 100)]

    def test_dirty_ranges_end_exclusive_ranges(self, table):
        table.mark(0x1000)
        ((start, end),) = table.dirty_ranges()
        assert (start, end) == (0x1000, 0x1000 + 512)
        # The range end is exclusive: the next card is not dirty.
        assert not table.is_dirty(end)
