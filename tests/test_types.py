"""Tests for descriptors, class definitions, and class loading."""

import pytest

from repro.heap.layout import SKYWAY_LAYOUT
from repro.types import descriptors as d
from repro.types.classdef import ClassDef, ClassPath, DuplicateClassError, FieldDef
from repro.types.corelib import standard_classpath, tuple_class_name
from repro.types.loader import ClassLoader, ClassNotFoundError


class TestDescriptors:
    @pytest.mark.parametrize("desc,size", [("B", 1), ("Z", 1), ("C", 2),
                                           ("S", 2), ("I", 4), ("F", 4),
                                           ("J", 8), ("D", 8)])
    def test_primitive_sizes(self, desc, size):
        assert d.size_of(desc) == size
        assert d.is_primitive(desc)
        assert not d.is_reference(desc)

    def test_reference_descriptor(self):
        desc = d.object_descriptor("java.lang.String")
        assert desc == "Ljava.lang.String;"
        assert d.is_reference(desc)
        assert d.size_of(desc) == 8
        assert d.referenced_class(desc) == "java.lang.String"

    def test_array_descriptor(self):
        assert d.is_array("[I")
        assert d.is_reference("[I")
        assert d.component_of("[[J") == "[J"
        assert d.size_of("[Ljava.lang.Object;") == 8

    def test_malformed_rejected(self):
        for bad in ("", "X", "L;", "Lfoo", "foo"):
            with pytest.raises(ValueError):
                d.validate(bad)

    def test_java_name(self):
        assert d.java_name("I") == "int"
        assert d.java_name("[[D") == "double[][]"
        assert d.java_name("Ljava.lang.String;") == "java.lang.String"


class TestClassDef:
    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            ClassDef.define("X", [("a", "I"), ("a", "J")])

    def test_bad_descriptor_rejected(self):
        with pytest.raises(ValueError):
            FieldDef("a", "Q")

    def test_classpath_conflict_detection(self):
        cp = ClassPath()
        cp.define("A", [("x", "I")])
        cp.define("A", [("x", "I")])  # identical re-add is fine
        with pytest.raises(DuplicateClassError):
            cp.define("A", [("x", "J")])

    def test_self_super_rejected(self):
        cp = ClassPath()
        with pytest.raises(ValueError):
            cp.add(ClassDef("B", super_name="B"))

    def test_object_always_present(self):
        cp = ClassPath()
        assert "java.lang.Object" in cp


class TestClassLoader:
    def test_load_resolves_super_chain(self, classpath):
        loader = ClassLoader(classpath, SKYWAY_LAYOUT)
        k = loader.load("java.lang.Long")
        chain = [c.name for c in k.super_chain()]
        assert chain == ["java.lang.Long", "java.lang.Number", "java.lang.Object"]

    def test_load_is_idempotent(self, classpath):
        loader = ClassLoader(classpath, SKYWAY_LAYOUT)
        assert loader.load("Date") is loader.load("Date")

    def test_unknown_class(self, classpath):
        loader = ClassLoader(classpath, SKYWAY_LAYOUT)
        with pytest.raises(ClassNotFoundError):
            loader.load("does.not.Exist")

    def test_array_class_on_demand(self, classpath):
        loader = ClassLoader(classpath, SKYWAY_LAYOUT)
        k = loader.load("[LDate;")
        assert k.is_array
        assert loader.is_loaded("Date")  # element class loaded too

    def test_nested_array(self, classpath):
        loader = ClassLoader(classpath, SKYWAY_LAYOUT)
        k = loader.load("[[I")
        assert k.element_descriptor == "[I"
        assert loader.is_loaded("[I")

    def test_klass_ids_unique_within_loader(self, classpath):
        loader = ClassLoader(classpath, SKYWAY_LAYOUT)
        ids = {loader.load(n).klass_id for n in ("Date", "Year4D", "[I")}
        assert len(ids) == 3

    def test_klass_ids_distinct_across_loaders(self, classpath):
        a = ClassLoader(classpath, SKYWAY_LAYOUT)
        b = ClassLoader(classpath, SKYWAY_LAYOUT)
        assert a.load("Date").klass_id != b.load("Date").klass_id

    def test_load_hook_fires(self, classpath):
        loader = ClassLoader(classpath, SKYWAY_LAYOUT)
        seen = []
        loader.add_load_hook(lambda k: seen.append(k.name))
        loader.load("Date")
        assert "Date" in seen
        assert "java.lang.Object" in seen

    def test_late_hook_replays(self, classpath):
        loader = ClassLoader(classpath, SKYWAY_LAYOUT)
        loader.load("Date")
        seen = []
        loader.add_load_hook(lambda k: seen.append(k.name))
        assert "Date" in seen

    def test_by_klass_id(self, classpath):
        loader = ClassLoader(classpath, SKYWAY_LAYOUT)
        k = loader.load("Date")
        assert loader.by_klass_id(k.klass_id) is k
        with pytest.raises(ClassNotFoundError):
            loader.by_klass_id(12345)


class TestKlass:
    def test_field_offsets_inherited(self, classpath):
        loader = ClassLoader(classpath, SKYWAY_LAYOUT)
        long_k = loader.load("java.lang.Long")
        assert long_k.field("value").offset >= SKYWAY_LAYOUT.header_size

    def test_oop_offsets_only_references(self, classpath):
        loader = ClassLoader(classpath, SKYWAY_LAYOUT)
        mixed = loader.load("Mixed")
        assert len(mixed.oop_offsets) == 1

    def test_object_size_for_array_requires_length(self, classpath):
        loader = ClassLoader(classpath, SKYWAY_LAYOUT)
        arr = loader.load("[I")
        with pytest.raises(ValueError):
            arr.object_size()
        assert arr.object_size(4) > 0

    def test_is_subclass_of(self, classpath):
        loader = ClassLoader(classpath, SKYWAY_LAYOUT)
        assert loader.load("java.lang.Long").is_subclass_of(
            loader.load("java.lang.Object")
        )

    def test_corelib_tuples(self):
        cp = standard_classpath()
        assert tuple_class_name(2) in cp
        loader = ClassLoader(cp, SKYWAY_LAYOUT)
        t2 = loader.load(tuple_class_name(2))
        assert len(t2.oop_offsets) == 2
