"""The standard Java serializer (java.io.ObjectOutputStream model).

Reproduces the three inefficiencies the paper attributes to it (§1, §2):

1. **Object-data access** — every field of every object is read and written
   through :class:`~repro.jvm.reflection.Reflection`, charging the
   reflective cost per access.
2. **Type representation** — the first time a class appears in a stream, a
   *class descriptor* is written: the class name plus, recursively, the
   descriptors of all superclasses up to ``java.lang.Object``, each with
   its field names and type strings (the paper's "a 1-byte field can
   generate a 50-byte sequence").  Spark's JavaSerializer calls
   ``ObjectOutputStream.reset()`` every 100 objects to bound the handle
   table, which re-emits descriptors — modeled by ``reset_interval`` — and
   is why Java-serializer shuffle files carry so many type strings.
3. **Reference adjustment** — referenced objects are inlined recursively;
   on the receiving side every object is re-created via reflection and hash
   structures are rehashed entry by entry.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.heap.handles import Handle
from repro.heap.heap import NULL
from repro.jvm.collections import HashMapOps
from repro.jvm.jvm import JVM
from repro.jvm.reflection import Reflection
from repro.net.streams import ByteInputStream, ByteOutputStream
from repro.serial.base import (
    DeserializationStream,
    SerializationError,
    SerializationStream,
    Serializer,
    read_primitive,
    write_primitive,
)
from repro.types import corelib, descriptors

# Wire tags (after java.io.ObjectStreamConstants, simplified).
TC_NULL = 0x70
TC_REFERENCE = 0x71
TC_CLASSDESC = 0x72
TC_OBJECT = 0x73
TC_STRING = 0x74
TC_ARRAY = 0x75
TC_CLASSDESC_REF = 0x76
TC_RESET = 0x79

#: Block-data framing each object record carries (TC_BLOCKDATA tag, length,
#: end marker) — part of why JDK streams are so much fatter than Kryo's.
_BLOCKDATA_FRAME = b"\x77\x00\x00\x00\x00\x7a"


def _pseudo_suid(name: str) -> int:
    """A deterministic stand-in for serialVersionUID."""
    import zlib

    return (zlib.crc32(name.encode()) << 32) | zlib.crc32(name[::-1].encode())


class JavaSerializer(Serializer):
    """The JDK's built-in serializer, as Spark drives it."""

    name = "java"

    def __init__(self, reset_interval: int = 100) -> None:
        if reset_interval < 1:
            raise ValueError("reset_interval must be >= 1")
        self.reset_interval = reset_interval

    def new_stream(self, jvm: JVM, thread_id: int = 0) -> "JavaSerializationStream":
        return JavaSerializationStream(jvm, self.reset_interval)

    def new_reader(self, jvm: JVM, data: bytes) -> "JavaDeserializationStream":
        return JavaDeserializationStream(jvm, data)


class JavaSerializationStream(SerializationStream):
    def __init__(self, jvm: JVM, reset_interval: int) -> None:
        self.jvm = jvm
        self.reflect = Reflection(jvm)
        self.out = ByteOutputStream()
        self.reset_interval = reset_interval
        self._handles: Dict[int, int] = {}  # heap addr -> wire handle
        self._class_handles: Dict[str, int] = {}  # class name -> wire handle
        self._roots_since_reset = 0

    # -- public ---------------------------------------------------------------

    def write_object(self, root: int) -> None:
        if self._roots_since_reset >= self.reset_interval:
            self._reset()
        self._roots_since_reset += 1
        self._write_value(root)

    def close(self) -> bytes:
        return self.out.getvalue()

    @property
    def bytes_written(self) -> int:
        return len(self.out)

    # -- internals --------------------------------------------------------------

    def _reset(self) -> None:
        """ObjectOutputStream.reset(): drop handle/descriptor state so the
        receiver can bound memory; subsequent objects re-emit descriptors."""
        self.out.write_u8(TC_RESET)
        self._handles.clear()
        self._class_handles.clear()
        self._roots_since_reset = 0

    def _write_value(self, address: int) -> None:
        out = self.out
        if address == NULL:
            out.write_u8(TC_NULL)
            return
        handle = self._handles.get(address)
        if handle is not None:
            out.write_u8(TC_REFERENCE)
            out.write_varint(handle)
            return
        klass = self.jvm.klass_of(address)
        if klass.name == corelib.STRING:
            self._write_string(address)
        elif klass.is_array:
            self._write_array(address, klass)
        else:
            self._write_instance(address, klass)

    def _assign_handle(self, address: int) -> None:
        self._handles[address] = len(self._handles)

    def _write_class_desc(self, klass) -> None:
        """Class descriptor: name + field list, recursively for supers."""
        out = self.out
        existing = self._class_handles.get(klass.name)
        if existing is not None:
            out.write_u8(TC_CLASSDESC_REF)
            out.write_varint(existing)
            return
        out.write_u8(TC_CLASSDESC)
        self._class_handles[klass.name] = len(self._class_handles)
        # Enumerating fields reflectively costs per class.
        self.jvm.clock.charge(self.jvm.cost_model.reflective_access)
        out.write_utf(klass.name)
        out.write_u64(_pseudo_suid(klass.name))  # serialVersionUID
        out.write_u8(0x02)  # SC_SERIALIZABLE flags
        self.jvm.clock.charge(self.jvm.cost_model.string_cost(klass.name))
        own = [f for f in klass.all_fields() if f.declaring_class == klass.name]
        out.write_varint(len(own))
        for field in own:
            out.write_utf(field.name)
            out.write_utf(field.descriptor)
            self.jvm.clock.charge(
                self.jvm.cost_model.string_cost(field.name + field.descriptor)
            )
        if klass.super_klass is not None:
            self._write_class_desc(klass.super_klass)
        else:
            out.write_u8(TC_NULL)

    def _write_string(self, address: int) -> None:
        self._assign_handle(address)
        self.out.write_u8(TC_STRING)
        text = self.jvm.read_string(address)
        # Reading the char[] reflectively + encoding + handle registration.
        self.jvm.clock.charge(self.jvm.cost_model.java_string_overhead)
        self.jvm.clock.charge(self.jvm.cost_model.reflective_access)
        self.jvm.clock.charge(self.jvm.cost_model.string_cost(text))
        self.out.write_utf(text)

    def _write_array(self, address: int, klass) -> None:
        out = self.out
        self.jvm.clock.charge(self.jvm.cost_model.java_stream_object_overhead)
        out.write_u8(TC_ARRAY)
        self._write_class_desc(klass)
        self._assign_handle(address)
        out.write_bytes(_BLOCKDATA_FRAME)
        length = self.jvm.heap.array_length(address)
        out.write_varint(length)
        elem = klass.element_descriptor or ""
        heap = self.jvm.heap
        if descriptors.is_reference(elem):
            for i in range(length):
                self.jvm.clock.charge(self.jvm.cost_model.reflective_access)
                self._write_value(heap.read_element(address, i))
        else:
            # Primitive arrays go through a bulk path, but the stream still
            # encodes byte-by-byte.
            nbytes = length * klass.element_size
            self.jvm.clock.charge(self.jvm.cost_model.stream_bytes(nbytes))
            for i in range(length):
                write_primitive(out, elem, heap.read_element(address, i))

    def _write_instance(self, address: int, klass) -> None:
        out = self.out
        # writeObject0 dispatch + handle-table insertion + block data.
        self.jvm.clock.charge(self.jvm.cost_model.java_stream_object_overhead)
        out.write_u8(TC_OBJECT)
        self._write_class_desc(klass)
        self._assign_handle(address)
        out.write_bytes(_BLOCKDATA_FRAME)
        for field in klass.all_fields():
            # Reflection.getField per field (paper §1 problem (1)).
            value = self.reflect.get_field(address, field.name)
            if field.is_reference:
                self._write_value(value)
            else:
                write_primitive(out, field.descriptor, value)
                self.jvm.clock.charge(self.jvm.cost_model.stream_bytes(field.size))


class JavaDeserializationStream(DeserializationStream):
    def __init__(self, jvm: JVM, data: bytes) -> None:
        self.jvm = jvm
        self.reflect = Reflection(jvm)
        self.inp = ByteInputStream(data)
        self._handles: List[Handle] = []  # wire handle -> pinned object
        self._classes: List = []  # class-desc handle -> Klass
        self._resolved: Dict[str, object] = {}
        self._all_pins: List[Handle] = []

    # -- public ------------------------------------------------------------

    def has_next(self) -> bool:
        return not self.inp.at_end()

    def read_object(self) -> int:
        while True:
            tag = self.inp.read_u8()
            if tag == TC_RESET:
                self._handles.clear()
                self._classes.clear()
                continue
            return self._read_value(tag)

    def close(self) -> None:
        for pin in self._all_pins:
            self.jvm.unpin(pin)
        self._all_pins.clear()

    # -- internals -----------------------------------------------------------

    def _pin(self, address: int) -> Handle:
        handle = self.jvm.pin(address)
        self._all_pins.append(handle)
        return handle

    def _read_value(self, tag: Optional[int] = None) -> int:
        if tag is None:
            tag = self.inp.read_u8()
        if tag == TC_RESET:
            self._handles.clear()
            self._classes.clear()
            return self._read_value()
        if tag == TC_NULL:
            return NULL
        if tag == TC_REFERENCE:
            return self._handles[self.inp.read_varint()].address
        if tag == TC_STRING:
            return self._read_string()
        if tag == TC_ARRAY:
            return self._read_array()
        if tag == TC_OBJECT:
            return self._read_instance()
        raise SerializationError(f"unexpected tag {tag:#x}")

    def _read_class_desc(self, tag: Optional[int] = None):
        """Parse a class-descriptor chain, registering every descriptor
        (class and superclasses alike) in handle order — the writer hands
        out descriptor handles for the whole chain, so the reader must too."""
        if tag is None:
            tag = self.inp.read_u8()
        if tag == TC_CLASSDESC_REF:
            return self._classes[self.inp.read_varint()]
        if tag != TC_CLASSDESC:
            raise SerializationError(f"expected class descriptor, got {tag:#x}")
        name = self.inp.read_utf()
        self.inp.read_u64()  # serialVersionUID
        self.inp.read_u8()   # flags
        # Resolving the type from its string uses reflection (paper §1 (2)).
        klass = self.reflect.class_for_name(name)
        self._classes.append(klass)
        n_fields = self.inp.read_varint()
        for _ in range(n_fields):
            self.inp.read_utf()
            self.inp.read_utf()
        # Super-descriptor chain follows.
        nxt = self.inp.read_u8()
        if nxt == TC_NULL:
            return klass
        if nxt in (TC_CLASSDESC, TC_CLASSDESC_REF):
            self._read_class_desc(nxt)
            return klass
        raise SerializationError(f"bad descriptor chain tag {nxt:#x}")

    def _read_string(self) -> int:
        text = self.inp.read_utf()
        self.jvm.clock.charge(self.jvm.cost_model.java_string_overhead)
        self.jvm.clock.charge(self.jvm.cost_model.string_cost(text))
        address = self.jvm.new_string(text)
        self._handles.append(self._pin(address))
        return address

    def _read_array(self) -> int:
        klass = self._read_class_desc()
        self.jvm.clock.charge(self.jvm.cost_model.java_read_object_overhead)
        self.inp.read_bytes(len(_BLOCKDATA_FRAME))
        length = self.inp.read_varint()
        elem = klass.element_descriptor or ""
        address = self.reflect.new_array(elem, length)
        pin = self._pin(address)
        self._handles.append(pin)
        heap = self.jvm.heap
        if descriptors.is_reference(elem):
            for i in range(length):
                self.jvm.clock.charge(self.jvm.cost_model.reflective_access)
                value = self._read_value()
                heap.write_element(pin.address, i, value)
        else:
            self.jvm.clock.charge(
                self.jvm.cost_model.stream_bytes(length * klass.element_size)
            )
            for i in range(length):
                heap.write_element(pin.address, i, read_primitive(self.inp, elem))
        return pin.address

    def _read_instance(self) -> int:
        klass = self._read_class_desc()
        # readObject0 + ObjectStreamClass validation + reflective
        # construction path.
        self.jvm.clock.charge(self.jvm.cost_model.java_read_object_overhead)
        self.inp.read_bytes(len(_BLOCKDATA_FRAME))
        address = self.reflect.new_instance(klass)
        pin = self._pin(address)
        self._handles.append(pin)
        for field in klass.all_fields():
            if field.is_reference:
                value = self._read_value()
                self.jvm.clock.charge(self.jvm.cost_model.reflective_access)
                self.jvm.heap.write_field(pin.address, field, value)
            else:
                value = read_primitive(self.inp, field.descriptor)
                self.jvm.clock.charge(self.jvm.cost_model.reflective_access)
                # defaultReadFields matches stream fields to class fields
                # by name.
                self.jvm.clock.charge(self.jvm.cost_model.java_field_match)
                self.jvm.clock.charge(self.jvm.cost_model.stream_bytes(field.size))
                self.jvm.heap.write_field(pin.address, field, value)
        if klass.name == corelib.HASHMAP:
            # HashMap.readObject re-inserts every entry: hashes may differ
            # on this JVM (paper §1: "additionally reshuffle key/value
            # pairs ... because the hash values of keys may have changed").
            HashMapOps(self.jvm).rehash_in_place(pin.address, charge=True)
        return pin.address
