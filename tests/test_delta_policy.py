"""Tests for the delta fallback policy (pre/post-encode gates, stats)."""

from repro.delta.policy import (
    DEFAULT_BYTE_CROSSOVER,
    RECORD_OVERHEAD,
    ChannelStats,
    DeltaPolicy,
)

from tests.test_delta_epoch_cache import make_record


def record_of(total_objects=100, size=64):
    members = [(0x1000 + i * size, 8 + i * size, size)
               for i in range(total_objects)]
    return make_record(members)


class TestPreEncodeGate:
    def test_no_record_forces_full(self):
        policy = DeltaPolicy()
        decision = policy.decide(None, 0, 0, 0, 0)
        assert (decision.mode, decision.reason) == ("full", "first_epoch")

    def test_empty_record_forces_full(self):
        policy = DeltaPolicy()
        decision = policy.decide(make_record([]), 0, 0, 0, 0)
        assert decision.reason == "first_epoch"

    def test_sparse_dirt_goes_delta(self):
        policy = DeltaPolicy()
        record = record_of(100, 64)
        decision = policy.decide(record, 3, 3 * 64, 0, 0)
        assert decision.mode == "delta"
        assert decision.mutation_rate == 0.03
        assert decision.estimated_bytes == 3 * 64 + 3 * RECORD_OVERHEAD

    def test_heavy_dirt_crosses_over(self):
        policy = DeltaPolicy()
        record = record_of(100, 64)
        dirty = 60
        decision = policy.decide(record, dirty, dirty * 64, 0, 0)
        assert (decision.mode, decision.reason) == ("full", "mutation_crossover")
        assert decision.mutation_rate == 0.6

    def test_crossover_fraction_respected(self):
        record = record_of(100, 64)
        # 30% dirty: over a 0.1 crossover, under the default 0.5.
        tight = DeltaPolicy(byte_crossover=0.1)
        assert tight.decide(record, 30, 30 * 64, 0, 0).mode == "full"
        assert DeltaPolicy().decide(record, 30, 30 * 64, 0, 0).mode == "delta"

    def test_gc_since_record_forces_full(self):
        policy = DeltaPolicy()
        record = record_of()
        assert policy.decide(record, 1, 64, 1, 0).reason == "gc_moved"
        assert policy.decide(record, 1, 64, 0, 1).reason == "gc_moved"
        assert policy.decide(record, 1, 64, 0, 0).mode == "delta"


class TestPostEncodeGate:
    def test_small_frame_accepted(self):
        policy = DeltaPolicy()
        record = record_of(100, 64)  # total 6400
        assert policy.accept_encoded(record, 1000)

    def test_overrun_frame_rejected(self):
        policy = DeltaPolicy()
        record = record_of(100, 64)
        limit = int(DEFAULT_BYTE_CROSSOVER * record.total_bytes)
        assert not policy.accept_encoded(record, limit + 1)


class TestChannelStats:
    def test_totals_and_fallback_accounting(self):
        stats = ChannelStats()
        stats.bytes_full += 1000
        stats.bytes_delta += 50
        assert stats.bytes_total == 1050
        stats.note_fallback("mutation_crossover")
        stats.note_fallback("mutation_crossover")
        stats.note_fallback("gc_moved")
        assert stats.fallbacks == {"mutation_crossover": 2, "gc_moved": 1}
