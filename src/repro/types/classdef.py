"""Class definitions and the cluster-wide class path.

A :class:`ClassDef` is the loader-independent description of a class (what a
``.class`` file is to a JVM): a name, a superclass name, and declared fields.
A :class:`ClassPath` is the set of definitions visible to every node in the
cluster — the paper assumes "the sender and the receiver use the same
version of each transfer-related class" (§3.1), which a shared class path
models directly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.types import descriptors

OBJECT_CLASS = "java.lang.Object"


@dataclasses.dataclass(frozen=True)
class FieldDef:
    """A declared field: name plus JVM descriptor."""

    name: str
    descriptor: str

    def __post_init__(self) -> None:
        descriptors.validate(self.descriptor)
        if not self.name:
            raise ValueError("field name must be non-empty")


@dataclasses.dataclass(frozen=True)
class ClassDef:
    """A loader-independent class description."""

    name: str
    super_name: Optional[str] = OBJECT_CLASS
    fields: Tuple[FieldDef, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("class name must be non-empty")
        seen = set()
        for f in self.fields:
            if f.name in seen:
                raise ValueError(f"duplicate field {f.name!r} in {self.name}")
            seen.add(f.name)

    @classmethod
    def define(
        cls,
        name: str,
        fields: Sequence[Tuple[str, str]] = (),
        super_name: Optional[str] = OBJECT_CLASS,
    ) -> "ClassDef":
        """Convenience constructor from ``(name, descriptor)`` pairs."""
        return cls(
            name=name,
            super_name=super_name,
            fields=tuple(FieldDef(n, d) for n, d in fields),
        )

    @property
    def field_pairs(self) -> List[Tuple[str, str]]:
        return [(f.name, f.descriptor) for f in self.fields]


class DuplicateClassError(ValueError):
    pass


class ClassPath:
    """All class definitions visible to the cluster's JVMs."""

    def __init__(self, defs: Iterable[ClassDef] = ()) -> None:
        self._defs: Dict[str, ClassDef] = {}
        self.add(ClassDef(OBJECT_CLASS, super_name=None))
        for d in defs:
            self.add(d)

    def add(self, classdef: ClassDef) -> ClassDef:
        existing = self._defs.get(classdef.name)
        if existing is not None:
            if existing == classdef:
                return existing
            raise DuplicateClassError(
                f"conflicting definitions for {classdef.name}"
            )
        if classdef.super_name is not None and classdef.super_name == classdef.name:
            raise ValueError(f"{classdef.name} cannot be its own superclass")
        self._defs[classdef.name] = classdef
        return classdef

    def define(
        self,
        name: str,
        fields: Sequence[Tuple[str, str]] = (),
        super_name: Optional[str] = OBJECT_CLASS,
    ) -> ClassDef:
        return self.add(ClassDef.define(name, fields, super_name))

    def get(self, name: str) -> Optional[ClassDef]:
        return self._defs.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._defs

    def __iter__(self) -> Iterator[ClassDef]:
        return iter(self._defs.values())

    def __len__(self) -> int:
        return len(self._defs)

    def names(self) -> List[str]:
        return list(self._defs)
