"""Tests for DAG stage decomposition and subtle runtime interactions."""

import pytest

from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.core.runtime import attach_skyway
from repro.heap.layout import BASELINE_LAYOUT
from repro.jvm.jvm import JVM
from repro.spark.scheduler import build_stages, count_shuffles, describe_job

from tests.conftest import make_date, read_date, sample_classpath
from tests.test_spark_engine import make_context


class TestStageDecomposition:
    def test_narrow_chain_is_one_stage(self):
        sc = make_context("kryo")
        rdd = sc.parallelize(range(10)).map(lambda x: x).filter(lambda x: True)
        stages = build_stages(rdd)
        assert len(stages) == 1
        assert stages[0].is_result
        assert len(stages[0].rdds) == 3

    def test_shuffle_cuts_stage(self):
        sc = make_context("kryo")
        rdd = (sc.parallelize(range(10)).map(lambda x: (x % 2, x))
               .reduce_by_key(lambda a, b: a + b).map(lambda kv: kv[1]))
        stages = build_stages(rdd)
        assert len(stages) == 2
        assert stages[-1].is_result
        assert stages[0] in stages[-1].parents or \
            stages[0] in stages[-1].parents[0].parents or \
            stages[-1].parents  # map stage precedes result stage
        assert count_shuffles(rdd) == 1

    def test_join_produces_three_plus_stages(self):
        sc = make_context("kryo")
        left = sc.parallelize([(1, "a")]).map(lambda kv: kv)
        right = sc.parallelize([(1, "b")])
        joined = left.join(right)
        stages = build_stages(joined)
        assert len(stages) >= 3  # two shuffle legs + result
        assert count_shuffles(joined) == 2

    def test_pagerank_iteration_shuffle_count(self):
        from repro.apps.pagerank import page_rank
        sc = make_context("kryo")
        # Two iterations over a toy graph: lineage accumulates shuffles.
        edges = [(1, 2), (2, 1)]
        page_rank(sc, edges, iterations=2)
        # (executed fine; shuffle count checked through the service)
        assert sc.shuffle.records_shuffled > 0

    def test_describe_job_renders(self):
        sc = make_context("kryo")
        rdd = sc.parallelize(range(4)).map(lambda x: (x, x)).group_by_key()
        text = describe_job(rdd)
        assert "stages" in text
        assert "Stage 0" in text


class TestGcDuringShufflePhase:
    """The baddr word lives in the object header, so it travels with the
    object when GC moves it — a backward reference emitted after a GC in
    the same phase still resolves to the correct buffer address."""

    def test_backward_reference_survives_gc_move(self, classpath):
        src = JVM("gc-phase-src", classpath=classpath)
        dst = JVM("gc-phase-dst", classpath=classpath)
        attach_skyway(src, [dst])

        date = src.pin(make_date(src, 2018, 3, 24))
        out = SkywayObjectOutputStream(src.skyway, destination="p")
        first = out.write_object(date.address)
        src.gc.minor()   # moves the graph; baddr words move with it
        src.gc.full()
        second = out.write_object(date.address)  # same phase
        assert first == second  # backward reference, no re-copy
        inp = SkywayObjectInputStream(dst.skyway)
        inp.accept(out.close())
        r1, r2 = inp.read_object(), inp.read_object()
        assert r1 == r2
        assert read_date(dst, r1) == (2018, 3, 24)


class TestHeterogeneousMultithread:
    def test_two_threads_to_baseline_receiver(self, classpath):
        src = JVM("hm-src", classpath=classpath)
        dst = JVM("hm-dst", classpath=classpath, layout=BASELINE_LAYOUT)
        attach_skyway(src, [dst])
        date = src.pin(make_date(src, 9, 9, 9))
        src.skyway.shuffle_start()
        results = []
        for tid in (1, 2):
            out = SkywayObjectOutputStream(
                src.skyway, destination=f"t{tid}", thread_id=tid,
                target_layout=BASELINE_LAYOUT,
            )
            out.write_object(date.address)
            inp = SkywayObjectInputStream(dst.skyway)
            inp.accept(out.close())
            results.append(inp.read_object())
        assert read_date(dst, results[0]) == (9, 9, 9)
        assert read_date(dst, results[1]) == (9, 9, 9)
        assert results[0] != results[1]  # per-stream copies
