"""``python -m repro.obs`` — observability artifacts from the terminal.

* ``report <snapshot.json>`` — the paper-style phase breakdown: spans
  rolled up by name, then the per-channel exchange ledgers byte-exact;
  ``--json`` prints the same numbers machine-readable;
* ``trace <trace.json>`` — validate an exported Chrome trace (all spans
  closed, parents resolve and contain, one trace id); exit 1 on problems;
* ``diff <old.json> <new.json>`` — numeric deltas between two snapshots
  (``--json`` for the structured form);
* ``top`` — the live fleet table: polls a coordinator's ``telemetry`` op
  (``--coordinator host:port``) or renders a saved telemetry document
  (``--snapshot file``); ``--once`` prints one frame, ``--json`` dumps
  the raw document;
* ``export --prometheus`` — Prometheus text exposition from an obs
  snapshot or a live coordinator's telemetry document;
* ``smoke [--out DIR]`` — run the end-to-end traced scenario (loopback +
  socket epochs + broadcast), export trace/snapshot JSON, self-check;
* ``live-smoke [--out DIR]`` — spin a real 4-worker fleet, induce a
  straggler on a paced wire, verify detection / postmortem / export /
  overhead; the CI ``obs-live-smoke`` job runs exactly this.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.obs.export import (
    diff_data,
    phase_report_data,
    prometheus_text,
    render_diff,
    render_phase_report,
    validate_chrome_trace,
    validate_prometheus,
)


def _load(path: str) -> dict:
    return json.loads(pathlib.Path(path).read_text())


def _emit(doc: dict) -> int:
    print(json.dumps(doc, indent=2, sort_keys=True, default=str))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    snapshot = _load(args.snapshot)
    if args.json:
        return _emit(phase_report_data(snapshot))
    print(render_phase_report(snapshot))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    doc = _load(args.trace)
    problems = validate_chrome_trace(doc)
    events = doc.get("traceEvents", []) if isinstance(doc, dict) else []
    spans = [e for e in events if isinstance(e, dict) and e.get("ph") == "X"]
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    print(f"ok: {len(spans)} spans, trace "
          f"{doc.get('otherData', {}).get('trace_id', '?')}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    if args.json:
        return _emit(diff_data(_load(args.old), _load(args.new)))
    print(render_diff(_load(args.old), _load(args.new)))
    return 0


# ---------------------------------------------------------------------------
# live front ends
# ---------------------------------------------------------------------------

def _parse_hostport(value: str) -> tuple:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected host:port, got {value!r}")
    return host, int(port)


def _fetch_telemetry(coordinator: tuple, include_window: bool = False) -> dict:
    """One ``telemetry`` RPC round-trip (document + alive map)."""
    from repro.cluster.membership import CoordinatorClient

    host, port = coordinator
    with CoordinatorClient(host, port) as client:
        result = client.call("telemetry", include_window=include_window)
    return result["telemetry"]


def _telemetry_snapshot(path: str) -> dict:
    """Load a telemetry document from disk, unwrapping known carriers.

    Accepts either a raw ``fleet_telemetry`` document or an artifact
    that embeds one (the live-smoke ``live.json`` keeps its frame under
    ``telemetry_doc``), so every file the tooling writes round-trips.
    """
    data = _load(path)
    if data.get("kind") != "fleet_telemetry":
        for key in ("telemetry_doc", "telemetry"):
            inner = data.get(key)
            if isinstance(inner, dict) and \
                    inner.get("kind") == "fleet_telemetry":
                return inner
    return data


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.live import render_top

    if (args.coordinator is None) == (args.snapshot is None):
        print("top: give exactly one of --coordinator or --snapshot",
              file=sys.stderr)
        return 2

    def frame() -> dict:
        if args.snapshot is not None:
            return _telemetry_snapshot(args.snapshot)
        return _fetch_telemetry(args.coordinator)

    once = args.once or args.json or args.snapshot is not None
    try:
        while True:
            doc = frame()
            if args.json:
                return _emit(doc)
            text = render_top(doc, alive=doc.get("alive"))
            if not once:
                # Clear + home, like top(1): one repaint per interval.
                sys.stdout.write("\x1b[2J\x1b[H")
            print(text)
            sys.stdout.flush()
            if once:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_export(args: argparse.Namespace) -> int:
    if (args.coordinator is None) == (args.snapshot is None):
        print("export: give exactly one of --coordinator or --snapshot",
              file=sys.stderr)
        return 2
    if args.snapshot is not None:
        doc = _telemetry_snapshot(args.snapshot)
    else:
        doc = _fetch_telemetry(args.coordinator)
    text = prometheus_text(doc)
    problems = validate_prometheus(text)
    if args.out:
        pathlib.Path(args.out).write_text(text)
        print(f"wrote {args.out} "
              f"({len(text.splitlines())} lines)", file=sys.stderr)
    else:
        sys.stdout.write(text)
    for problem in problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    from repro.obs.smoke import obs_checks_pass, run_obs_smoke

    result = run_obs_smoke(out_dir=pathlib.Path(args.out),
                           vertices=args.vertices)
    print(render_phase_report(result.pop("snapshot")))
    print()
    for name, ok in result["checks"].items():
        print(f"  {name}: {'pass' if ok else 'FAIL'}")
    for problem in result["trace_errors"]:
        print(f"  trace problem: {problem}")
    print(f"  spans={result['spans']} worker_spans={result['worker_spans']} "
          f"trace={result['trace_id']}")
    if "trace_path" in result:
        print(f"  wrote {result['trace_path']}")
        print(f"  wrote {result['snapshot_path']}")
    return 0 if obs_checks_pass(result) else 1


def _cmd_live_smoke(args: argparse.Namespace) -> int:
    from repro.obs.live_smoke import live_checks_pass, run_live_smoke

    result = run_live_smoke(
        out_dir=pathlib.Path(args.out),
        workers=args.workers,
        epochs=args.epochs,
        overhead_epochs=args.overhead_epochs,
        overhead_limit=args.overhead_limit,
    )
    for name, ok in result["checks"].items():
        print(f"  {name}: {'pass' if ok else 'FAIL'}")
    for line in result.get("notes", []):
        print(f"  {line}")
    for path in result.get("artifacts", []):
        print(f"  wrote {path}")
    return 0 if live_checks_pass(result) else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability reports, live fleet telemetry, trace "
                    "validation, and the traced smoke runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="phase breakdown from a snapshot")
    p.add_argument("snapshot", help="path to an obs snapshot JSON")
    p.add_argument("--json", action="store_true",
                   help="machine-readable phase report")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("trace", help="validate a Chrome trace JSON")
    p.add_argument("trace", help="path to an exported trace JSON")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("diff", help="numeric deltas between two snapshots")
    p.add_argument("old")
    p.add_argument("new")
    p.add_argument("--json", action="store_true",
                   help="machine-readable diff")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("top", help="live fleet telemetry table")
    p.add_argument("--coordinator", type=_parse_hostport, default=None,
                   metavar="HOST:PORT",
                   help="poll a live coordinator's telemetry op")
    p.add_argument("--snapshot", default=None,
                   help="render a saved telemetry document instead")
    p.add_argument("--interval", type=float, default=1.0,
                   help="refresh period in seconds (live mode)")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit")
    p.add_argument("--json", action="store_true",
                   help="dump the raw telemetry document")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser("export", help="Prometheus text exposition")
    p.add_argument("--prometheus", action="store_true",
                   help="(the only format; accepted for clarity)")
    p.add_argument("--coordinator", type=_parse_hostport, default=None,
                   metavar="HOST:PORT",
                   help="export a live coordinator's telemetry document")
    p.add_argument("--snapshot", default=None,
                   help="export a saved obs snapshot / telemetry document")
    p.add_argument("--out", default=None,
                   help="write exposition here instead of stdout")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("smoke", help="traced loopback+socket smoke run")
    p.add_argument("--out", default="benchmarks/results",
                   help="directory for trace/snapshot artifacts")
    p.add_argument("--vertices", type=int, default=600)
    p.set_defaults(func=_cmd_smoke)

    p = sub.add_parser("live-smoke",
                       help="fleet telemetry end-to-end: straggler, "
                            "postmortem, export, overhead gate")
    p.add_argument("--out", default="benchmarks/results",
                   help="directory for telemetry artifacts")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--epochs", type=int, default=6,
                   help="traced broadcasts before checking detection")
    p.add_argument("--overhead-epochs", type=int, default=30,
                   help="epochs per leg of the overhead A/B measure")
    p.add_argument("--overhead-limit", type=float, default=0.03,
                   help="allowed relative overhead of telemetry on the "
                        "exchange path (default 3%%)")
    p.set_defaults(func=_cmd_live_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # piped into head/less and truncated
        sys.exit(0)
