"""Delta-transfer experiment runners (the Skyway-Delta evaluation).

Two experiments, both over heap-resident vertex graphs built from the
Table 1 graph profiles:

* :func:`run_delta_iterative` — iterative PageRank shipping its rank
  state to every worker each superstep, once with delta transfer and once
  with the baseline (a full Skyway send every epoch).  Reports wire bytes
  and simulated cluster time for both modes.
* :func:`run_mutation_sweep` — one update epoch at each mutation rate,
  recording the epoch's wire bytes and the policy's full/delta decision;
  the high-mutation points document the automatic fallback.

The baseline reuses the same broadcast machinery with a policy whose
crossover is below zero, so every epoch takes the full-send path — both
modes charge identical application and bookkeeping costs, and the
difference is purely the transfer strategy.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.apps.incremental import (
    IncrementalPageRank,
    build_vertex_graph,
    install_incremental_classes,
    read_ranks,
)
from repro.core.runtime import attach_skyway
from repro.datasets import GRAPH_PROFILES, generate_graph
from repro.delta.policy import DeltaPolicy
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.spark.broadcast_delta import DeltaHeapBroadcast
from repro.types.corelib import standard_classpath

#: A crossover below zero makes every epoch fail the pre-encode gate:
#: the policy degenerates to the paper's behaviour (full send per epoch).
FULL_EVERY_EPOCH = DeltaPolicy(byte_crossover=-1.0)


@dataclasses.dataclass
class IterativeRun:
    """One mode's totals over an iterative run."""

    mode: str
    wire_bytes: int
    sim_seconds: float
    epoch_bytes: List[int]
    epoch_modes: List[str]
    final_ranks: List[float]


def _make_cluster(workers: int) -> Cluster:
    classpath = install_incremental_classes(standard_classpath())
    cluster = Cluster(lambda name: JVM(name, classpath=classpath),
                      worker_count=workers)
    attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                  cluster=cluster)
    return cluster


def _run_mode(
    *,
    graph_key: str,
    scale: float,
    iterations: int,
    mutation: float,
    workers: int,
    policy: Optional[DeltaPolicy],
    mode: str,
    seed: int = 42,
) -> IterativeRun:
    cluster = _make_cluster(workers)
    driver = cluster.driver.jvm
    edges = generate_graph(GRAPH_PROFILES[graph_key], seed=seed, scale=scale)
    graph = build_vertex_graph(driver, edges)
    pagerank = IncrementalPageRank(driver, graph)
    broadcast = DeltaHeapBroadcast(cluster, graph, policy=policy)

    epoch_bytes: List[int] = []
    epoch_modes: List[str] = []
    report = broadcast.push()  # epoch 1: bootstrap (always full)
    epoch_bytes.append(report.wire_bytes)
    epoch_modes.append("+".join(sorted(set(report.modes.values()))))
    for _ in range(iterations):
        pagerank.step(active_fraction=mutation)
        report = broadcast.push()
        epoch_bytes.append(report.wire_bytes)
        epoch_modes.append("+".join(sorted(set(report.modes.values()))))

    # Every worker must hold the driver's exact rank vector.
    driver_ranks = read_ranks(driver, graph)
    for worker in cluster.workers:
        worker_ranks = read_ranks(worker.jvm, broadcast.value_on(worker))
        if worker_ranks != driver_ranks:
            raise AssertionError(
                f"{mode}: worker {worker.name} rank vector diverged"
            )

    run = IterativeRun(
        mode=mode,
        wire_bytes=broadcast.wire_bytes,
        sim_seconds=cluster.total_clock().total(),
        epoch_bytes=epoch_bytes,
        epoch_modes=epoch_modes,
        final_ranks=driver_ranks,
    )
    broadcast.close()
    return run


def run_delta_iterative(
    graph_key: str = "LJ",
    scale: float = 0.2,
    iterations: int = 8,
    mutation: float = 0.01,
    workers: int = 2,
) -> Dict[str, object]:
    """Delta vs full-every-epoch over one iterative PageRank run."""
    full = _run_mode(
        graph_key=graph_key, scale=scale, iterations=iterations,
        mutation=mutation, workers=workers,
        policy=FULL_EVERY_EPOCH, mode="full-every-epoch",
    )
    delta = _run_mode(
        graph_key=graph_key, scale=scale, iterations=iterations,
        mutation=mutation, workers=workers,
        policy=None, mode="delta",
    )
    if full.final_ranks != delta.final_ranks:
        raise AssertionError("modes computed different rank vectors")
    return {
        "graph": graph_key,
        "iterations": iterations,
        "mutation_fraction": mutation,
        "workers": workers,
        "vertices": len(full.final_ranks),
        "full_wire_bytes": full.wire_bytes,
        "delta_wire_bytes": delta.wire_bytes,
        "bytes_ratio": full.wire_bytes / delta.wire_bytes,
        "full_sim_seconds": full.sim_seconds,
        "delta_sim_seconds": delta.sim_seconds,
        "time_ratio": full.sim_seconds / delta.sim_seconds,
        "full_epoch_bytes": full.epoch_bytes,
        "delta_epoch_bytes": delta.epoch_bytes,
        "delta_epoch_modes": delta.epoch_modes,
    }


def run_mutation_sweep(
    graph_key: str = "LJ",
    scale: float = 0.2,
    fractions: Optional[List[float]] = None,
    workers: int = 1,
) -> List[Dict[str, object]]:
    """One update epoch at each mutation rate; documents the fallback."""
    if fractions is None:
        fractions = [0.01, 0.05, 0.1, 0.25, 0.5, 1.0]
    rows: List[Dict[str, object]] = []
    for fraction in fractions:
        cluster = _make_cluster(workers)
        driver = cluster.driver.jvm
        edges = generate_graph(GRAPH_PROFILES[graph_key], scale=scale)
        graph = build_vertex_graph(driver, edges)
        pagerank = IncrementalPageRank(driver, graph)
        broadcast = DeltaHeapBroadcast(cluster, graph)

        bootstrap = broadcast.push()
        pagerank.step(active_fraction=fraction)
        update = broadcast.push()

        channel = next(iter(broadcast.channel_stats().values()))
        decision = next(
            iter(broadcast._channels.values())
        ).last_decision
        rows.append({
            "mutation_fraction": fraction,
            "full_bytes": bootstrap.wire_bytes,
            "update_bytes": update.wire_bytes,
            "update_vs_full": update.wire_bytes / bootstrap.wire_bytes,
            "mode": decision.mode,
            "reason": decision.reason,
            "objects_patched": channel.objects_patched,
            "wasted_encode_bytes": channel.wasted_encode_bytes,
        })
        broadcast.close()
    return rows
