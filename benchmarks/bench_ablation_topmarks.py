"""A-TOPMARK — ablation: sender-side top marks vs receiver-side root
recomputation (paper §4.2 "Root Object Recognition").

"Although on the receiver side we can still compute all reachable objects
for a root, this computation also needs a graph traversal and is
time-consuming.  As an optimization, we let the sender explicitly mark the
root objects so that the receiver-side computation can be avoided."
"""

from repro.core.runtime import attach_skyway
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.heap.heap import NULL
from repro.jvm.jvm import JVM
from repro.bench.report import format_kv_section

from conftest import bench_scale, publish

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
from tests.conftest import make_date, sample_classpath  # noqa: E402


def recompute_roots_by_traversal(jvm, receiver):
    """The ablated receiver: find top objects by scanning every placed
    object's references (charging the GC-traversal cost) and taking the
    unreferenced ones as roots."""
    heap = jvm.heap
    cost = jvm.cost_model
    placed = [addr for addr, _ in receiver._placed]
    referenced = set()
    for addr in placed:
        for offset in heap.reference_offsets(addr):
            jvm.clock.charge(cost.traverse_word)
            target = heap.read_word(addr + offset)
            if target != NULL:
                referenced.add(target)
    return [addr for addr in placed if addr not in referenced]


def run_ablation(graphs: int):
    classpath = sample_classpath()
    src = JVM("tm-src", classpath=classpath)
    dst = JVM("tm-dst", classpath=classpath)
    attach_skyway(src, [dst])

    out = SkywayObjectOutputStream(src.skyway, destination="peer")
    roots = [src.pin(make_date(src, i, 1, 1)) for i in range(graphs)]
    for pin in roots:
        out.write_object(pin.address)
    data = out.close()

    inp = SkywayObjectInputStream(dst.skyway)
    before = dst.clock.total()
    inp.accept(data)
    marked_roots = [inp.read_object() for _ in range(graphs)]
    with_marks_cost = dst.clock.total() - before

    before = dst.clock.total()
    recomputed = recompute_roots_by_traversal(dst, inp.receiver)
    recompute_cost = dst.clock.total() - before

    assert sorted(marked_roots) == sorted(recomputed)
    return {
        "graphs": graphs,
        "receive cost with top marks (s)": with_marks_cost,
        "extra root-recompute traversal (s)": recompute_cost,
        "traversal overhead vs marked receive": f"{recompute_cost / with_marks_cost:.1%}",
    }


def test_ablation_topmarks(benchmark):
    graphs = max(20, int(150 * bench_scale()))
    stats = benchmark.pedantic(lambda: run_ablation(graphs),
                               rounds=1, iterations=1)
    publish("ablation_topmarks", format_kv_section(
        "A-TOPMARK — top marks vs receiver-side root recomputation", stats
    ))
    assert stats["extra root-recompute traversal (s)"] > 0
