"""Compatibility shim — the fallback policy lives in :mod:`repro.policy`.

This module used to hold the hardcoded mutation-crossover arbitration.
That decision is now one row of the declarative decision table in
:mod:`repro.policy.policies` (:class:`~repro.policy.policies
.CrossoverPolicy`), driven per epoch by a
:class:`~repro.policy.engine.PolicyEngine`.  The legacy names are
re-exported here unchanged: ``DeltaPolicy`` instances passed to channels
keep working (``resolve_engine`` converts them, ``byte_crossover``
included), and ``EpochDecision`` / ``ChannelStats`` remain the records
channels expose.
"""

from repro.policy.legacy import (
    DEFAULT_BYTE_CROSSOVER,
    RECORD_OVERHEAD,
    ChannelStats,
    DeltaPolicy,
    EpochDecision,
)

__all__ = [
    "DEFAULT_BYTE_CROSSOVER",
    "RECORD_OVERHEAD",
    "ChannelStats",
    "DeltaPolicy",
    "EpochDecision",
]
