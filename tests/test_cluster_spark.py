"""The SparkContext fleet seam: broadcast fan-out and p2p shuffle routing
ride a real coordinator + worker fleet next to the simulated cluster, and
a fleet casualty demotes fetches without failing the job."""

import pytest

from repro.cluster import Fleet
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.serial import KryoSerializer
from repro.spark.context import SparkContext

from tests.conftest import sample_classpath


@pytest.fixture
def fleet_context(make_fleet, transport_driver):
    """A 3-node simulated cluster whose context routes through a live
    2-worker fleet (nodes map onto fleet workers round-robin)."""
    harness = make_fleet(2)
    fleet = Fleet.connect(transport_driver, harness.coordinator.host,
                          harness.coordinator.port)
    classpath = sample_classpath()
    cluster = Cluster(lambda name: JVM(name, classpath=classpath),
                      worker_count=3)
    sc = SparkContext(cluster, KryoSerializer(registration_required=False),
                      default_parallelism=4, fleet=fleet)
    yield sc, harness
    fleet.close()


def _events(sc, kind):
    return [r["details"] for r in sc.events.as_dicts()
            if r["kind"] == kind]


class TestFleetSeam:
    def test_broadcast_lands_on_every_fleet_worker(self, fleet_context):
        sc, harness = fleet_context
        result = sc.broadcast({"lookup": [1, 2, 3]})
        assert result.value == {"lookup": [1, 2, 3]}
        assert result.fleet_delivered == 2
        (event,) = _events(sc, "fleet_broadcast")
        assert event["delivered"] == 2 and event["failed"] == []

    def test_shuffle_routes_peer_to_peer(self, fleet_context):
        sc, harness = fleet_context
        pairs = [(i % 5, i) for i in range(40)]
        out = dict(sc.parallelize(pairs).reduce_by_key(
            lambda a, b: a + b).collect())
        assert out == {k: sum(i for i in range(40) if i % 5 == k)
                       for k in range(5)}
        assert sc.shuffle.fleet_routes > 0
        assert sc.shuffle.fleet_route_failures == 0
        assert sc.shuffle.fleet_route_bytes > 0
        routed = _events(sc, "fleet_shuffle_route")
        assert len(routed) == sc.shuffle.fleet_routes
        # Every route crosses two *distinct* fleet workers — same-worker
        # pairs and local fetches never touch the fabric.
        assert all(e["src"] != e["dst"] for e in routed)

    def test_dead_fleet_worker_demotes_not_fails(self, fleet_context):
        sc, harness = fleet_context
        harness.kill_worker(harness.worker_names[-1])
        pairs = [(i % 5, i) for i in range(40)]
        out = dict(sc.parallelize(pairs).reduce_by_key(
            lambda a, b: a + b).collect())
        # The job's answer is untouched by the fleet casualty ...
        assert out == {k: sum(i for i in range(40) if i % 5 == k)
                       for k in range(5)}
        # ... the lost routes are demoted to the simulated path, visibly.
        assert sc.shuffle.fleet_route_failures > 0
        assert _events(sc, "fleet_route_failed")
