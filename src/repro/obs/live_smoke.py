"""The fleet-telemetry end-to-end smoke (``repro.obs live-smoke``).

One scripted scenario exercising the whole telemetry plane against real
processes — what the CI ``obs-live-smoke`` job runs:

1. spin a coordinator + N strict workers (telemetry on), one of them
   behind a paced wire (``throttle_mbps`` on its driver channel only);
2. broadcast a mutating graph for a few epochs: every worker's
   epoch-receive series streams back on heartbeats, and the coordinator
   must flag *exactly* the paced worker as a straggler;
3. SIGKILL a healthy worker: its postmortem (final series + the
   flight-recorder dump its last heartbeat carried) must still be
   readable from the coordinator after death is detected;
4. render the ``top`` table and the Prometheus exposition from the live
   document, and line-validate the exposition;
5. the overhead gate: an A/B pair of single-worker fleets (telemetry on
   vs off) runs the same epoch loop; the min-of-epochs wall time may
   differ by at most ``overhead_limit`` (3 % default).

Artifacts land in ``benchmarks/results/live.{json,prom,txt}``.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, List, Optional

from repro.apps.incremental import IncrementalPageRank, build_vertex_graph
from repro.bench.exchange_experiments import irregular_edges
from repro.cluster.fleet import Fleet
from repro.cluster.harness import FleetHarness
from repro.obs.export import prometheus_text, validate_prometheus
from repro.obs.live import render_top
from repro.transport.bootstrap import MB, build_runtime
from repro.transport.testing import SAMPLE_FACTORY

DEFAULT_WORKERS = 4
DEFAULT_EPOCHS = 6
DEFAULT_VERTICES = 500
#: The induced straggler's wire pace.  A delta epoch of the smoke graph
#: is a few tens of KB — ~60 ms at this rate versus sub-millisecond
#: loopback for the healthy workers, far past the 3× median rule.
STRAGGLER_WIRE_MBPS = 4.0
MUTATION_FRACTION = 0.10
#: Seconds allowed for heartbeat-carried samples to land and the
#: coordinator's monitor sweep to run detection (≈ 2 heartbeat windows).
SETTLE_SECONDS = 0.3


def _wait_until(predicate, timeout: float, poll: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return predicate()


def _straggler_leg(workers: int, vertices: int, epochs: int,
                   notes: List[str]) -> Dict[str, object]:
    """The main scenario: paced worker flagged, postmortem survives."""
    driver = build_runtime("live-smoke-driver", SAMPLE_FACTORY,
                           old_bytes=128 * MB)
    pin = driver.jvm.pin(
        build_vertex_graph(driver.jvm, irregular_edges(vertices)))
    graph = pin.address
    pagerank = IncrementalPageRank(driver.jvm, graph)

    out: Dict[str, object] = {"workers": workers, "epochs": epochs}
    with FleetHarness(workers, name="livesmoke", read_timeout=120.0,
                      heartbeat_interval=0.1,
                      straggler_min_samples=3) as harness:
        fleet = Fleet.connect(driver, harness.coordinator.host,
                              harness.coordinator.port, read_timeout=120.0)
        try:
            names = harness.worker_names
            slow = names[-1]
            out["paced_worker"] = slow
            # Channels are cached per worker: opening the paced one first
            # pins its throttle for every later broadcast.
            fleet.channel_to(slow, throttle_mbps=STRAGGLER_WIRE_MBPS)

            events: List[dict] = []
            for _ in range(epochs):
                result = fleet.broadcast([graph])
                events.extend(result.stragglers)
                pagerank.step(active_fraction=MUTATION_FRACTION)
                time.sleep(SETTLE_SECONDS)
            # Detection runs on the coordinator's monitor cadence; give
            # it up to two more heartbeat windows to fire.
            _wait_until(
                lambda: events.extend(fleet.new_stragglers()) or any(
                    e["event"] == "straggler" for e in events),
                timeout=2 * 0.1 * harness.size,
            )
            flagged = sorted({e["worker"] for e in events
                              if e["event"] == "straggler"})
            out["straggler_events"] = events
            out["flagged"] = flagged
            notes.append(f"flagged={flagged} (paced worker: {slow})")

            doc = fleet.telemetry()
            out["telemetry_doc"] = doc
            out["top_text"] = render_top(doc)
            prom = prometheus_text(doc)
            out["prometheus_text"] = prom
            out["prometheus_problems"] = validate_prometheus(prom)

            # -- kill a *healthy* worker; its telemetry must outlive it.
            victim = names[0]
            out["victim"] = victim
            harness.kill_worker(victim)
            dead = _wait_until(
                lambda: not fleet.lookup(victim)["alive"], timeout=10.0)
            out["victim_declared_dead"] = dead
            postmortem = fleet.postmortem(victim)
            out["postmortem_found"] = postmortem is not None
            if postmortem is not None:
                out["postmortem_samples"] = postmortem["samples"]
                out["postmortem_recorder_entries"] = len(
                    postmortem["recorder"])
                out["postmortem_window_len"] = len(
                    postmortem.get("window", []))
                out["postmortem_epochs"] = postmortem["counters"].get(
                    "worker.epochs", 0)
            out["rollups"] = doc.get("rollups", {})
            return out
        finally:
            fleet.close()
            driver.jvm.unpin(pin)


def _overhead_leg(telemetry: bool, vertices: int,
                  epochs: int) -> Dict[str, object]:
    """One leg of the A/B overhead measure: a single-worker fleet runs
    the same delta-epoch loop; min-of-epochs damps scheduler noise."""
    suffix = "on" if telemetry else "off"
    driver = build_runtime(f"live-ab-{suffix}", SAMPLE_FACTORY,
                           old_bytes=128 * MB)
    pin = driver.jvm.pin(
        build_vertex_graph(driver.jvm, irregular_edges(vertices)))
    graph = pin.address
    pagerank = IncrementalPageRank(driver.jvm, graph)
    per_epoch: List[float] = []
    with FleetHarness(1, name=f"liveab{suffix}", read_timeout=120.0,
                      heartbeat_interval=0.1,
                      telemetry=telemetry) as harness:
        fleet = Fleet.connect(driver, harness.coordinator.host,
                              harness.coordinator.port, read_timeout=120.0)
        try:
            fleet.broadcast([graph])  # FULL bootstrap, not timed
            for _ in range(epochs):
                pagerank.step(active_fraction=MUTATION_FRACTION)
                started = time.perf_counter()
                fleet.broadcast([graph])
                per_epoch.append(time.perf_counter() - started)
        finally:
            fleet.close()
            driver.jvm.unpin(pin)
    return {
        "telemetry": telemetry,
        "epochs": len(per_epoch),
        "min_epoch_seconds": min(per_epoch),
        "mean_epoch_seconds": sum(per_epoch) / len(per_epoch),
    }


def run_live_smoke(
    out_dir: Optional[pathlib.Path] = None,
    workers: int = DEFAULT_WORKERS,
    vertices: int = DEFAULT_VERTICES,
    epochs: int = DEFAULT_EPOCHS,
    overhead_epochs: int = 30,
    overhead_limit: float = 0.03,
) -> Dict[str, object]:
    """Run the whole scenario; returns a JSON-serializable result dict."""
    notes: List[str] = []
    main = _straggler_leg(workers, vertices, epochs, notes)

    leg_on = _overhead_leg(True, vertices, overhead_epochs)
    leg_off = _overhead_leg(False, vertices, overhead_epochs)
    base = leg_off["min_epoch_seconds"]
    overhead = (leg_on["min_epoch_seconds"] - base) / base if base > 0 else 0.0
    notes.append(
        f"overhead: telemetry {leg_on['min_epoch_seconds'] * 1e3:.2f} ms "
        f"vs off {base * 1e3:.2f} ms per epoch "
        f"({overhead * 100:+.2f}%, limit {overhead_limit * 100:.0f}%)"
    )

    checks = {
        "straggler_flagged": any(
            e["event"] == "straggler" for e in main["straggler_events"]),
        "straggler_exactly_paced": main["flagged"] == [main["paced_worker"]],
        "top_renders": all(
            name in main["top_text"]
            for name in main["telemetry_doc"]["workers"]),
        "prometheus_valid": not main["prometheus_problems"],
        "postmortem_survives_death": bool(
            main.get("victim_declared_dead")
            and main.get("postmortem_found")
            and main.get("postmortem_samples", 0) > 0
            and main.get("postmortem_recorder_entries", 0) > 0
            and main.get("postmortem_epochs", 0) > 0),
        "telemetry_overhead_ok": overhead <= overhead_limit,
    }

    result: Dict[str, object] = {
        "workers": workers,
        "vertices": vertices,
        "epochs": epochs,
        "paced_worker": main["paced_worker"],
        "flagged": main["flagged"],
        "victim": main["victim"],
        "postmortem_samples": main.get("postmortem_samples", 0),
        "postmortem_recorder_entries": main.get(
            "postmortem_recorder_entries", 0),
        "overhead": {
            "telemetry_on": leg_on, "telemetry_off": leg_off,
            "relative": overhead, "limit": overhead_limit,
        },
        "straggler_events": main["straggler_events"],
        "rollups": main["rollups"],
        "checks": checks,
        "notes": notes,
        "artifacts": [],
    }

    if out_dir is not None:
        out_dir = pathlib.Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        doc_path = out_dir / "live.json"
        payload = dict(result)
        payload["telemetry_doc"] = main["telemetry_doc"]
        doc_path.write_text(json.dumps(payload, indent=2, default=str))
        prom_path = out_dir / "live.prom"
        prom_path.write_text(main["prometheus_text"])
        top_path = out_dir / "live-top.txt"
        top_path.write_text(main["top_text"] + "\n")
        result["artifacts"] = [str(doc_path), str(prom_path), str(top_path)]
    return result


def live_checks_pass(result: Dict[str, object]) -> bool:
    return all(result["checks"].values())
