"""The simulated cluster: nodes holding a JVM + disk, connected by links.

Mirrors the paper's evaluation testbed: a driver node plus workers on a
1000 Mb/s Ethernet.  Transfers are byte-counted per direction (local vs.
remote, matching Figure 3(b)'s "Local Bytes"/"Remote Bytes") and charged to
the receiver's clock under NETWORK, which reports fold into read I/O.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.jvm.jvm import JVM
from repro.net.disk import Disk
from repro.simtime import Category, CostModel, DEFAULT_COST_MODEL, SimClock


class Node:
    """One machine: a JVM, a disk, and a clock shared by both."""

    def __init__(self, name: str, jvm: JVM, cost_model: CostModel) -> None:
        self.name = name
        self.jvm = jvm
        self.clock = jvm.clock
        self.disk = Disk(self.clock, cost_model)
        self.local_bytes_fetched = 0
        self.remote_bytes_fetched = 0

    def account_fetch(self, nbytes: int, remote: bool) -> None:
        """Record bytes this node fetched, local vs. remote (the Figure
        3(b) split).  Both the simulated wire (:meth:`Cluster.transfer`)
        and the real socket transport (:mod:`repro.transport`) route their
        counters through here, so byte reports read one set of fields
        regardless of which transport moved the data."""
        if nbytes < 0:
            raise ValueError("negative fetch size")
        if remote:
            self.remote_bytes_fetched += nbytes
        else:
            self.local_bytes_fetched += nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.name})"


class Cluster:
    """A set of named nodes with a designated driver."""

    def __init__(
        self,
        jvm_factory: Callable[[str], JVM],
        worker_count: int = 3,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        driver_name: str = "driver",
    ) -> None:
        self.cost_model = cost_model
        self.driver = Node(driver_name, jvm_factory(driver_name), cost_model)
        self.workers: List[Node] = [
            Node(f"worker-{i}", jvm_factory(f"worker-{i}"), cost_model)
            for i in range(worker_count)
        ]
        self._by_name: Dict[str, Node] = {self.driver.name: self.driver}
        for w in self.workers:
            self._by_name[w.name] = w
        self.messages_sent = 0
        self.message_bytes = 0

    # -- topology ------------------------------------------------------------

    def node(self, name: str) -> Node:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no node named {name!r}") from None

    def nodes(self) -> Iterator[Node]:
        yield self.driver
        yield from self.workers

    def __len__(self) -> int:
        return 1 + len(self.workers)

    # -- data movement ---------------------------------------------------------

    def transfer(self, src: Node, dst: Node, nbytes: int) -> None:
        """Bulk data movement; the receiver pays the network time.

        A node fetching from itself is a local read (no network charge) —
        this is how shuffle distinguishes local from remote partitions.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if src is dst:
            dst.account_fetch(nbytes, remote=False)
            return
        dst.account_fetch(nbytes, remote=True)
        dst.clock.charge(self.cost_model.network_transfer(nbytes), Category.NETWORK)

    def send_message(self, src: Node, dst: Node, nbytes: int) -> None:
        """Small control message (type-registry traffic); sender pays."""
        self.messages_sent += 1
        self.message_bytes += nbytes
        if src is not dst:
            src.clock.charge(self.cost_model.network_transfer(nbytes), Category.NETWORK)

    # -- metrics -----------------------------------------------------------------

    def total_clock(self) -> SimClock:
        """All nodes' clocks folded together (cluster CPU-seconds)."""
        total = SimClock("cluster")
        for node in self.nodes():
            total.merge(node.clock)
        return total

    def reset_clocks(self) -> None:
        for node in self.nodes():
            node.clock.reset()
            node.local_bytes_fetched = 0
            node.remote_bytes_fetched = 0

    def max_node_time(self) -> float:
        """The slowest node's total — the wall-clock proxy for one job
        under the paper's single-executor-per-node setup."""
        return max(node.clock.total() for node in self.nodes())
