"""Tests for the compiled clone-kernel fast path.

The contract: for every homogeneous send the kernel path must produce the
*exact* framed bytes the interpreted per-field traversal produces — same
clones, same relativized references, same charges on the simulated clock.
Kernels may only change how fast the Python gets there.
"""

import pytest

from repro.core.kernels import clone_kernel_for
from repro.core.receiver import ReceiveError
from repro.core.runtime import attach_skyway
from repro.core.sender import SendError
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.heap.layout import BASELINE_LAYOUT
from repro.jvm.jvm import JVM
from repro.types.classdef import ClassPath
from repro.types.corelib import install_core_classes

from tests.conftest import make_date, make_list, read_date, read_list


@pytest.fixture
def pair(classpath):
    src = JVM("k-src", classpath=classpath)
    dst = JVM("k-dst", classpath=classpath)
    attach_skyway(src, [dst])
    return src, dst


def framed(src, roots, use_kernels, thread_id=0):
    """One fresh-phase send of ``roots``; returns the framed byte stream."""
    src.skyway.use_kernels = use_kernels
    src.skyway.shuffle_start()
    out = SkywayObjectOutputStream(
        src.skyway, destination="kernel-test", thread_id=thread_id
    )
    for root in roots:
        out.write_object(root)
    return out.close()


def roundtrip(dst, data):
    inp = SkywayObjectInputStream(dst.skyway)
    inp.accept(data)
    return inp


# ---------------------------------------------------------------------------
# byte-for-byte parity with the interpreted traversal
# ---------------------------------------------------------------------------

class TestKernelByteParity:
    def assert_parity(self, src, roots):
        assert framed(src, roots, True) == framed(src, roots, False)

    def test_instance_graph(self, pair):
        src, _ = pair
        self.assert_parity(src, [make_date(src, 2018, 3, 24)])

    def test_linked_list(self, pair):
        src, _ = pair
        self.assert_parity(src, [make_list(src, range(100))])

    def test_reference_array(self, pair):
        src, _ = pair
        arr = src.new_array("Ljava.lang.Object;", 5)
        pin = src.pin(arr)
        for i in range(4):  # last slot stays null
            src.heap.write_element(pin.address, i, make_date(src, i, 1, 1))
        self.assert_parity(src, [pin.address])

    def test_primitive_arrays(self, pair):
        src, _ = pair
        roots = []
        for desc, values in (("J", [1, -1, 2**40]), ("I", [3, -4]),
                             ("B", [7] * 13), ("D", [0.5, -2.25])):
            arr = src.new_array(desc, len(values))
            for i, v in enumerate(values):
                src.heap.write_element(arr, i, v)
            roots.append(arr)
        self.assert_parity(src, roots)

    def test_diamond_sharing(self, pair):
        """A leaf reachable twice serializes once + one backward ref."""
        src, _ = pair
        shared = src.new_instance("Day2D")
        src.set_field(shared, "day", 9)
        d1, d2 = src.new_instance("Date"), src.new_instance("Date")
        src.set_field(d1, "day", shared)
        src.set_field(d2, "day", shared)
        holder = src.new_array("Ljava.lang.Object;", 2)
        pin = src.pin(holder)
        src.heap.write_element(pin.address, 0, d1)
        src.heap.write_element(pin.address, 1, d2)
        self.assert_parity(src, [pin.address])

    def test_null_references(self, pair):
        src, _ = pair
        date = src.new_instance("Date")  # all three fields null
        self.assert_parity(src, [date])

    def test_mixed_field_gaps(self, pair):
        """Sub-word fields + alignment gaps: the scattered-unpack kernel
        must relativize exactly the reference slots and nothing else."""
        src, _ = pair
        m = src.new_instance("Mixed")
        for f, v in (("b", 7), ("z", 1), ("c", 65), ("s", -2),
                     ("i", 12345), ("f", 2.5), ("j", 2**50), ("d", -0.125)):
            src.set_field(m, f, v)
        src.set_field(m, "ref", make_date(src, 1, 2, 3))
        self.assert_parity(src, [m])

    def test_roundtrip_and_clock_parity(self, classpath):
        """Same graph shape through two fresh clusters: identical receiver
        values AND identical simulated-time charges either way."""
        times = {}
        for use_kernels in (True, False):
            src = JVM("cp-src", classpath=classpath)
            dst = JVM("cp-dst", classpath=classpath)
            attach_skyway(src, [dst])
            head = make_list(src, range(50))
            before = src.clock.total()
            data = framed(src, [head], use_kernels)
            times[use_kernels] = src.clock.total() - before
            inp = roundtrip(dst, data)
            assert read_list(dst, inp.read_object()) == list(range(50))
        assert times[True] == pytest.approx(times[False], rel=1e-9)


# ---------------------------------------------------------------------------
# kernel lifecycle
# ---------------------------------------------------------------------------

class TestKernelLifecycle:
    def test_send_compiles_and_caches_kernels(self, pair):
        src, _ = pair
        framed(src, [make_date(src, 1, 1, 1)], True)
        klass = src.loader.load("Date")
        kernel = klass.clone_kernel
        assert kernel is not None and kernel.tid == klass.tid
        framed(src, [make_date(src, 2, 2, 2)], True)
        assert klass.clone_kernel is kernel  # cache hit, no recompile

    def test_tid_reassignment_invalidates_kernel(self, pair):
        src, _ = pair
        framed(src, [make_date(src, 1, 1, 1)], True)
        klass = src.loader.load("Date")
        stale = klass.clone_kernel
        assert stale is not None
        klass.tid = klass.tid + 1000  # e.g. a HELLO merge renumbering
        assert klass.clone_kernel is None
        framed(src, [make_date(src, 3, 3, 3)], True)
        assert klass.clone_kernel is not None
        assert klass.clone_kernel is not stale
        assert klass.clone_kernel.tid == klass.tid

    def test_clone_kernel_for_rejects_untyped_class(self, pair):
        src, _ = pair
        klass = src.loader.load("Date")
        layout, cost = src.layout, src.cost_model
        kernel = clone_kernel_for(klass, layout, cost)
        assert kernel.size == klass.object_size()
        assert len(kernel.ref_offsets) == 3

    def test_receiver_memoizes_kernels_per_tid(self, pair):
        src, dst = pair
        data = framed(src, [make_list(src, range(10))], True)
        inp = roundtrip(dst, data)
        kernels = inp.receiver._kernels
        # 10 ListNodes, one tID, one compiled receive kernel.
        assert len(kernels) == 1
        assert inp.receiver.objects_received == 10


# ---------------------------------------------------------------------------
# satellite regressions: typed errors out of the conversion/receive paths
# ---------------------------------------------------------------------------

class TestHeterogeneousFieldMismatch:
    def test_missing_source_field_is_a_send_error(self, classpath):
        """A receiver-side class declaring a field the sender's class lacks
        must surface as a SendError naming both, not a bare KeyError."""
        src = JVM("h-src", classpath=classpath)
        dst = JVM("h-dst", classpath=classpath, layout=BASELINE_LAYOUT)
        attach_skyway(src, [dst])
        date = make_date(src, 1, 1, 1)
        src.skyway.shuffle_start()
        sender = src.skyway.new_sender(
            "h", target_layout=BASELINE_LAYOUT, fresh_buffer=True
        )
        assert sender.heterogeneous and not sender.use_kernels

        # The destination evolved: its Date has an extra "era" field.
        evolved = install_core_classes(ClassPath())
        evolved.define("Year4D", [("year", "I")])
        evolved.define("Month2D", [("month", "I")])
        evolved.define("Day2D", [("day", "I")])
        evolved.define("Date", [
            ("year", "LYear4D;"), ("month", "LMonth2D;"),
            ("day", "LDay2D;"), ("era", "I"),
        ])
        target = JVM("h-evolved", classpath=evolved, layout=BASELINE_LAYOUT)
        sender._target_cache["Date"] = target.loader.load("Date")

        with pytest.raises(SendError, match=r"Date.*'era'"):
            sender.write_object(date)


class TestNullTidRejection:
    def test_zero_klass_word_is_a_receive_error(self, pair):
        src, dst = pair
        src.skyway.shuffle_start()
        sender = src.skyway.new_sender("z", fresh_buffer=True)
        sender.write_object(make_date(src, 1, 1, 1))
        sender.buffer.flush()
        data = bytearray(b"".join(sender.buffer.drain_segments()))
        data[8:16] = bytes(8)  # stomp the root's klass word with tID 0
        receiver = dst.skyway.new_receiver()
        with pytest.raises(ReceiveError, match="null tID at segment offset 0"):
            receiver.feed(bytes(data))
