"""The flight recorder: a bounded ring of recent events, for postmortems.

A worker that dies mid-run takes its metrics and spans with it — unless
something cheap was already shipping a postmortem off the process.  The
:class:`FlightRecorder` is that something: a fixed-capacity ring
(``collections.deque(maxlen=...)``) of small dict events, appended in
O(1), never growing, and drained incrementally into the telemetry payload
each heartbeat carries (:mod:`repro.obs.live`).  When the process is
SIGKILLed, the coordinator still holds everything the *last successful
heartbeat* delivered — which is the whole point.

Three producers feed it:

* **typed errors** — the worker's op dispatcher records every
  ``PeerGoneError`` / ``DeltaStaleError`` / channel NACK it answers
  (``obs.record("error", ...)``);
* **epochs and ops** — one compact entry per applied epoch, so the dump
  reads as a timeline of the worker's last moments;
* **the tracer tap** — when both a tracer and a recorder are enabled,
  every *closed* span lands in the ring as a ``"span"`` entry (name,
  duration, attrs), so a traced run's recorder dump is a poor man's
  trace of the final seconds.

The module-level fast path mirrors :mod:`repro.obs.tracer`: with no
recorder enabled, :func:`record` costs one global load and one ``None``
check — nothing allocates, nothing locks.  Entries carry a process-wide
monotonic ``seq`` so incremental drains (``drain_since``) and
coordinator-side dedup are exact even across re-registrations.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

#: Default ring capacity.  256 entries at ~120 bytes JSON each keeps a
#: full dump under ~32 KiB — comfortably inside one heartbeat CALL frame.
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """A bounded, thread-safe ring of recent events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 span_tap: bool = True) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        #: When true (the default) the tracer's ``finish`` appends every
        #: closed span as a ``"span"`` entry.
        self.span_tap = span_tap
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.recorded = 0

    # -- writing -----------------------------------------------------------

    def record(self, kind: str, **fields: Any) -> int:
        """Append one event; returns its sequence number.  O(1): the deque
        evicts the oldest entry itself once the ring is full."""
        with self._lock:
            self._seq += 1
            seq = self._seq
            entry = {"seq": seq, "t_s": time.time(), "kind": kind}
            for key, value in fields.items():
                if key not in entry:  # seq/t_s/kind stay authoritative
                    entry[key] = value
            self._ring.append(entry)
            self.recorded += 1
        return seq

    def record_span(self, span) -> None:
        """The tracer tap: one compact entry per closed span.  Attrs ride
        along, minus the ring's reserved keys — a span attribute named
        ``kind`` must not shadow the entry kind (or blow up the call)."""
        fields: Dict[str, Any] = {
            "name": span.name, "dur_us": round(span.duration_us, 1),
        }
        if span.attrs:
            for key, value in span.attrs.items():
                if key not in ("seq", "t_s", "kind", "name", "dur_us"):
                    fields[key] = value
        self.record("span", **fields)

    # -- reading -----------------------------------------------------------

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def dump(self) -> List[Dict[str, Any]]:
        """Everything currently in the ring, oldest first (a copy)."""
        with self._lock:
            return [dict(e) for e in self._ring]

    def drain_since(self, seq: int) -> List[Dict[str, Any]]:
        """Entries recorded after ``seq``, oldest first.  Non-destructive
        (the ring keeps its postmortem value); the caller tracks the high
        watermark — :class:`~repro.obs.live.TelemetrySampler` does."""
        with self._lock:
            return [dict(e) for e in self._ring if e["seq"] > seq]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


# ---------------------------------------------------------------------------
# module-level fast path (mirrors tracer's enable/disable discipline)
# ---------------------------------------------------------------------------

_state_lock = threading.Lock()
_recorder: Optional[FlightRecorder] = None


def recorder_enabled() -> bool:
    return _recorder is not None


def get_recorder() -> Optional[FlightRecorder]:
    return _recorder


def enable_recorder(capacity: int = DEFAULT_CAPACITY,
                    span_tap: bool = True) -> FlightRecorder:
    """Turn the process-global recorder on (idempotent)."""
    global _recorder
    with _state_lock:
        if _recorder is None:
            _recorder = FlightRecorder(capacity=capacity, span_tap=span_tap)
        return _recorder


def disable_recorder() -> Optional[FlightRecorder]:
    """Turn the recorder off, returning the detached ring for inspection."""
    global _recorder
    with _state_lock:
        rec, _recorder = _recorder, None
        return rec


def record(kind: str, **fields: Any) -> None:
    """THE event entry point.  Disabled: one module-global load, one
    ``None`` check — the same contract as :func:`repro.obs.span`."""
    rec = _recorder
    if rec is None:
        return
    rec.record(kind, **fields)
