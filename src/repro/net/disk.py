"""Per-node disk model: named files with bandwidth-based read/write costs."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.simtime import Category, CostModel, SimClock


class SimFile:
    """A file on a simulated disk (bytes plus a name)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.data = bytearray()

    @property
    def size(self) -> int:
        return len(self.data)


class Disk:
    """One node's SSD.

    Writes charge :data:`Category.WRITE_IO` and reads charge
    :data:`Category.READ_IO` on the owning node's clock, at the cost model's
    sequential bandwidths plus a per-file overhead.
    """

    def __init__(self, clock: SimClock, cost_model: CostModel) -> None:
        self._clock = clock
        self._cost = cost_model
        self._files: Dict[str, SimFile] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    def create(self, name: str) -> SimFile:
        if name in self._files:
            raise FileExistsError(name)
        f = SimFile(name)
        self._files[name] = f
        self._clock.charge(self._cost.disk_file_overhead, Category.WRITE_IO)
        return f

    def append(self, f: SimFile, data: bytes) -> None:
        f.data.extend(data)
        self.bytes_written += len(data)
        self._clock.charge(
            len(data) * self._cost.disk_write_per_byte, Category.WRITE_IO
        )

    def write_file(self, name: str, data: bytes) -> SimFile:
        f = self.create(name)
        self.append(f, data)
        return f

    def read_file(self, name: str) -> bytes:
        f = self.open(name)
        self.bytes_read += f.size
        self._clock.charge(self._cost.disk_read(f.size), Category.READ_IO)
        return bytes(f.data)

    def open(self, name: str) -> SimFile:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(name) from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def listdir(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._files if n.startswith(prefix))

    def size_of(self, name: str) -> int:
        return self.open(name).size
