"""Tests for the generational collector: scavenge, promotion, full GC."""

import pytest

from repro.heap import markword
from repro.heap.heap import NULL, OutOfMemoryError
from repro.jvm.jvm import JVM

from tests.conftest import make_date, make_list, read_date, read_list


class TestMinorGC:
    def test_rooted_object_survives(self, jvm):
        date = make_date(jvm, 2018, 3, 24)
        pin = jvm.pin(date)
        jvm.gc.minor()
        assert pin.address != date  # it moved
        assert read_date(jvm, pin.address) == (2018, 3, 24)

    def test_garbage_reclaimed(self, jvm):
        for _ in range(100):
            jvm.new_instance("Date")
        used_before = jvm.heap.eden.used
        jvm.gc.minor()
        assert jvm.heap.eden.used == 0
        assert jvm.heap.survivor_from.used == 0  # nothing live
        assert used_before > 0

    def test_linked_structure_preserved(self, jvm):
        head = make_list(jvm, list(range(50)))
        pin = jvm.pin(head)
        jvm.gc.minor()
        assert read_list(jvm, pin.address) == list(range(50))

    def test_shared_object_copied_once(self, jvm):
        shared = jvm.new_instance("ListNode")
        jvm.set_field(shared, "payload", 77)
        a = jvm.new_instance("ListNode")
        jvm.set_field(a, "next", shared)
        b = jvm.new_instance("ListNode")
        jvm.set_field(b, "next", jvm.get_field(a, "next"))
        pa, pb = jvm.pin(a), jvm.pin(b)
        jvm.gc.minor()
        assert jvm.get_field(pa.address, "next") == jvm.get_field(pb.address, "next")
        assert jvm.get_field(jvm.get_field(pa.address, "next"), "payload") == 77

    def test_cycle_survives(self, jvm):
        a = jvm.new_instance("ListNode")
        b = jvm.new_instance("ListNode")
        jvm.set_field(a, "next", b)
        jvm.set_field(b, "next", a)
        jvm.set_field(a, "payload", 1)
        jvm.set_field(b, "payload", 2)
        pin = jvm.pin(a)
        jvm.gc.minor()
        na = pin.address
        nb = jvm.get_field(na, "next")
        assert jvm.get_field(nb, "next") == na
        assert jvm.get_field(na, "payload") == 1
        assert jvm.get_field(nb, "payload") == 2

    def test_hashcode_survives_moves(self, jvm):
        addr = jvm.new_instance("Date")
        pin = jvm.pin(addr)
        h = jvm.identity_hash(addr)
        jvm.gc.minor()
        assert jvm.identity_hash(pin.address) == h

    def test_age_increments_until_promotion(self, jvm):
        addr = jvm.new_instance("Date")
        pin = jvm.pin(addr)
        for _ in range(jvm.gc.tenuring_threshold):
            jvm.gc.minor()
        assert jvm.heap.old.contains(pin.address)
        assert jvm.gc.stats.bytes_promoted > 0

    def test_old_to_young_pointer_keeps_young_alive(self, jvm):
        old_obj = jvm.heap.allocate(jvm.loader.load("ListNode"), old_gen=True)
        jvm.heap.register_object  # noqa: B018 - allocate already registered it
        young = jvm.new_instance("ListNode")
        jvm.set_field(young, "payload", 42)
        jvm.set_field(old_obj, "next", young)  # dirties a card
        jvm.gc.minor()
        moved = jvm.get_field(old_obj, "next")
        assert moved != young
        assert jvm.get_field(moved, "payload") == 42

    def test_null_handles_ignored(self, jvm):
        jvm.pin(NULL)
        jvm.gc.minor()  # must not crash

    def test_allocation_triggers_gc_automatically(self, classpath):
        jvm = JVM("auto", classpath=classpath, young_bytes=48 * 1024,
                  old_bytes=512 * 1024)
        keep = jvm.pin(make_list(jvm, range(10)))
        for _ in range(3000):
            jvm.new_instance("Date")  # garbage
        assert read_list(jvm, keep.address) == list(range(10))
        assert jvm.gc.stats.minor_collections > 0


class TestFullGC:
    def test_everything_compacts_into_old(self, jvm):
        date = make_date(jvm, 1999, 12, 31)
        pin = jvm.pin(date)
        jvm.gc.full()
        assert jvm.heap.old.contains(pin.address)
        assert jvm.heap.eden.used == 0
        assert read_date(jvm, pin.address) == (1999, 12, 31)

    def test_dead_old_objects_reclaimed(self, jvm):
        live = jvm.pin(make_list(jvm, [1, 2, 3]))
        for _ in range(50):
            jvm.heap.allocate(jvm.loader.load("Date"), old_gen=True)
        jvm.gc.full()
        assert read_list(jvm, live.address) == [1, 2, 3]
        # Only the three list nodes remain.
        assert len(jvm.heap.old.object_starts) == 3

    def test_full_gc_resets_age(self, jvm):
        addr = jvm.new_instance("Date")
        pin = jvm.pin(addr)
        jvm.gc.minor()
        jvm.gc.minor()
        jvm.gc.full()
        assert markword.get_age(jvm.heap.read_mark(pin.address)) == 0

    def test_hash_survives_full_gc(self, jvm):
        addr = jvm.new_instance("Date")
        pin = jvm.pin(addr)
        h = jvm.identity_hash(addr)
        jvm.gc.full()
        assert jvm.identity_hash(pin.address) == h

    def test_card_table_cleared_after_full(self, jvm):
        old_obj = jvm.heap.allocate(jvm.loader.load("ListNode"), old_gen=True)
        jvm.pin(old_obj)
        young = jvm.new_instance("ListNode")
        jvm.set_field(old_obj, "next", young)
        jvm.gc.full()
        assert jvm.heap.card_table.dirty_count == 0

    def test_oom_when_live_set_exceeds_old(self, classpath):
        jvm = JVM("cramped", classpath=classpath,
                  young_bytes=1024 * 1024, old_bytes=16 * 1024)
        pins = [jvm.pin(jvm.new_instance("Mixed")) for _ in range(400)]
        with pytest.raises(OutOfMemoryError):
            jvm.gc.full()
        assert pins  # silence lint


class TestGCStats:
    def test_counters_advance(self, jvm):
        jvm.pin(make_date(jvm, 1, 2, 3))
        jvm.gc.minor()
        jvm.gc.full()
        assert jvm.gc.stats.minor_collections == 1
        assert jvm.gc.stats.full_collections == 1
        assert jvm.gc.stats.bytes_scavenged > 0
        assert jvm.gc.stats.bytes_compacted > 0
