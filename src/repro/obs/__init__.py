"""repro.obs — tracing, metrics, and exporters for every graph send.

The paper's headline artifact is a *breakdown*: where the seconds go
(traversal vs. copy vs. wire vs. receive fix-up, Figure 3/8) and where the
bytes go (headers / padding / pointers, §6.1).  This package is the layer
that produces those breakdowns from live runs instead of ad-hoc ledgers:

* :mod:`repro.obs.tracer` — span-based tracing with monotonic wall-clock
  *and* simulated-clock timestamps, a module-level no-op fast path when
  disabled, and cross-process span grafting (worker spans stitch under the
  driver's trace via the TRACE wire frame);
* :mod:`repro.obs.registry` — one metrics registry (counters / gauges /
  histograms with labels) that the existing ledgers *feed* as snapshot
  sources: ``ExchangeMetrics``, ``TransportMetrics``, ``EventLog``, GC
  stats;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto /
  ``chrome://tracing``), a terminal phase-breakdown report in the paper's
  table style, and snapshot diffing;
* ``python -m repro.obs`` — the CLI (``report`` / ``trace`` / ``diff`` /
  ``smoke``).

Import discipline: this package imports **stdlib only**, so every layer —
``repro.heap.gc`` included — can instrument itself without cycles.

The disabled fast path is the contract the kernel hot loop relies on:
``obs.span(...)`` with no tracer enabled is one module-global load, one
``None`` check, and a shared no-op context manager — no allocation, no
lock, no clock read.
"""

from __future__ import annotations

from repro.obs.recorder import (
    FlightRecorder,
    disable_recorder,
    enable_recorder,
    get_recorder,
    record,
    recorder_enabled,
)
from repro.obs.registry import MetricsRegistry, registry
from repro.obs.tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    absorb_remote,
    current_context,
    disable,
    enable,
    enabled,
    end_span,
    get_tracer,
    span,
    start_span,
)

__all__ = [
    "FlightRecorder",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "absorb_remote",
    "current_context",
    "disable",
    "disable_recorder",
    "enable",
    "enable_recorder",
    "enabled",
    "end_span",
    "get_recorder",
    "get_tracer",
    "record",
    "recorder_enabled",
    "registry",
    "reset",
    "snapshot",
    "span",
    "start_span",
]


def snapshot() -> dict:
    """One merged observability snapshot: registry metrics + every
    registered ledger source, plus the active trace (if any)."""
    out = {"metrics": registry().snapshot()}
    tracer = get_tracer()
    if tracer is not None:
        out["trace"] = {
            "trace_id": tracer.trace_id,
            "process": tracer.process,
            "open_spans": len(tracer.open_spans()),
            "spans": [s.as_dict() for s in tracer.spans()],
        }
    return out


def reset() -> None:
    """Detach all global observability state: drop the tracer (spans and
    all), detach the flight recorder, and clear the registry including
    its sources.  Tests call this between cases so nothing leaks."""
    disable()
    disable_recorder()
    registry().clear()
