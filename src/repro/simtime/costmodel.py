"""The calibrated cost model: every simulated-time constant in one place.

Each constant is the modeled cost, in simulated seconds, of one primitive
operation on the paper's testbed (2× Xeon E5-2640 v3, 1000 Mb/s Ethernet,
SATA SSD).  The constants are chosen so that the *relationships* the paper
reports hold:

* reflection is the dominant per-field cost of the Java serializer (string
  lookup per access);
* Kryo's manual/generated accessors are ~an order of magnitude cheaper per
  field than reflection but still per-field and per-object;
* Skyway pays only a bulk memcpy plus a small per-object header fix-up and a
  per-reference relativization, so its per-object cost is far below any
  per-field scheme;
* disk and network costs are linear in bytes at realistic bandwidths, small
  enough that Skyway's ~50-77% extra bytes cost only a few percent of
  runtime (paper §1: +50% data → +4% time on net/read I/O).

Calibration targets (paper numbers) appear in comments next to the constants
they pin down; `EXPERIMENTS.md` records how close the reproduction lands.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Simulated-seconds cost of primitive operations.

    All systems in the repo — heap, GC, serializers, Skyway, engines —
    charge through one instance of this class, so every experiment shares a
    single calibration.
    """

    # -- CPU primitives ---------------------------------------------------
    #: One reflective field access (Reflection.getField/setField): a string
    #: lookup plus access-check machinery.  The Java serializer pays this
    #: per field per object, which is why it is 67x slower than Skyway on
    #: JSBS media objects (~12 fields + nested objects).
    reflective_access: float = 150e-9
    #: Resolving a type from its string during Java deserialization
    #: (Class.forName-style lookup, amortized over a connection's cache).
    reflective_type_resolve: float = 600e-9
    #: One manually-written / Kryo-generated field accessor invocation.
    generated_access: float = 11e-9
    #: Dispatching one user-provided S/D function (Kryo read/write method,
    #: Flink built-in field serializer): virtual call + stream bookkeeping.
    sd_function_call: float = 35e-9
    #: Allocating one object on the managed heap (bump pointer + header).
    object_alloc: float = 20e-9
    #: Running a constructor / readObject re-initialization during
    #: deserialization (beyond per-field writes).
    constructor_call: float = 45e-9
    #: Bulk memory copy, per byte (memcpy at ~16 GB/s effective).
    memcpy_per_byte: float = 0.06e-9
    #: Per-byte cost of stream encode/decode for byte-oriented serializers
    #: (varint packing, bounds checks on a byte-at-a-time stream).
    stream_byte: float = 1.1e-9
    #: Writing/reading one UTF-8 character of a type string.
    string_char: float = 1.2e-9
    #: Computing a hashcode for one object on insertion into a hash-based
    #: structure (receiver-side rehashing for ordinary serializers).
    hash_insert: float = 45e-9
    #: One word read/write during the GC-like traversal (queue push/pop,
    #: mark test).  Skyway's sender pays this per reference visited.
    traverse_word: float = 22e-9
    #: Skyway per-object overhead on the sender: header fix-up (reset
    #: GC/lock bits, patch tID), baddr bookkeeping.
    skyway_header_fixup: float = 30e-9
    #: Skyway per-reference relativization / absolutization (one word
    #: rewrite plus chunk arithmetic on receive).
    skyway_pointer_fixup: float = 6e-9
    #: Per-object cost of the receiver's linear scan (size decode + klass
    #: patch from the registry view).
    skyway_receive_object: float = 6e-9
    #: Card-table update per received buffer chunk.
    card_table_update: float = 80e-9
    #: java.io.ObjectOutputStream per-object machinery beyond reflection:
    #: writeObject0 dispatch, identity handle-table insertion, block-data
    #: copying.  (jvm-serializers measures the JDK serializer at ~5-8us per
    #: ~1KB object against ~0.6us for kryo-manual; per-field reflection
    #: alone does not account for that.)
    java_stream_object_overhead: float = 600e-9
    #: java.io.ObjectInputStream per-object machinery: readObject0,
    #: ObjectStreamClass lookup/validation, reflective construction path.
    #: Deserialization dominates the JDK serializer's cost (~25-40us per
    #: object on jvm-serializers), as in the paper's 67x gap.
    java_read_object_overhead: float = 1300e-9
    #: Matching one stream field to a class field by name during
    #: ObjectInputStream's defaultReadFields.
    java_field_match: float = 180e-9
    #: Per-String machinery of the JDK serializer (each direction): handle
    #: registration, reflective char[] extraction, UTF encoder setup.  JSBS
    #: media objects carry ~7 strings each, which is where the JDK
    #: serializer's 67x gap mostly comes from.
    java_string_overhead: float = 4000e-9

    # -- I/O --------------------------------------------------------------
    #: SSD sequential write, per byte (~450 MB/s).
    disk_write_per_byte: float = 1.0 / (450 * 1024 * 1024)
    #: SSD sequential read, per byte (~500 MB/s).
    disk_read_per_byte: float = 1.0 / (500 * 1024 * 1024)
    #: Per-file overhead through Spark's buffered shuffle writers.
    disk_file_overhead: float = 4e-6
    #: Network transfer, per byte (1000 Mb/s Ethernet ≈ 117 MB/s effective).
    network_per_byte: float = 1.0 / (117 * 1024 * 1024)
    #: Per-transfer latency over persistent, pipelined connections.
    network_latency: float = 15e-6

    # -- derived helpers ---------------------------------------------------

    def memcpy(self, nbytes: int) -> float:
        return nbytes * self.memcpy_per_byte

    def stream_bytes(self, nbytes: int) -> float:
        return nbytes * self.stream_byte

    def string_cost(self, text: str) -> float:
        return len(text) * self.string_char

    def disk_write(self, nbytes: int) -> float:
        return self.disk_file_overhead + nbytes * self.disk_write_per_byte

    def disk_read(self, nbytes: int) -> float:
        return self.disk_file_overhead + nbytes * self.disk_read_per_byte

    def network_transfer(self, nbytes: int) -> float:
        return self.network_latency + nbytes * self.network_per_byte

    def scaled(self, **overrides: float) -> "CostModel":
        """A copy with some constants replaced (used by ablation benches)."""
        return dataclasses.replace(self, **overrides)


#: The single calibration shared by default across the repository.
DEFAULT_COST_MODEL = CostModel()

#: Profile for the JSBS micro-benchmark cluster.  The paper's motivation /
#: micro-benchmark nodes "are part of a large cluster connected via
#: InfiniBand" (§2.2); Figure 7's totals (Skyway fastest overall despite
#: transferring ~50% more bytes) are only self-consistent on a fabric-class
#: network where per-object transfer time sits below per-object S/D time.
#: The Spark/Flink experiments keep the default 1000 Mb/s Ethernet profile,
#: matching §5's testbed description.
INFINIBAND_COST_MODEL = DEFAULT_COST_MODEL.scaled(
    network_per_byte=1.0 / (4 * 1024 * 1024 * 1024),  # ~32 Gb/s effective
    network_latency=5e-6,
)
