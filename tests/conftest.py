"""Shared fixtures: JVMs, sample class definitions, and graph builders."""

import pytest

from repro.jvm.jvm import JVM
from repro.types.classdef import ClassPath
from repro.types.corelib import install_core_classes


def sample_classpath() -> ClassPath:
    """A class path with the paper's running example (Figure 2's Date
    parsing classes) plus a linked-list node for graph tests."""
    cp = install_core_classes(ClassPath())
    cp.define("Year4D", [("year", "I")])
    cp.define("Month2D", [("month", "I")])
    cp.define("Day2D", [("day", "I")])
    cp.define(
        "Date",
        [("year", "LYear4D;"), ("month", "LMonth2D;"), ("day", "LDay2D;")],
    )
    cp.define("DateParser", [("parsed", "J")])
    cp.define(
        "ListNode",
        [("payload", "J"), ("next", "LListNode;")],
    )
    cp.define(
        "Mixed",
        [
            ("b", "B"), ("z", "Z"), ("c", "C"), ("s", "S"),
            ("i", "I"), ("f", "F"), ("j", "J"), ("d", "D"),
            ("ref", "Ljava.lang.Object;"),
        ],
    )
    return cp


@pytest.fixture
def classpath() -> ClassPath:
    return sample_classpath()


@pytest.fixture
def jvm(classpath) -> JVM:
    return JVM("test-jvm", classpath=classpath)


@pytest.fixture
def small_jvm(classpath) -> JVM:
    """A JVM with a tiny heap, for exercising GC paths."""
    return JVM("small-jvm", classpath=classpath, young_bytes=48 * 1024, old_bytes=256 * 1024)


def make_date(jvm: JVM, year: int, month: int, day: int) -> int:
    """Build a Date object graph (root + three leaves), returning its addr."""
    date = jvm.new_instance("Date")
    pin = jvm.pin(date)
    try:
        for field, cls, inner, value in (
            ("year", "Year4D", "year", year),
            ("month", "Month2D", "month", month),
            ("day", "Day2D", "day", day),
        ):
            leaf = jvm.new_instance(cls)
            jvm.set_field(leaf, inner, value)
            jvm.set_field(pin.address, field, leaf)
        return pin.address
    finally:
        jvm.unpin(pin)


def read_date(jvm: JVM, date: int) -> tuple:
    out = []
    for field, inner in (("year", "year"), ("month", "month"), ("day", "day")):
        leaf = jvm.get_field(date, field)
        out.append(jvm.get_field(leaf, inner))
    return tuple(out)


def make_list(jvm: JVM, payloads) -> int:
    """Build a singly linked ListNode chain, returning the head address."""
    head = 0
    head_pin = jvm.pin(0)
    try:
        for payload in reversed(list(payloads)):
            node = jvm.new_instance("ListNode")
            jvm.set_field(node, "payload", payload)
            jvm.set_field(node, "next", head_pin.address)
            head_pin.address = node
            head = node
        return head
    finally:
        jvm.unpin(head_pin)


def read_list(jvm: JVM, head: int):
    out = []
    node = head
    while node:
        out.append(jvm.get_field(node, "payload"))
        node = jvm.get_field(node, "next")
    return out
