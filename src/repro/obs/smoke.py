"""The obs smoke run: one traced send over every path, then self-check.

One driver process, one spawned socket worker, one in-process receiver.
Under a single enabled trace it performs a loopback epoch send, a socket
epoch send (bootstrap + mutated delta each), and a ``SparkContext``
broadcast over the socket exchange — so the resulting trace holds
sender-side spans (traverse, delta diff, pipeline, wire write), worker-side
spans grafted over the TRACE frame (receive, absolutize/apply), and the
engine-level broadcast spans, all under one trace id.

The checks are the CI gate: the exported Chrome trace validates (every
span closed, parents resolve and contain their children, one trace id),
worker spans are present and parented under driver spans, and the phase
report's per-channel wire bytes equal the ``ExchangeMetrics`` ledger —
byte-exact, because the report *reads* the ledger through the registry.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Optional

from repro import obs
from repro.apps.incremental import IncrementalPageRank, build_vertex_graph
from repro.core.runtime import SkywayRuntime
from repro.exchange import (
    ChannelCapabilities,
    Exchange,
    LoopbackGraphChannel,
    SocketGraphChannel,
)
from repro.jvm.jvm import JVM
from repro.net.cluster import Cluster
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.serial.java_serializer import JavaSerializer
from repro.spark.context import SparkContext
from repro.transport import WorkerClient, WorkerHandle, WorkerSpec
from repro.transport.bootstrap import MB, build_runtime
from repro.transport.testing import SAMPLE_FACTORY, ring_edges, sample_worker_classpath

DEFAULT_VERTICES = 600
DELTA_REQUEST = ChannelCapabilities(kernel=True, delta=True)


def run_obs_smoke(
    out_dir: Optional[pathlib.Path] = None,
    vertices: int = DEFAULT_VERTICES,
) -> Dict[str, Any]:
    """Run the traced smoke scenario; returns a JSON-safe result dict
    whose ``checks`` map is the pass/fail gate (see module docstring)."""
    obs.reset()
    tracer = obs.enable(process="driver")
    handle = WorkerHandle.spawn(WorkerSpec(
        name="obs-worker", classpath_factory=SAMPLE_FACTORY,
        old_bytes=256 * MB, read_timeout=120.0,
    ))
    driver = build_runtime("obs-driver", SAMPLE_FACTORY, old_bytes=256 * MB)
    client = WorkerClient(driver, handle.host, handle.port,
                          read_timeout=120.0).connect()
    recv_jvm = JVM("obs-recv", classpath=sample_worker_classpath(),
                   old_bytes=256 * MB)
    receiver = SkywayRuntime(recv_jvm, driver.driver_registry,
                             is_driver=False)
    channels = {
        "loopback": LoopbackGraphChannel(
            driver, destination="obs-smoke", requested=DELTA_REQUEST,
            receiver_runtime=receiver, channel_id=7101),
        "socket": SocketGraphChannel(
            driver, client, requested=DELTA_REQUEST, channel_id=7102,
            destination="obs-smoke"),
    }
    cluster = Cluster(lambda name: JVM(name, classpath=sample_worker_classpath()),
                      worker_count=1)
    exchange = Exchange.socket(cluster, {cluster.workers[0].name: client})
    try:
        pin = driver.jvm.pin(
            build_vertex_graph(driver.jvm, ring_edges(vertices, vertices // 4)))
        graph = pin.address
        pagerank = IncrementalPageRank(driver.jvm, graph)

        # Epoch 1 bootstraps (always FULL), a PageRank superstep dirties a
        # slice, epoch 2 exercises the delta diff/encode path under trace.
        wire = {name: ch.send([graph], digest=True).wire_bytes
                for name, ch in channels.items()}
        pagerank.step(active_fraction=0.10)
        for name, ch in channels.items():
            wire[name] += ch.send([graph], digest=True).wire_bytes

        sc = SparkContext(cluster, JavaSerializer(), exchange=exchange)
        broadcast = sc.broadcast("obs smoke payload " * 64)

        # Snapshot while the channels are open: their registry sources
        # still publish the live ExchangeMetrics ledger.
        snap = obs.snapshot()
        spans = tracer.spans()
        doc = to_chrome_trace(spans, trace_id=tracer.trace_id)
        trace_errors = validate_chrome_trace(doc)

        span_ids = {s.span_id for s in spans}
        worker_spans = [s for s in spans if s.process.startswith("worker:")]
        ledger_exact = _ledger_wire_bytes(snap, wire)
        checks = {
            "trace_valid": not trace_errors,
            "all_spans_closed": not tracer.open_spans(),
            "single_trace_id": {s.trace_id for s in spans} == {tracer.trace_id},
            "worker_spans_present": bool(worker_spans),
            "worker_spans_parented": all(
                s.parent_id in span_ids for s in worker_spans),
            "ledger_wire_bytes_exact": ledger_exact,
        }
        result: Dict[str, Any] = {
            "vertices": vertices,
            "broadcast_wire_bytes": broadcast.wire_bytes,
            "channel_wire_bytes": wire,
            "spans": len(spans),
            "worker_spans": len(worker_spans),
            "trace_id": tracer.trace_id,
            "trace_errors": trace_errors,
            "checks": checks,
        }
        if out_dir is not None:
            out_dir = pathlib.Path(out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            trace_path = out_dir / "obs_smoke.trace.json"
            snap_path = out_dir / "obs_smoke.snapshot.json"
            trace_path.write_text(json.dumps(doc, indent=2))
            snap_path.write_text(json.dumps(snap, indent=2, default=str))
            result["trace_path"] = str(trace_path)
            result["snapshot_path"] = str(snap_path)
        result["snapshot"] = snap
        return result
    finally:
        for ch in channels.values():
            ch.close()
        try:
            client.shutdown_worker()
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass
        exchange.close()  # also closes the registered client
        handle.stop()
        obs.reset()


def _ledger_wire_bytes(snap: Dict[str, Any],
                       wire: Dict[str, int]) -> bool:
    """Per-substrate receipt totals must equal the registered
    ``ExchangeMetrics`` sources byte-for-byte."""
    sources = snap.get("metrics", {}).get("sources", {})
    seen = {}
    for name, src in sources.items():
        if isinstance(src, dict) and name.startswith("exchange."):
            seen[src.get("substrate")] = src.get("wire_bytes")
    return all(seen.get(substrate) == total
               for substrate, total in wire.items())


def obs_checks_pass(result: Dict[str, Any]) -> bool:
    return all(result["checks"].values())
