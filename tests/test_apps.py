"""Tests for the four Spark workloads, checked against reference results."""

import itertools

import pytest

from repro.apps import connected_components, page_rank, triangle_count, word_count
from repro.datasets import GRAPH_PROFILES, generate_graph, generate_text_corpus

from tests.test_spark_engine import make_context


def reference_triangles(edges):
    nbrs = {}
    for u, v in edges:
        if u == v:
            continue
        nbrs.setdefault(u, set()).add(v)
        nbrs.setdefault(v, set()).add(u)
    count = 0
    for u, v in {(min(e), max(e)) for e in edges if e[0] != e[1]}:
        count += len({w for w in nbrs[u] & nbrs[v] if w > v})
    return count


def reference_components(edges):
    parent = {}

    def find(x):
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return {v: find(v) for v in parent}


class TestWordCount:
    def test_counts_match_python(self):
        sc = make_context("kryo")
        lines = ["a b a", "b c", "a"]
        assert word_count(sc, lines) == {"a": 3, "b": 2, "c": 1}

    def test_on_generated_corpus(self):
        sc = make_context("kryo")
        lines = generate_text_corpus(lines=60, words_per_line=5)
        result = word_count(sc, lines)
        flat = " ".join(lines).split()
        assert sum(result.values()) == len(flat)
        assert result[max(result, key=result.get)] == max(
            flat.count(w) for w in set(flat)
        )

    @pytest.mark.parametrize("serializer", ["java", "skyway"])
    def test_same_result_any_serializer(self, serializer):
        sc = make_context(serializer)
        lines = generate_text_corpus(lines=30, words_per_line=4)
        baseline = word_count(make_context("kryo"), lines)
        assert word_count(sc, lines) == baseline


class TestPageRank:
    def test_ranks_sum_is_stable(self):
        sc = make_context("kryo")
        edges = [(1, 2), (2, 3), (3, 1), (1, 3)]
        ranks = page_rank(sc, edges, iterations=10)
        assert set(ranks) == {1, 2, 3}
        # Damped PageRank over strongly connected graph: sum ~ n.
        assert sum(ranks.values()) == pytest.approx(3.0, rel=0.2)

    def test_sink_heavy_node_ranks_higher(self):
        sc = make_context("kryo")
        # Everyone links to 9; enough iterations to damp the 0<->9 cycle.
        edges = [(i, 9) for i in range(9)] + [(9, 0)]
        ranks = page_rank(sc, edges, iterations=25)
        assert ranks[9] == max(ranks.values())

    def test_deterministic(self):
        edges = generate_graph(GRAPH_PROFILES["LJ"], scale=0.05)
        r1 = page_rank(make_context("kryo"), edges, iterations=2)
        r2 = page_rank(make_context("kryo"), edges, iterations=2)
        assert r1 == r2


class TestConnectedComponents:
    def test_two_components(self):
        sc = make_context("kryo")
        edges = [(1, 2), (2, 3), (10, 11)]
        labels = connected_components(sc, edges)
        assert labels[1] == labels[2] == labels[3] == 1
        assert labels[10] == labels[11] == 10

    def test_matches_union_find(self):
        sc = make_context("kryo")
        edges = generate_graph(GRAPH_PROFILES["LJ"], scale=0.03)
        labels = connected_components(sc, edges)
        expected = reference_components(edges)
        assert labels == expected

    def test_chain_converges(self):
        sc = make_context("kryo")
        edges = [(i, i + 1) for i in range(12)]
        labels = connected_components(sc, edges)
        assert set(labels.values()) == {0}


class TestTriangleCounting:
    def test_single_triangle(self):
        sc = make_context("kryo")
        assert triangle_count(sc, [(1, 2), (2, 3), (1, 3)]) == 1

    def test_no_triangles(self):
        sc = make_context("kryo")
        assert triangle_count(sc, [(1, 2), (2, 3), (3, 4)]) == 0

    def test_complete_graph_k5(self):
        sc = make_context("kryo")
        edges = list(itertools.combinations(range(5), 2))
        assert triangle_count(sc, edges) == 10  # C(5,3)

    def test_duplicates_and_loops_ignored(self):
        sc = make_context("kryo")
        edges = [(1, 2), (2, 1), (2, 3), (1, 3), (3, 3)]
        assert triangle_count(sc, edges) == 1

    def test_matches_reference_on_generated_graph(self):
        sc = make_context("kryo")
        edges = generate_graph(GRAPH_PROFILES["LJ"], scale=0.02)
        assert triangle_count(sc, edges) == reference_triangles(edges)


class TestDatasets:
    def test_profiles_preserve_relative_sizes(self):
        sizes = {k: p.edges for k, p in GRAPH_PROFILES.items()}
        assert sizes["LJ"] < sizes["OR"] < sizes["UK"] < sizes["TW"]

    def test_generation_deterministic(self):
        p = GRAPH_PROFILES["LJ"]
        assert generate_graph(p, scale=0.05) == generate_graph(p, scale=0.05)

    def test_degree_skew_present(self):
        from repro.datasets.graphs import degree_distribution
        edges = generate_graph(GRAPH_PROFILES["TW"], scale=0.2)
        degrees = sorted(degree_distribution(edges).values(), reverse=True)
        # Power-law: the hottest vertex dwarfs the median.
        assert degrees[0] > 10 * degrees[len(degrees) // 2]

    def test_table1_rows_shape(self):
        from repro.datasets import table1_rows
        rows = table1_rows(scale=0.05)
        assert len(rows) == 4
        for row in rows:
            assert row["generated_edges"] > 0
            assert row["generated_vertices"] > 0

    def test_corpus_deterministic(self):
        a = generate_text_corpus(lines=10)
        b = generate_text_corpus(lines=10)
        assert a == b
