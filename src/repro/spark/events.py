"""Engine event log: the simulator's equivalent of Spark's UI/event data.

Every task execution and shuffle file movement appends a structured event;
tests and debugging tools read them to check *how* a job executed (task
placement, shuffle fan-out, cache hits), not just what it produced.

Emission is thread-safe: ``ParallelGraphSender`` worker threads emit
concurrently, so ``emit`` appends under a lock and every reader
(iteration, ``of_kind``, summaries, ``as_dicts``) works on a snapshot
taken under the same lock.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Dict, Iterator, List


@dataclasses.dataclass(frozen=True)
class Event:
    kind: str
    details: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.details[key]


class EventLog:
    """Append-only event record for one SparkContext."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[Event] = []

    def emit(self, kind: str, **details: Any) -> None:
        event = Event(kind, details)
        with self._lock:
            self._events.append(event)

    def snapshot(self) -> List[Event]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.snapshot())

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.snapshot() if e.kind == kind]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def as_dicts(self) -> List[Dict[str, Any]]:
        """JSON-safe export — what the obs snapshot source publishes."""
        return [
            {"kind": e.kind, "details": dict(e.details)}
            for e in self.snapshot()
        ]

    # -- summaries -----------------------------------------------------------

    def task_counts_by_node(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.of_kind("task"):
            node = event["node"]
            counts[node] = counts.get(node, 0) + 1
        return counts

    def shuffle_fanout(self, shuffle_id: int) -> Dict[str, int]:
        """files written / fetched / remote fetches for one shuffle."""
        writes = [e for e in self.of_kind("shuffle_write")
                  if e["shuffle_id"] == shuffle_id]
        fetches = [e for e in self.of_kind("shuffle_fetch")
                   if e["shuffle_id"] == shuffle_id]
        return {
            "files_written": len(writes),
            "bytes_written": sum(e["bytes"] for e in writes),
            "fetches": len(fetches),
            "remote_fetches": sum(1 for e in fetches if e["remote"]),
        }

    def render(self, limit: int = 50) -> str:
        events = self.snapshot()
        lines = [f"event log ({len(events)} events)"]
        for event in events[:limit]:
            detail = " ".join(f"{k}={v}" for k, v in event.details.items())
            lines.append(f"  {event.kind:<14} {detail}")
        if len(events) > limit:
            lines.append(f"  ... {len(events) - limit} more")
        return "\n".join(lines)
