"""Object layout: header geometry, field offsets, alignment and padding.

The layout follows the paper's Figure 6 (a 64-bit HotSpot object, extended
by Skyway):

* ``mark`` word (8 bytes, offset 0) — lock bits, identity hashcode, GC age;
* ``klass`` word (8 bytes, offset 8) — pointer to the klass meta-object
  (replaced by the global type ID inside Skyway output buffers);
* ``baddr`` word (8 bytes, offset 16) — **added by Skyway** to remember an
  object's position in the output buffer across a shuffling phase;
* for arrays: a 4-byte length slot, then padding to the first element's
  alignment;
* instance fields packed largest-first (HotSpot style), superclass fields
  first, with natural alignment;
* total object size padded to an 8-byte boundary.

A *baseline* layout without the ``baddr`` word models an unmodified JVM; the
difference between the two is exactly the memory overhead the paper measures
in §5.2 (2.1%–21.8%, avg 15.4%).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from repro.types import descriptors

#: Machine word size (64-bit HotSpot).
WORD = 8

#: Object sizes and field offsets are padded to this boundary.
OBJECT_ALIGNMENT = 8

#: Byte offset of the mark word within any object.
MARK_OFFSET = 0

#: Byte offset of the klass word within any object.
KLASS_OFFSET = 8


@dataclasses.dataclass(frozen=True)
class HeapLayout:
    """Geometry of object headers for one JVM build.

    ``has_baddr`` distinguishes a Skyway-enhanced JVM (24-byte headers) from
    an unmodified one (16-byte headers).  Heterogeneous clusters mix layouts;
    the Skyway sender re-formats objects when the receiver's layout differs
    (paper §3.1).
    """

    has_baddr: bool = True
    pointer_size: int = descriptors.REFERENCE_SIZE

    @property
    def header_size(self) -> int:
        """Bytes of header before instance fields / the array length slot."""
        return 3 * WORD if self.has_baddr else 2 * WORD

    @property
    def baddr_offset(self) -> int:
        if not self.has_baddr:
            raise AttributeError("baseline layout has no baddr word")
        return 2 * WORD

    @property
    def array_length_offset(self) -> int:
        """Offset of the 4-byte array length slot."""
        return self.header_size

    def array_payload_offset(self, element_descriptor: str) -> int:
        """Offset of element 0: length slot, then pad to element alignment."""
        base = self.array_length_offset + 4
        return align_up(base, descriptors.alignment_of(element_descriptor))

    def array_size(self, element_descriptor: str, length: int) -> int:
        """Total byte size of an array object, including tail padding."""
        if length < 0:
            raise ValueError(f"negative array length: {length}")
        payload = self.array_payload_offset(element_descriptor)
        elem = descriptors.size_of(element_descriptor)
        return align_up(payload + elem * length, OBJECT_ALIGNMENT)

    def compute_field_offsets(
        self, inherited_end: int, fields: Sequence[Tuple[str, str]]
    ) -> Tuple[List[Tuple[str, str, int]], int]:
        """Lay out declared ``(name, descriptor)`` fields after the
        superclass's fields, which end at ``inherited_end`` (or, for a root
        class, after the header).

        Fields are sorted largest-first (then by name, for determinism),
        HotSpot-style, which minimizes but does not eliminate padding.
        Returns ``(placed, instance_size)`` where ``placed`` holds
        ``(name, descriptor, offset)`` and ``instance_size`` is padded to
        the object alignment.
        """
        cursor = max(inherited_end, self.header_size)
        placed: List[Tuple[str, str, int]] = []
        ordered = sorted(
            fields,
            key=lambda f: (-descriptors.size_of(f[1]), f[0]),
        )
        for name, desc in ordered:
            descriptors.validate(desc)
            cursor = align_up(cursor, descriptors.alignment_of(desc))
            placed.append((name, desc, cursor))
            cursor += descriptors.size_of(desc)
        return placed, align_up(cursor, OBJECT_ALIGNMENT)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two: {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


#: Layout of an unmodified 64-bit HotSpot JVM (16-byte headers).
BASELINE_LAYOUT = HeapLayout(has_baddr=False)

#: Layout of a Skyway-enhanced JVM (24-byte headers with the baddr word).
SKYWAY_LAYOUT = HeapLayout(has_baddr=True)
