"""Channel capability negotiation.

A :class:`~repro.exchange.channel.GraphChannel` is opened with a
*requested* capability set; the substrate answers with its *offer*, and the
channel runs at the intersection — the same shape as a protocol feature
handshake, but resolved locally (the substrates' offers are static facts
about their implementations, not remote state).

Capabilities:

``kernel``
    Use the compiled per-class clone kernels as the traversal engine.
    Both substrates offer it (it changes Python work, not bytes); a
    channel requesting ``kernel=False`` pins the interpreted executable
    spec — the heterogeneous-layout fallback does this implicitly.
``delta``
    Epoch-based incremental transfer: the channel keeps an epoch record
    and a dirty card table, and frames DELTA epochs when the policy says
    they pay.  Offered by both substrates (the socket worker routes delta
    frames by channel id).
``compact_headers``
    The §5.2 compact transfer encoding.  Only the loopback substrate
    offers it.  The grant is a *bound*, not a switch: per epoch,
    :meth:`~repro.policy.plan.SendPlan.clamp` drops compact from any plan
    on a delta-capable channel (PATCH offsets address the uncompacted
    layout, so a compact FULL must never seed an epoch record).
``parallel_streams``
    Upper bound on concurrent streams a ``parallel-N`` plan (or a direct
    ``Exchange.parallel_send``) may use toward this destination.

Negotiation answers *what the channel could do*; the policy plane's
:class:`~repro.policy.engine.PolicyEngine` decides *what each epoch does*
within those bounds.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass(frozen=True)
class ChannelCapabilities:
    """One side's capability set; ``intersect`` resolves a negotiation."""

    kernel: bool = True
    delta: bool = False
    compact_headers: bool = False
    parallel_streams: int = 1

    def intersect(self, other: "ChannelCapabilities") -> "ChannelCapabilities":
        return ChannelCapabilities(
            kernel=self.kernel and other.kernel,
            delta=self.delta and other.delta,
            compact_headers=self.compact_headers and other.compact_headers,
            parallel_streams=max(
                1, min(self.parallel_streams, other.parallel_streams)
            ),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "delta": self.delta,
            "compact_headers": self.compact_headers,
            "parallel_streams": self.parallel_streams,
        }


#: What the in-process substrate can do.
LOOPBACK_OFFER = ChannelCapabilities(
    kernel=True, delta=True, compact_headers=True, parallel_streams=64,
)

#: What the socket substrate can do (no compact: the worker's incremental
#: decoder handles it, but the epoch wire path embeds plain full streams).
SOCKET_OFFER = ChannelCapabilities(
    kernel=True, delta=True, compact_headers=False, parallel_streams=16,
)

#: The default request: every fast path on, sized for one stream.
DEFAULT_REQUEST = ChannelCapabilities(
    kernel=True, delta=True, compact_headers=False, parallel_streams=1,
)
