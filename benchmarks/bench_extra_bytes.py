"""E-BYTES — §5.2 extra-bytes composition.

Paper: "object headers take 51%, object paddings take 34%, and the
remaining 15% are taken by pointers" (of Skyway's extra bytes, averaged
over the Spark applications).
"""

from repro.bench.extra_bytes import average_composition, measure_extra_byte_composition
from repro.bench.report import format_kv_section

from conftest import bench_scale, publish


def test_extra_bytes(benchmark):
    scale = bench_scale(0.12)

    per_app = benchmark.pedantic(
        lambda: measure_extra_byte_composition(scale=scale),
        rounds=1, iterations=1,
    )

    avg = average_composition(per_app)
    lines = [
        format_kv_section(
            f"{app} — extra-byte composition",
            {k: f"{v:.1%}" if k != "total_bytes" else f"{v:,.0f}"
             for k, v in stats.items()},
        )
        for app, stats in per_app.items()
    ]
    lines.append(format_kv_section(
        "Average (paper: headers 51%, padding 34%, pointers 15%)",
        {k: f"{v:.1%}" for k, v in avg.items()},
    ))
    publish("extra_bytes", "\n\n".join(lines))

    # Shape: headers dominate, padding second, pointers smallest.
    assert avg["headers"] > avg["pointers"]
    assert avg["headers"] + avg["padding"] + avg["pointers"] == \
        __import__("pytest").approx(1.0)
    benchmark.extra_info.update({k: round(v, 3) for k, v in avg.items()})
