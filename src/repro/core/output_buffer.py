"""Skyway output buffers (paper §3.2, §4.2).

One output buffer exists per destination per sending thread, in *native*
(off-heap) memory — "they will not interfere with the GC, which could
reclaim data objects before they are sent if these buffers were in the
managed heap."  Objects are bump-committed at logical addresses; when the
physical buffer fills, its content is *flushed* (streamed) to the sink and
the buffer reused, with ``flushed_bytes`` tracking what left the buffer so
logical addresses keep growing monotonically (Algorithm 2's
``addr - ob.flushedBytes``).

Logical address 0 is reserved for null references; the logical space
therefore starts at one word.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.heap.layout import OBJECT_ALIGNMENT, WORD, align_up

#: First logical address handed out (0 encodes null on the wire).
LOGICAL_BASE = WORD

FlushSink = Callable[[bytes], None]


class OutputBuffer:
    """A per-destination, per-thread native output buffer."""

    def __init__(
        self,
        destination: str,
        capacity: int = 256 * 1024,
        sink: Optional[FlushSink] = None,
    ) -> None:
        if capacity < 64:
            raise ValueError("output buffer capacity too small")
        self.destination = destination
        self.capacity = capacity
        self._data = bytearray()
        #: Next logical address to hand out (paper: ob.allocableAddr).
        self.allocable_addr = LOGICAL_BASE
        #: Logical bytes already streamed out (paper: ob.flushedBytes).
        self.flushed_bytes = LOGICAL_BASE
        self._sink = sink
        self._pending_segments: List[bytes] = []
        self.flush_count = 0

    # -- allocation -------------------------------------------------------------

    def reserve(self, size: int) -> int:
        """Claim ``size`` bytes at the next logical address (pre-announced
        during traversal, before the object is actually cloned)."""
        aligned = align_up(size, OBJECT_ALIGNMENT)
        addr = self.allocable_addr
        self.allocable_addr += aligned
        return addr

    def write_object(self, logical_addr: int, payload: bytes) -> None:
        """Clone object bytes at ``logical_addr`` (Algorithm 2's
        CLONEINBUFFER).  Flushes first if the object would overflow the
        physical buffer; objects larger than the whole buffer stream
        through in one oversized segment."""
        if logical_addr < self.flushed_bytes:
            raise ValueError(
                f"logical address {logical_addr} was already flushed"
            )
        offset = logical_addr - self.flushed_bytes
        end = offset + len(payload)
        if offset == len(self._data):
            if end > self.capacity:
                self.flush()
                offset = logical_addr - self.flushed_bytes
                end = offset + len(payload)
            self._data.extend(payload)
            if len(self._data) >= self.capacity:
                self.flush()
            return
        # Out-of-order completion within the resident window (can happen
        # for padding differences) — plain in-place write.
        if end > len(self._data):
            self._data.extend(bytes(end - len(self._data)))
        self._data[offset:end] = payload

    def patch_word(self, logical_addr: int, value: int) -> bool:
        """Rewrite one word if it is still resident; returns False if that
        region was already flushed (the caller must have relativized it
        before commit — this is why Algorithm 2 fills references when the
        *referencing* object is cloned, not later)."""
        offset = logical_addr - self.flushed_bytes
        if offset < 0:
            return False
        if offset + WORD > len(self._data):
            return False
        self._data[offset : offset + WORD] = (value & (2**64 - 1)).to_bytes(8, "little")
        return True

    # -- streaming ------------------------------------------------------------

    def flush(self) -> None:
        """Stream the resident bytes to the sink and reset the window."""
        if not self._data:
            return
        segment = bytes(self._data)
        self.flushed_bytes += len(segment)
        self._data = bytearray()
        self.flush_count += 1
        if self._sink is not None:
            self._sink(segment)
        else:
            self._pending_segments.append(segment)

    def drain_segments(self) -> List[bytes]:
        """Segments accumulated while no sink was attached."""
        out, self._pending_segments = self._pending_segments, []
        return out

    def set_sink(self, sink: FlushSink) -> None:
        self._sink = sink
        for segment in self.drain_segments():
            sink(segment)

    @property
    def resident_bytes(self) -> int:
        return len(self._data)

    @property
    def logical_size(self) -> int:
        """Total logical bytes committed so far (excludes the null word)."""
        return self.allocable_addr - LOGICAL_BASE

    def clear(self) -> None:
        """Reset for a new shuffle phase (paper: buffers are cleared after
        their objects are sent / at shuffleStart)."""
        self._data = bytearray()
        self._pending_segments = []
        self.allocable_addr = LOGICAL_BASE
        self.flushed_bytes = LOGICAL_BASE
