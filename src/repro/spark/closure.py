"""Closure serialization (paper §2.1).

Spark ships each stage's task closure from the driver to every executor
that runs one of its tasks; everything the lambda captures rides along
(the paper's ``DateParser``).  Closures always travel via the **Java
serializer**, including in the paper's Skyway configuration ("Since data
serialization in Spark shuffles orders of magnitude more data than closure
serialization, we only used Skyway for data serialization").
"""

from __future__ import annotations

from typing import Dict, Set, Tuple, TYPE_CHECKING

from repro.jvm.marshal import Obj, to_heap
from repro.serial.java_serializer import JavaSerializer
from repro.simtime import Category
from repro.types.classdef import ClassPath

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.cluster import Node
    from repro.spark.context import SparkContext

CLOSURE_CLASS = "repro.spark.TaskClosure"


def ensure_closure_class(classpath: ClassPath) -> None:
    if CLOSURE_CLASS not in classpath:
        classpath.define(
            CLOSURE_CLASS,
            [
                ("stageId", "J"),
                ("rddId", "J"),
                ("funcName", "Ljava.lang.String;"),
                ("captured", "Ljava.lang.Object;"),
            ],
        )


class ClosureShipper:
    """Serializes one closure per (stage, executor) pair."""

    def __init__(self, sc: "SparkContext") -> None:
        self.sc = sc
        self._serializer = JavaSerializer()
        self._shipped: Set[Tuple[int, str]] = set()
        self.closures_shipped = 0
        for node in sc.cluster.nodes():
            ensure_closure_class(node.jvm.classpath)

    def ship(self, stage_id: int, rdd_id: int, func_name: str, node: "Node") -> None:
        """Ship the stage closure to ``node`` unless already there."""
        key = (stage_id, node.name)
        if key in self._shipped:
            return
        self._shipped.add(key)
        self.closures_shipped += 1

        driver = self.sc.cluster.driver
        closure = Obj(
            CLOSURE_CLASS,
            {
                "stageId": stage_id,
                "rddId": rdd_id,
                "funcName": func_name,
                # A small captured environment, like Figure 2's parser.
                "captured": (func_name, float(rdd_id)),
            },
        )
        addr = to_heap(driver.jvm, closure)
        with driver.clock.phase(Category.SERIALIZATION):
            data = self._serializer.serialize(driver.jvm, addr)
        self.sc.cluster.transfer(driver, node, len(data))
        with node.clock.phase(Category.DESERIALIZATION):
            reader = self._serializer.new_reader(node.jvm, data)
            reader.read_object()
            reader.close()
