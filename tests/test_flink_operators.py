"""Tests for extended Flink operators and skyway-mode queries QB/QC/QE."""

import pytest

from repro.flink.engine import Table
from repro.flink.queries import QUERIES, run_query
from repro.flink.tpch import generate_tpch
from repro.flink.types import FieldKind as K, RowType

from tests.test_flink import make_env

SIMPLE = RowType.of("s", ("id", K.LONG), ("v", K.DOUBLE))


class TestUnionFirst:
    def test_union_concatenates(self):
        env = make_env()
        a = env.from_table(Table(SIMPLE, [(1, 1.0), (2, 2.0)]))
        b = env.from_table(Table(SIMPLE, [(3, 3.0)]))
        assert sorted(a.union(b).collect()) == [(1, 1.0), (2, 2.0), (3, 3.0)]

    def test_union_schema_mismatch(self):
        env = make_env()
        other = RowType.of("o", ("id", K.LONG), ("name", K.STRING))
        a = env.from_table(Table(SIMPLE, [(1, 1.0)]))
        b = env.from_table(Table(other, [(1, "x")]))
        with pytest.raises(TypeError):
            a.union(b)

    def test_first(self):
        env = make_env()
        ds = env.from_table(Table(SIMPLE, [(i, float(i)) for i in range(20)]))
        assert len(ds.first(5)) == 5
        assert len(ds.first(100)) == 20


class TestSkywayModeQueries:
    @pytest.fixture(scope="class")
    def data(self):
        return generate_tpch(0.25)

    @pytest.mark.parametrize("qkey", ["QB", "QC", "QE"])
    def test_skyway_matches_reference(self, qkey, data):
        env = make_env("skyway")
        assert run_query(qkey, env, data) == QUERIES[qkey].reference(data)


class TestRuntimeStats:
    def test_stats_shape(self, classpath):
        from repro.core.runtime import attach_skyway
        from repro.core.streams import (
            SkywayObjectInputStream, SkywayObjectOutputStream,
        )
        from repro.jvm.jvm import JVM
        from tests.conftest import make_date

        src = JVM("stats-src", classpath=classpath)
        dst = JVM("stats-dst", classpath=classpath)
        attach_skyway(src, [dst])
        out = SkywayObjectOutputStream(src.skyway, destination="p")
        out.write_object(make_date(src, 1, 1, 1))
        inp = SkywayObjectInputStream(dst.skyway)
        inp.accept(out.close())

        src_stats = src.skyway.stats()
        dst_stats = dst.skyway.stats()
        assert src_stats["is_driver"] is True
        assert src_stats["output_buffers"] >= 1
        assert dst_stats["retained_input_buffers"] == 1
        assert dst_stats["retained_input_bytes"] > 0
        assert dst_stats["registry_view_classes"] > 0
