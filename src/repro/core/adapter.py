"""SkywaySerializer: the drop-in serializer adapter (paper §5.2).

"To use Skyway, we created a Skyway serializer that wraps the existing
Input/OutputStream with our SkywayInput/OutputStream objects... The entire
SkywaySerializer class contains less than 100 lines of code."  This module
is exactly that shim: it implements the generic
:class:`~repro.serial.base.Serializer` interface over Skyway's streams, so
the Spark and Flink engines (and JSBS) can swap serializers by
configuration, unchanged.

Both JVMs involved must have a :class:`~repro.core.runtime.SkywayRuntime`
attached (sharing one driver registry) — the same cluster-wide setup the
paper requires.
"""

from __future__ import annotations

from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.jvm.jvm import JVM
from repro.serial.base import (
    DeserializationStream,
    SerializationError,
    SerializationStream,
    Serializer,
)


def _runtime_of(jvm: JVM):
    runtime = jvm.skyway
    if runtime is None:
        raise SerializationError(
            f"JVM {jvm.name} has no Skyway runtime attached; call "
            f"repro.core.attach_skyway(driver, workers) first"
        )
    return runtime


class SkywaySerializer(Serializer):
    """The drop-in serializer; ``compress_headers`` enables the §5.2
    future-work compact transfer encoding for every stream."""

    name = "skyway"

    def __init__(self, thread_id: int = 0,
                 compress_headers: bool = False) -> None:
        self.thread_id = thread_id
        self.compress_headers = compress_headers

    def new_stream(self, jvm: JVM, thread_id: int = None) -> "SkywaySerializationStream":
        tid = self.thread_id if thread_id is None else thread_id
        return SkywaySerializationStream(jvm, tid, self.compress_headers)

    def new_reader(self, jvm: JVM, data: bytes) -> "SkywayDeserializationStream":
        return SkywayDeserializationStream(jvm, data)


class SkywaySerializationStream(SerializationStream):
    def __init__(self, jvm: JVM, thread_id: int,
                 compress_headers: bool = False) -> None:
        runtime = _runtime_of(jvm)
        # Each serializer stream is its own destination/phase: real shuffle
        # code calls shuffle_start per phase; the generic Serializer API has
        # no phase notion, so a fresh phase per stream keeps baddr state
        # from aliasing across streams.
        runtime.shuffle_start()
        self._stream = SkywayObjectOutputStream(
            runtime,
            destination=f"stream-{id(self)}",
            thread_id=thread_id,
            compress_headers=compress_headers,
        )

    def write_object(self, root: int) -> None:
        self._stream.write_object(root)

    def close(self) -> bytes:
        return self._stream.close()

    @property
    def bytes_written(self) -> int:
        return self._stream.bytes_written


class SkywayDeserializationStream(DeserializationStream):
    def __init__(self, jvm: JVM, data: bytes) -> None:
        runtime = _runtime_of(jvm)
        self._stream = SkywayObjectInputStream(runtime)
        self._stream.accept(data)

    def read_object(self) -> int:
        return self._stream.read_object()

    def has_next(self) -> bool:
        return self._stream.has_next()

    def close(self) -> None:
        self._stream.close()
