"""Heap verification (the simulator's ``-XX:+VerifyHeap``).

Walks every region and checks the invariants the rest of the system relies
on; used by tests after collections and after Skyway receives, and
available to applications for debugging.

Checks:

* every registered object start is inside its region's allocated span,
  8-byte aligned, and strictly ascending;
* every klass word resolves to a loaded klass of this JVM;
* object extents do not overlap and do not cross region tops;
* every non-null reference slot points at a registered object start;
* old→young references are covered by dirty cards;
* mark words are not left in the forwarded state outside a collection.
"""

from __future__ import annotations

from typing import List

from repro.heap import markword
from repro.heap.heap import ManagedHeap, NULL
from repro.types.loader import ClassNotFoundError


class HeapCorruptionError(AssertionError):
    pass


def verify_heap(heap: ManagedHeap) -> int:
    """Verify all invariants; returns the number of live objects checked.

    Raises :class:`HeapCorruptionError` with a precise description on the
    first violation.
    """
    object_starts = set()
    for region in heap.regions():
        last_end = region.start
        previous = None
        for address in region.object_starts:
            if not region.start <= address < region.top:
                raise HeapCorruptionError(
                    f"{region.name}: object {address:#x} outside allocated "
                    f"span [{region.start:#x}, {region.top:#x})"
                )
            if address % 8:
                raise HeapCorruptionError(
                    f"{region.name}: object {address:#x} misaligned"
                )
            if previous is not None and address <= previous:
                raise HeapCorruptionError(
                    f"{region.name}: object index not ascending at {address:#x}"
                )
            if address < last_end:
                raise HeapCorruptionError(
                    f"{region.name}: object {address:#x} overlaps previous "
                    f"(ends at {last_end:#x})"
                )
            try:
                size = heap.object_size(address)
            except ClassNotFoundError as exc:
                raise HeapCorruptionError(
                    f"{region.name}: object {address:#x} has unresolvable "
                    f"klass word {heap.read_klass_word(address):#x}"
                ) from exc
            if address + size > region.top:
                raise HeapCorruptionError(
                    f"{region.name}: object {address:#x} (size {size}) "
                    f"crosses region top {region.top:#x}"
                )
            mark = heap.read_mark(address)
            if markword.is_forwarded(mark):
                raise HeapCorruptionError(
                    f"{region.name}: object {address:#x} still forwarded "
                    f"outside a collection"
                )
            object_starts.add(address)
            previous = address
            last_end = address + size

    checked = 0
    for region in heap.regions():
        for address in region.object_starts:
            checked += 1
            for offset in heap.reference_offsets(address):
                ref = heap.read_word(address + offset)
                if ref == NULL:
                    continue
                if ref not in object_starts:
                    raise HeapCorruptionError(
                        f"{region.name}: slot {address:#x}+{offset} holds "
                        f"{ref:#x}, not an object start"
                    )
                if region is heap.old and heap.is_young(ref):
                    if not heap.card_table.is_dirty(address + offset):
                        raise HeapCorruptionError(
                            f"old->young reference at {address:#x}+{offset} "
                            f"not covered by a dirty card"
                        )
    return checked


def reachable_from(heap: ManagedHeap, roots: List[int]) -> set:
    """The live set from ``roots`` (BFS over reference slots)."""
    seen = set()
    queue = [r for r in roots if r != NULL]
    while queue:
        address = queue.pop()
        if address in seen:
            continue
        seen.add(address)
        for offset in heap.reference_offsets(address):
            ref = heap.read_word(address + offset)
            if ref != NULL and ref not in seen:
                queue.append(ref)
    return seen
