"""Position-independent digest of a received object graph.

The acceptance check for the socket transport is that a graph round-tripped
driver -> worker over loopback is *byte-identical* to the in-process
receive path: same input-buffer contents, same restored klass and pointer
words.  Raw heap bytes can't be compared directly across processes — klass
words hold loader-assigned klass IDs and pointers hold physical addresses,
both of which depend on local allocation history — so the digest
normalizes exactly those two word kinds:

* each object contributes its class *name* (not the klass word);
* each reference word is translated back to its buffer-*logical* offset
  (the coordinate system the wire format itself uses);
* everything else — mark words with their preserved hashcodes, primitive
  fields, array payloads, padding — is hashed as-is.

Two receivers that placed and absolutized the same stream produce the same
digest, whatever their heaps looked like beforehand.
"""

from __future__ import annotations

import hashlib

from repro.core.receiver import ObjectGraphReceiver
from repro.heap.layout import KLASS_OFFSET
from repro.jvm.jvm import JVM


def graph_digest(jvm: JVM, receiver: ObjectGraphReceiver) -> str:
    """SHA-256 over the received buffer in logical coordinates."""
    heap = jvm.heap
    buffer = receiver.buffer
    spans = [
        (chunk.physical_start, chunk.filled, chunk.logical_start)
        for chunk in buffer.chunks
    ]

    def to_logical(pointer: int) -> int:
        if pointer == 0:
            return 0
        for physical, filled, logical in spans:
            if physical <= pointer < physical + filled:
                return logical + (pointer - physical)
        raise ValueError(
            f"pointer {pointer:#x} leads outside the input buffer"
        )

    digest = hashlib.sha256()
    for address in buffer.placed_objects:
        klass = heap.klass_of(address)
        size = heap.object_size(address)
        image = bytearray(heap.read_bytes(address, size))
        image[KLASS_OFFSET:KLASS_OFFSET + 8] = b"\x00" * 8
        for offset in heap.reference_offsets(address):
            pointer = int.from_bytes(image[offset:offset + 8], "little")
            image[offset:offset + 8] = to_logical(pointer).to_bytes(8, "little")
        digest.update(klass.name.encode("utf-8"))
        digest.update(len(image).to_bytes(8, "little"))
        digest.update(bytes(image))
    return digest.hexdigest()
