"""Delta channels: the subsystem's sending/receiving endpoints.

A :class:`DeltaSendChannel` is the per-destination stateful sender: it owns
an epoch record (what the receiver holds), a delta card table (what changed
since), and the fallback policy (whether a delta is still worth it).  Its
``send(roots)`` returns one framed epoch — FULL on the first call and
whenever the policy reverts, DELTA otherwise.

A :class:`DeltaReceiveEndpoint` is the per-runtime receiving side: it
routes frames by channel id, retains each channel's input buffer across
epochs (the §3.2 retention API is exactly what makes patch-in-place legal),
and applies DELTA frames through :class:`~repro.delta.apply.DeltaApplier`.

Staleness is fail-stop: a receiver whose old generation was compacted (full
GC) since the last epoch raises :class:`DeltaStaleError` and drops the
channel state; the integration layer reacts by forcing the next send full —
the moral equivalent of a NACK on a real wire.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.core.runtime import SkywayRuntime
from repro.delta.apply import ApplyResult, DeltaApplier
from repro.delta.dirty import DELTA_CARD_SIZE, DeltaTracker
from repro.delta.epoch_cache import EpochCache, EpochRecord
from repro.delta.policy import ChannelStats, EpochDecision
from repro.policy import ChannelSignals, SendPlan, resolve_engine
from repro.policy.plan import NON_FALLBACK_REASONS
from repro.delta.wire import (
    DeltaEncoder,
    DeltaFrame,
    FullFrame,
    frame_full,
    parse_frame,
)
from repro.heap.layout import HeapLayout


class DeltaChannelError(RuntimeError):
    pass


class DeltaStaleError(DeltaChannelError):
    """Receiver-side state no longer matches the sender's epoch record."""


_channel_ids = itertools.count(1)


class DeltaSendChannel:
    """One sending endpoint: epoch-aware transfer to one destination."""

    def __init__(
        self,
        runtime: SkywayRuntime,
        destination: str,
        policy=None,
        target_layout: Optional[HeapLayout] = None,
        card_size: int = DELTA_CARD_SIZE,
        channel_id: Optional[int] = None,
        delta_enabled: bool = True,
        use_kernels: Optional[bool] = None,
        capabilities=None,
    ) -> None:
        self.runtime = runtime
        self.destination = destination
        #: Channel ids are process-global by default; a caller may pin one
        #: explicitly so that two substrates (in-process loopback and a
        #: socket worker) frame byte-identical epochs for the same sends —
        #: the cross-substrate parity gate.  Receiver endpoints route by
        #: this id, so pinned ids must be unique per receiving runtime.
        self.channel_id = (next(_channel_ids) if channel_id is None
                           else channel_id)
        #: Every ``policy=`` spelling (None, a name, a decision table, a
        #: legacy DeltaPolicy, a shared PolicyEngine) normalizes onto one
        #: engine — the only place a send mode is chosen.
        self.policy = policy
        self.engine = resolve_engine(policy)
        #: Negotiated capability bounds (the exchange layer passes its
        #: :class:`~repro.exchange.capabilities.ChannelCapabilities`);
        #: every plan is clamped by them before execution.
        self.capabilities = capabilities
        #: A channel with delta disabled frames every epoch FULL and skips
        #: the write barrier entirely (no card table attached) — the plain
        #: full-send mode of the exchange layer, on the same wire format.
        self.delta_enabled = delta_enabled
        #: None inherits the runtime's clone engine; the exchange layer
        #: passes the negotiated capability explicitly.
        self.use_kernels = use_kernels
        #: PATCH overwrites clones in place, so the destination must share
        #: this JVM's object layout; heterogeneous destinations always
        #: take the full-send path.
        self.heterogeneous = (
            target_layout is not None and target_layout != runtime.jvm.layout
        )
        self.cache = EpochCache()
        self.tracker = None
        self.table = None
        if delta_enabled:
            self.tracker = DeltaTracker.attach(runtime.jvm.heap, card_size)
            self.table = self.tracker.new_table()
        self.stats = ChannelStats()
        self.epoch = 0
        self.last_decision: Optional[EpochDecision] = None
        self.last_plan: Optional[SendPlan] = None
        self._force_full = False
        self._pending: Optional[Tuple[SendPlan, ChannelSignals]] = None

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(self, roots: List[int],
             plan: Optional[SendPlan] = None) -> bytes:
        """Frame one epoch carrying ``roots``; mode per the engine's plan.

        Callers normally pass no plan and let the engine decide; a caller
        that already called :meth:`plan_next` may hand that plan back to
        execute it without re-deciding (the dispatch layer does this to
        route ``parallel-N`` plans around the channel)."""
        with obs.span("send.epoch", clock=self.runtime.jvm.clock,
                      channel=self.channel_id,
                      destination=self.destination) as sp:
            frame = self._send_inner(roots, plan)
            decision = self.last_decision
            sp.set(epoch=self.epoch, wire_bytes=len(frame),
                   mode=decision.mode if decision else "?",
                   reason=decision.reason if decision else "?")
        return frame

    def plan_next(self, roots: List[int]) -> SendPlan:
        """Decide the upcoming epoch without executing it.

        The plan (with its card-table scan) is cached and consumed by the
        next :meth:`send`; a caller that routes the epoch elsewhere
        (parallel streams) must call :meth:`discard_plan` instead."""
        gc = self.runtime.jvm.gc.stats
        record = self.cache.get(self.destination)
        plan, signals = self._plan(roots, record, gc, self.epoch + 1)
        self._pending = (plan, signals)
        return plan

    def discard_plan(self) -> None:
        """Drop a cached :meth:`plan_next` decision without executing it."""
        self._pending = None

    def _send_inner(self, roots: List[int],
                    plan: Optional[SendPlan]) -> bytes:
        self.epoch += 1
        self.stats.epochs += 1
        gc = self.runtime.jvm.gc.stats
        record = self.cache.get(self.destination)

        pending, self._pending = self._pending, None
        if plan is None:
            if pending is not None:
                plan, signals = pending
            else:
                plan, signals = self._plan(roots, record, gc, self.epoch)
        elif pending is not None and pending[0] is plan:
            signals = pending[1]
        else:
            signals = self._signals(roots, record, gc, self.epoch)

        if plan.reason == "forced":
            # The NACK latch is consumed by the plan that honors it.
            self._force_full = False

        if plan.mode == "delta":
            frame, plan = self._try_delta(roots, record, gc, plan, signals)
            if frame is not None:
                self._finish(plan)
                return frame

        if plan.reason not in NON_FALLBACK_REASONS:
            # delta_disabled / static_full are the channel's configured
            # mode, not a reversion worth counting against the policy.
            self.stats.note_fallback(plan.reason)
        self._finish(plan)
        return self._send_full(roots, gc, plan)

    def _finish(self, plan: SendPlan) -> None:
        self.last_plan = plan
        self.last_decision = EpochDecision(
            mode=plan.mode, reason=plan.reason,
            mutation_rate=plan.mutation_rate,
            estimated_bytes=plan.estimated_bytes,
        )

    def force_full_next(self) -> None:
        """React to a receiver NACK (:class:`DeltaStaleError`)."""
        self._force_full = True
        self._pending = None

    def reassign(self, channel_id: int) -> None:
        """Adopt a fresh channel id (a coordinator re-assignment after the
        receiving worker restarted).  The epoch counter keeps counting —
        receivers accept a FULL at any epoch — but the next epoch is
        forced FULL: no receiver retains state under the new id."""
        self.channel_id = channel_id
        self._force_full = True
        self._pending = None

    def _plan(self, roots: List[int], record: Optional[EpochRecord],
              gc, epoch: int) -> Tuple[SendPlan, ChannelSignals]:
        signals = self._signals(roots, record, gc, epoch)
        plan = self.engine.plan(signals, self.capabilities)
        return plan, signals

    def _signals(self, roots: List[int], record: Optional[EpochRecord],
                 gc, epoch: int) -> ChannelSignals:
        signals = ChannelSignals(
            channel_id=self.channel_id,
            destination=self.destination,
            epoch=epoch,
            root_count=len(roots),
            forced_full=self._force_full,
            heterogeneous=self.heterogeneous,
            delta_capable=self.delta_enabled,
        )
        if record is None or len(record) == 0:
            signals.first_epoch = True
            return signals
        signals.resident_objects = len(record)
        signals.resident_bytes = record.total_bytes
        signals.gc_moved = (
            (gc.minor_collections, gc.full_collections)
            != (record.minor_gcs, record.full_gcs)
        )
        if (self.delta_enabled and not self._force_full
                and not self.heterogeneous):
            dirty = self._dirty_members(record)
            signals.dirty_members = dirty
            signals.dirty_count = len(dirty)
            signals.dirty_bytes = sum(record.sizes[a] for a in dirty)
        return signals

    def _dirty_members(self, record: EpochRecord) -> List[int]:
        cost = self.runtime.jvm.cost_model
        with obs.span("delta.diff", clock=self.runtime.jvm.clock) as sp:
            members = list(
                record.members_overlapping(self.table.dirty_ranges())
            )
            # Card intersection cost: one traversal word per candidate found.
            self.runtime.jvm.clock.charge(
                cost.traverse_word * max(1, len(members))
            )
            sp.set(dirty=len(members))
        return members

    def _try_delta(self, roots, record, gc, plan: SendPlan,
                   signals: ChannelSignals):
        dirty = signals.dirty_members or []
        encoder = DeltaEncoder(self.runtime.jvm, record)
        with obs.span("delta.encode", clock=self.runtime.jvm.clock):
            frame, summary = encoder.encode(
                roots, dirty, self.channel_id, self.epoch
            )
        if plan.byte_budget is not None and len(frame) > plan.byte_budget:
            # The post-encode gate: the actual frame blew the plan's
            # budget (references dragged in undirtied objects).
            self.stats.wasted_encode_bytes += len(frame)
            return None, dataclasses.replace(
                plan, mode="full", reason="encoded_overrun",
                estimated_bytes=len(frame), streams=1,
                compact_headers=False, byte_budget=None,
            )
        record.merge_epoch(
            summary.new_members, summary.new_sizes, summary.logical_end,
            gc.minor_collections, gc.full_collections,
        )
        self.table.clear()
        self.stats.delta_sends += 1
        self.stats.bytes_delta += len(frame)
        self.stats.objects_patched += summary.patched_objects
        self.stats.objects_new += summary.new_objects
        self.stats.sameref_roots += summary.sameref_roots
        return frame, plan

    def _send_full(self, roots: List[int], gc, plan: SendPlan) -> bytes:
        with obs.span("send.full", clock=self.runtime.jvm.clock):
            return self._send_full_inner(roots, gc, plan)

    def _send_full_inner(self, roots: List[int], gc,
                         plan: SendPlan) -> bytes:
        # A fresh shuffling phase invalidates stale baddrs (paper §3.3);
        # the epoch record, unlike baddrs, survives into later phases.
        self.runtime.shuffle_start()
        stream = SkywayObjectOutputStream(
            self.runtime,
            destination=f"delta:{self.channel_id}:{self.destination}",
            use_kernels=(self.use_kernels if plan.kernel is None
                         else plan.kernel),
            # PATCH offsets address the uncompacted layout, so a compact
            # FULL must never seed an epoch record — belt to the clamp's
            # suspenders.
            compress_headers=plan.compact_headers and not self.delta_enabled,
        )
        for root in roots:
            stream.write_object(root)
        embedded = stream.close()
        if self.delta_enabled:
            # The epoch record only feeds delta decisions; a full-only
            # channel stays stateless.
            self.cache.record_full_send(
                self.destination, stream.sender.cloned,
                gc.minor_collections, gc.full_collections,
                epoch=self.epoch,
            )
        if self.table is not None:
            self.table.clear()
        frame = frame_full(self.channel_id, self.epoch, embedded)
        self.stats.full_sends += 1
        self.stats.bytes_full += len(frame)
        return frame

    def close(self) -> None:
        """Detach this channel's table from the write barrier."""
        if self.tracker is not None and self.table is not None:
            self.tracker.release_table(self.table)
            self.table = None
        self.cache.invalidate(self.destination)


class _ReceiverState:
    """One channel's retained state on the receiving runtime."""

    def __init__(self, channel_id, epoch, stream, token, full_gcs, applier):
        self.channel_id = channel_id
        self.epoch = epoch
        self.stream = stream
        self.token = token
        self.full_gcs = full_gcs
        self.applier = applier
        self.pinned_roots: Set[int] = set()
        self.last_apply: Optional[ApplyResult] = None


class DeltaReceiveEndpoint:
    """The per-runtime receiving side: frames in, heap roots out."""

    def __init__(self, runtime: SkywayRuntime) -> None:
        self.runtime = runtime
        self._states: Dict[int, _ReceiverState] = {}

    @classmethod
    def for_runtime(cls, runtime: SkywayRuntime) -> "DeltaReceiveEndpoint":
        """The one endpoint for ``runtime``, created on first use (any
        serializer instance must route to the same channel states)."""
        endpoint = getattr(runtime, "delta_endpoint", None)
        if endpoint is None:
            endpoint = cls(runtime)
            runtime.delta_endpoint = endpoint
        return endpoint

    def receive(self, data: bytes) -> List[int]:
        """Apply one framed epoch; returns the epoch's root addresses."""
        frame = parse_frame(data)
        with obs.span("recv.epoch", clock=self.runtime.jvm.clock,
                      channel=frame.channel_id, epoch=frame.epoch,
                      kind=("full" if isinstance(frame, FullFrame)
                            else "delta")):
            if isinstance(frame, FullFrame):
                return self._receive_full(frame)
            return self._receive_delta(frame)

    def state_of(self, channel_id: int) -> Optional[_ReceiverState]:
        return self._states.get(channel_id)

    def _receive_full(self, frame: FullFrame) -> List[int]:
        old = self._states.pop(frame.channel_id, None)
        if old is not None:
            # The superseded buffer becomes reclaimable garbage; delta kept
            # it pinned across epochs, a full send ends its retention.
            self.runtime.free_input_buffer(old.token)
        stream = SkywayObjectInputStream(self.runtime)
        stream.accept(frame.embedded)
        roots = []
        while stream.has_next():
            roots.append(stream.read_object())
        state = _ReceiverState(
            channel_id=frame.channel_id,
            epoch=frame.epoch,
            stream=stream,
            token=stream.buffer_token,
            full_gcs=self.runtime.jvm.gc.stats.full_collections,
            applier=DeltaApplier(
                self.runtime.jvm, stream.receiver, self.runtime.view
            ),
        )
        state.pinned_roots.update(r for r in roots if r)
        self._states[frame.channel_id] = state
        return roots

    def _receive_delta(self, frame: DeltaFrame) -> List[int]:
        state = self._states.get(frame.channel_id)
        if state is None:
            raise DeltaStaleError(
                f"delta frame for unknown channel {frame.channel_id} "
                f"(receiver has no retained epoch)"
            )
        if frame.epoch != state.epoch + 1:
            self._states.pop(frame.channel_id, None)
            raise DeltaStaleError(
                f"channel {frame.channel_id}: got epoch {frame.epoch}, "
                f"retained epoch is {state.epoch}"
            )
        full_gcs = self.runtime.jvm.gc.stats.full_collections
        if full_gcs != state.full_gcs:
            self._states.pop(frame.channel_id, None)
            raise DeltaStaleError(
                f"channel {frame.channel_id}: receiver old generation was "
                f"compacted since epoch {state.epoch}; retained chunk "
                f"addresses are void"
            )
        with obs.span("recv.apply", clock=self.runtime.jvm.clock):
            result = state.applier.apply(frame)
        # New roots must be GC-pinned like the first epoch's were.
        fresh = [
            self.runtime.jvm.pin(addr)
            for addr in result.root_addresses
            if addr and addr not in state.pinned_roots
        ]
        if fresh:
            self.runtime.extend_input_buffer_roots(state.token, fresh)
            state.pinned_roots.update(h.address for h in fresh)
        state.epoch = frame.epoch
        state.last_apply = result
        return result.root_addresses
