"""The fleet front-end: one driver talking to N coordinated workers.

A :class:`Fleet` holds one coordinator connection plus cached
per-worker clients and channels, and exposes the mesh as four verbs:

``channel_to(worker)``
    A capability-negotiated :class:`FleetChannel` — a
    :class:`~repro.exchange.socket.SocketGraphChannel` whose channel id
    came from the coordinator (admitted on the worker first, so strict
    workers accept it) and whose failure handling is *fleet* policy, not
    just wire policy (see below).
``broadcast(roots)``
    The same epoch to every live worker, one channel each.  A dead worker
    does not fail the broadcast: survivors complete, and the dead peer is
    reported per-worker as a typed :class:`PeerGoneError`.
``peer_transfer(src, dst, roots)``
    Peer mode: worker *src* clones a graph rooted on its own heap
    straight into *dst* — the shuffle route that never bounces through
    the driver.  Routes (coordinator-assigned channel ids) are cached per
    (src, dst) pair so repeated transfers ride one epoch channel.
``put_blob`` / ``peer_blob``
    Opaque-bytes versions of the same two routes (the Spark
    broadcast/shuffle byte path).

Failure handling, the fleet policy: when a send fails on the wire, the
fleet asks the coordinator what happened to the peer.

* dead (or vanished) → :class:`PeerGoneError`, after reporting what we
  saw so the whole fleet converges;
* alive with a *new* generation → the worker restarted and re-HELLOed:
  reconnect, take a fresh channel id, force the next epoch FULL, retry
  once — the per-channel NACK recovery lifted to fleet scope;
* alive, same generation → transient: reconnect and retry once, then
  report dead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.cluster.errors import (
    ClusterConfigError,
    ClusterProtocolError,
    PeerGoneError,
)
from repro.cluster.membership import CoordinatorClient
from repro.core.runtime import SkywayRuntime
from repro.exchange.capabilities import ChannelCapabilities, DEFAULT_REQUEST
from repro.exchange.channel import SendReceipt
from repro.exchange.socket import SocketGraphChannel
from repro.policy import resolve_engine
from repro.transport.client import WorkerClient
from repro.transport.errors import RemoteWorkerError, TransportError


def _retyped(exc: RemoteWorkerError, peer: str) -> Optional[Exception]:
    """A worker-side cluster error crossing the wire, back as its type."""
    if exc.kind == "PeerGoneError":
        return PeerGoneError(peer, exc.message)
    if exc.kind == "ClusterProtocolError":
        return ClusterProtocolError(exc.message)
    return None


class FleetChannel:
    """One driver→worker graph channel with fleet-level failure policy."""

    def __init__(self, fleet: "Fleet", worker: str,
                 inner: SocketGraphChannel, generation: int) -> None:
        self.fleet = fleet
        self.worker = worker
        self.inner = inner
        self.generation = generation
        #: Forced-FULL resyncs taken after a worker restart (re-HELLO).
        self.resyncs = 0

    @property
    def channel_id(self) -> int:
        return self.inner.channel_id

    @property
    def epoch(self) -> int:
        return self.inner.epoch

    def send(self, roots: Sequence[int], **kwargs) -> SendReceipt:
        try:
            return self.inner.send(roots, **kwargs)
        except RemoteWorkerError as exc:
            typed = _retyped(exc, self.worker)
            if typed is not None:
                raise typed from exc
            raise
        except TransportError as exc:
            return self._recover_send(exc, roots, **kwargs)

    def _recover_send(self, cause: TransportError, roots: Sequence[int],
                      **kwargs) -> SendReceipt:
        """The wire died under a send; coordinator decides what it means."""
        fleet = self.fleet
        record = fleet.coordinator.call("lookup", name=self.worker)
        if not record.get("found") or not record.get("alive"):
            fleet.report_dead(self.worker, self.generation)
            raise PeerGoneError(
                self.worker, f"send failed and the coordinator confirms the "
                f"worker is gone: {cause}", generation=self.generation,
            ) from cause
        if record["generation"] != self.generation:
            # Restarted and re-HELLOed: fresh connection, fresh
            # coordinator-assigned channel id, forced-FULL resync.
            client = fleet.client_to(self.worker)
            channel_id = fleet._alloc_channel(self.worker)
            client.admit_channel(channel_id)
            self.inner.recover(client, channel_id)
            self.generation = int(record["generation"])
            self.resyncs += 1
            with obs.span("cluster.resync", worker=self.worker,
                          channel=channel_id):
                return self.send(roots, **kwargs)
        # Same incarnation: transient wire fault, one reconnect retry.
        try:
            self.inner.client.close()
            self.inner.client.connect()
            return self.send(roots, **kwargs)
        except TransportError as exc:
            fleet.report_dead(self.worker, self.generation)
            raise PeerGoneError(
                self.worker, f"send failed twice to a worker the "
                f"coordinator still lists alive: {exc}",
                generation=self.generation,
            ) from exc

    def close(self) -> None:
        self.inner.close()


class Fleet:
    """The driver's handle on a coordinated worker fleet."""

    def __init__(self, runtime: SkywayRuntime,
                 coordinator: CoordinatorClient,
                 name: str = "driver",
                 read_timeout: float = 30.0,
                 policy=None) -> None:
        self.runtime = runtime
        self.coordinator = coordinator
        self.name = name
        self.read_timeout = read_timeout
        #: One policy engine shared by every driver→worker channel (the
        #: fleet's send modes are one decision plane); per-channel history
        #: inside the engine isolates a slow peer's bandwidth signal.
        self.engine = resolve_engine(policy)
        #: worker name -> (generation, client)
        self._clients: Dict[str, Tuple[int, WorkerClient]] = {}
        #: worker name -> FleetChannel (driver→worker broadcast channels)
        self._channels: Dict[str, FleetChannel] = {}
        #: (src, dst) -> (channel_id, dst generation) peer routes
        self._routes: Dict[Tuple[str, str], Tuple[int, int]] = {}
        self.peer_transfers = 0
        #: Cursor into the coordinator's straggler event ring
        #: (:meth:`new_stragglers` reads past it).
        self._event_cursor = 0

    @classmethod
    def connect(cls, runtime: SkywayRuntime, host: str, port: int,
                name: str = "driver", **kwargs) -> "Fleet":
        return cls(runtime, CoordinatorClient(host, port), name=name,
                   **kwargs)

    # -- membership views --------------------------------------------------

    def workers(self, alive_only: bool = True) -> List[dict]:
        records = self.coordinator.call("workers")["workers"]
        if alive_only:
            records = [r for r in records if r["alive"]]
        return records

    def lookup(self, worker: str) -> dict:
        record = self.coordinator.call("lookup", name=worker)
        if not record.get("found"):
            raise ClusterConfigError(
                f"worker {worker!r} is not registered with the coordinator"
            )
        return record

    def report_dead(self, worker: str, generation: int) -> None:
        self.coordinator.call("report_dead", name=worker,
                              generation=generation)

    def stats(self) -> dict:
        return self.coordinator.call("stats")

    # -- telemetry views ---------------------------------------------------

    def telemetry(self, worker: Optional[str] = None,
                  include_window: bool = False) -> dict:
        """The coordinator's fleet telemetry document: per-worker series
        totals + rollups + straggler events (what ``repro.obs top``
        renders)."""
        return self.coordinator.call(
            "telemetry", worker=worker, include_window=include_window,
        )["telemetry"]

    def postmortem(self, worker: str) -> Optional[dict]:
        """Everything the coordinator still holds for ``worker`` — final
        series and the flight-recorder dump its last heartbeat carried.
        Works on dead workers; that is the point.  None if the worker
        never streamed telemetry."""
        result = self.coordinator.call("postmortem", name=worker)
        if not result.get("found"):
            return None
        return result["postmortem"]

    def new_stragglers(self) -> List[dict]:
        """Straggler/recovered events emitted since the last call (a
        cursor per Fleet instance — the driver's event feed)."""
        result = self.coordinator.call("events", since=self._event_cursor)
        events = result.get("events", [])
        if events:
            self._event_cursor = max(e["seq"] for e in events)
        return events

    def refresh_fleet_context(self) -> Optional[dict]:
        """Pull the fleet rollup (cheap: no per-worker series) and feed it
        to the policy engine as optional context.  Best-effort — telemetry
        must never fail a send path."""
        try:
            doc = self.coordinator.call(
                "telemetry", include_workers=False)["telemetry"]
        except Exception:  # noqa: BLE001 - telemetry is advisory
            return None
        rollup = doc.get("rollups")
        self.engine.update_fleet_context(rollup)
        return rollup

    # -- clients & channels ------------------------------------------------

    def _drop_client(self, worker: str) -> None:
        """Forget a cached client whose connection is no longer usable —
        a worker answers any op failure with ERROR *and closes*, so the
        next op must redial."""
        cached = self._clients.pop(worker, None)
        if cached is not None:
            try:
                cached[1].close()
            except Exception:  # noqa: BLE001 - connection already dead
                pass

    def client_to(self, worker: str) -> WorkerClient:
        """A connected client for ``worker``'s *current* incarnation.  A
        cached client for a stale generation is discarded — the restarted
        process shares nothing with the one the old connection spoke to."""
        record = self.lookup(worker)
        if not record["alive"]:
            raise PeerGoneError(worker, generation=record["generation"])
        generation = int(record["generation"])
        cached = self._clients.get(worker)
        if cached is not None:
            if cached[0] == generation:
                return cached[1]
            cached[1].close()
            del self._clients[worker]
        client = WorkerClient(
            self.runtime, record["host"], record["port"],
            node_name=self.name, connect_attempts=3,
            read_timeout=self.read_timeout,
        ).connect()
        self._clients[worker] = (generation, client)
        return client

    def _alloc_channel(self, worker: str, count: int = 1) -> int:
        result = self.coordinator.call(
            "alloc_channels", sender=self.name, receiver=worker, count=count,
        )
        return int(result["channel_ids"][0])

    def channel_to(self, worker: str,
                   requested: ChannelCapabilities = DEFAULT_REQUEST,
                   policy=None, **channel_opts) -> FleetChannel:
        """Open (or reuse) the driver→worker graph channel."""
        cached = self._channels.get(worker)
        if cached is not None:
            return cached
        record = self.lookup(worker)
        client = self.client_to(worker)
        channel_id = self._alloc_channel(worker)
        client.admit_channel(channel_id)
        inner = SocketGraphChannel(
            self.runtime, client, requested=requested,
            policy=policy if policy is not None else self.engine,
            channel_id=channel_id, destination=worker, **channel_opts,
        )
        channel = FleetChannel(self, worker, inner,
                               int(record["generation"]))
        self._channels[worker] = channel
        return channel

    # -- fleet verbs -------------------------------------------------------

    def broadcast(self, roots: Sequence[int], digest: bool = True,
                  requested: ChannelCapabilities = DEFAULT_REQUEST) -> "BroadcastResult":
        """One epoch to every live worker.  Survivors complete even when a
        peer dies mid-broadcast; each casualty is recorded as its typed
        :class:`PeerGoneError` instead of failing the call."""
        receipts: Dict[str, SendReceipt] = {}
        failures: Dict[str, PeerGoneError] = {}
        names = [r["name"] for r in self.workers()]
        self.refresh_fleet_context()  # rollups → policy signals, advisory
        with obs.span("cluster.broadcast", workers=len(names)) as sp:
            for worker in names:
                try:
                    channel = self.channel_to(worker, requested=requested)
                    receipts[worker] = channel.send(roots, digest=digest)
                except PeerGoneError as exc:
                    # The channel object stays cached: if the worker comes
                    # back (re-HELLO, new generation) the next send walks
                    # the recover path — fresh channel id, forced FULL.
                    failures[worker] = exc
            sp.set(delivered=len(receipts), failed=len(failures))
        try:
            stragglers = self.new_stragglers()
        except Exception:  # noqa: BLE001 - telemetry is advisory
            stragglers = []
        if stragglers:
            for event in stragglers:
                if event.get("event") == "straggler":
                    obs.registry().counter("cluster.straggler",
                                           worker=event["worker"])
        return BroadcastResult(receipts, failures, stragglers=stragglers)

    def broadcast_blob(self, data: bytes) -> "BroadcastResult":
        """Same fan-out for opaque bytes (the Spark broadcast payload)."""
        receipts: Dict[str, dict] = {}
        failures: Dict[str, PeerGoneError] = {}
        names = [r["name"] for r in self.workers()]
        with obs.span("cluster.broadcast_blob", workers=len(names),
                      bytes=len(data)) as sp:
            for worker in names:
                try:
                    receipts[worker] = self.client_to(worker).send_blob(data)
                except (RemoteWorkerError, TransportError) as exc:
                    self._drop_client(worker)
                    failures[worker] = PeerGoneError(
                        worker, f"blob broadcast: {exc}"
                    )
                except PeerGoneError as exc:
                    failures[worker] = exc
            sp.set(delivered=len(receipts), failed=len(failures))
        return BroadcastResult(receipts, failures)

    def put_blob(self, worker: str, key: str, data: bytes) -> dict:
        for attempt in range(2):
            try:
                return self.client_to(worker).put_blob(key, data)
            except (RemoteWorkerError, TransportError) as exc:
                self._drop_client(worker)
                if attempt:
                    raise PeerGoneError(
                        worker, f"put_blob failed twice: {exc}"
                    ) from exc

    def peer_blob(self, src: str, dst: str, key: str) -> dict:
        """Worker ``src`` pushes its stored blob to ``dst`` directly."""
        dst_record = self.lookup(dst)
        for attempt in range(2):
            client = self.client_to(src)
            try:
                return client.send_blob_peer(
                    key, dst, dst_record["host"], dst_record["port"],
                )
            except RemoteWorkerError as exc:
                self._drop_client(src)  # src closed after the ERROR frame
                typed = _retyped(exc, dst)
                if typed is not None:
                    if isinstance(typed, PeerGoneError):
                        self.report_dead(dst, int(dst_record["generation"]))
                    raise typed from exc
                raise
            except TransportError as exc:
                # The *source* worker's connection died; one redial.
                self._drop_client(src)
                if attempt:
                    raise PeerGoneError(
                        src, f"peer-blob op failed on the source worker "
                        f"twice: {exc}",
                    ) from exc

    def peer_transfer(self, src: str, dst: str,
                      roots: Sequence[int]) -> dict:
        """Worker ``src`` clones ``roots`` (addresses on *its* heap)
        straight into ``dst`` over a coordinator-assigned channel.
        Returns the sender worker's result, which carries both sides'
        semantic digests (``digest_match`` is the p2p correctness gate)."""
        dst_record = self.lookup(dst)
        generation = int(dst_record["generation"])
        route = self._routes.get((src, dst))
        if route is None or route[1] != generation:
            channel_id = self._alloc_channel(dst)
            self.client_to(dst).admit_channel(channel_id)
            route = (channel_id, generation)
            self._routes[(src, dst)] = route
        with obs.span("cluster.peer_transfer", src=src, dst=dst,
                      channel=route[0]) as sp:
            result = None
            for attempt in range(2):
                client = self.client_to(src)
                try:
                    result = client.send_peer(
                        dst, dst_record["host"], dst_record["port"],
                        route[0], roots,
                    )
                    break
                except RemoteWorkerError as exc:
                    self._drop_client(src)  # src closed after the ERROR
                    typed = _retyped(exc, dst)
                    if typed is not None:
                        if isinstance(typed, PeerGoneError):
                            self._routes.pop((src, dst), None)
                            self.report_dead(dst, generation)
                        raise typed from exc
                    raise
                except TransportError as exc:
                    # The *source* worker's connection died; one redial.
                    self._drop_client(src)
                    if attempt:
                        raise PeerGoneError(
                            src, f"peer transfer failed on the source "
                            f"worker twice: {exc}",
                        ) from exc
            sp.set(mode=result.get("mode"),
                   match=result.get("digest_match"))
        self.peer_transfers += 1
        return result

    # -- lifecycle ---------------------------------------------------------

    def close(self, shutdown_workers: bool = False) -> None:
        for channel in self._channels.values():
            try:
                channel.close()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        self._channels.clear()
        for _gen, client in self._clients.values():
            try:
                if shutdown_workers:
                    client.shutdown_worker()
                client.close()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        self._clients.clear()
        self._routes.clear()
        self.coordinator.close()

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class BroadcastResult:
    """Per-worker outcomes of one fleet broadcast."""

    def __init__(self, receipts: Dict[str, object],
                 failures: Dict[str, PeerGoneError],
                 stragglers: Optional[List[dict]] = None) -> None:
        self.receipts = receipts
        self.failures = failures
        #: ``cluster.straggler`` / ``recovered`` events the coordinator
        #: emitted since the previous broadcast (telemetry plane).
        self.stragglers = stragglers if stragglers is not None else []

    @property
    def delivered(self) -> int:
        return len(self.receipts)

    def digests(self) -> Dict[str, Optional[str]]:
        return {
            name: getattr(r, "digest", None) if not isinstance(r, dict)
            else r.get("digest")
            for name, r in self.receipts.items()
        }

    def __repr__(self) -> str:
        return (f"BroadcastResult(delivered={len(self.receipts)}, "
                f"failed={sorted(self.failures)})")
