#!/usr/bin/env python
"""The paper's Figure 2 program: a Spark job parsing date strings.

Reproduces §2.1's running example end-to-end on the simulated engine:
``DateParser`` travels to the workers via *closure serialization* (the Java
serializer), the parsed ``Date`` objects travel back through the *data*
serializer path at ``collect`` — under Skyway, as whole objects.

Run:  python examples/figure2_date_parsing.py
"""

from repro.core.adapter import SkywaySerializer
from repro.core.runtime import attach_skyway
from repro.jvm.jvm import JVM
from repro.jvm.marshal import Obj, from_heap
from repro.net.cluster import Cluster
from repro.spark.context import SparkContext
from repro.spark.metrics import measure_job
from repro.types.corelib import standard_classpath


def build_classpath():
    cp = standard_classpath()
    cp.define("Year4D", [("year", "I")])
    cp.define("Month2D", [("month", "I")])
    cp.define("Day2D", [("day", "I")])
    cp.define("Date", [
        ("year", "LYear4D;"), ("month", "LMonth2D;"), ("day", "LDay2D;"),
    ])
    cp.define("DateParser", [("parsed", "J")])
    return cp


def parse(line: str) -> Obj:
    """``DateParser.parse``: turn "YYYY-MM-DD" into a Date object graph."""
    year, month, day = line.split("-")
    return Obj("Date", {
        "year": Obj("Year4D", {"year": int(year)}),
        "month": Obj("Month2D", {"month": int(month)}),
        "day": Obj("Day2D", {"day": int(day)}),
    })


def main() -> None:
    classpath = build_classpath()
    cluster = Cluster(lambda name: JVM(name, classpath=classpath),
                      worker_count=3)
    attach_skyway(cluster.driver.jvm, [w.jvm for w in cluster.workers],
                  cluster=cluster)
    sc = SparkContext(cluster, SkywaySerializer(), default_parallelism=4)

    # dates.txt
    lines = [f"{1990 + i % 30:04d}-{1 + i % 12:02d}-{1 + i % 28:02d}"
             for i in range(240)]

    def job():
        rdd = sc.text_file(lines)
        # The map closure captures `parse` — the engine ships a closure
        # per (stage, executor) through the Java serializer (§2.1).
        dates = rdd.map(parse, name="parse")
        keyed = dates.map(lambda d: ((d["year"]["year"],), d), name="key")
        grouped = keyed.group_by_key()  # Date objects cross the wire here
        return sorted(
            (key[0], len(group)) for key, group in grouped.collect()
        )

    per_year, metrics = measure_job(
        cluster, job, shuffle_bytes_source=lambda: sc.shuffle.bytes_shuffled
    )

    print("Figure 2's SimpleSparkJob on the simulated engine (Skyway)\n")
    print(f"parsed {len(lines)} date strings; dates per year (first 5): "
          f"{per_year[:5]}")
    print(f"closures shipped      : {sc.closures.closures_shipped}")
    print(f"shuffle bytes (Skyway): {metrics.shuffle_bytes:,}")
    b = metrics.breakdown
    print(f"breakdown (ms): comp={b.computation*1e3:.2f} "
          f"ser={b.serialization*1e3:.2f} write={b.write_io*1e3:.2f} "
          f"des={b.deserialization*1e3:.2f} read={b.read_io*1e3:.2f}")
    assert sum(n for _, n in per_year) == len(lines)


if __name__ == "__main__":
    main()
