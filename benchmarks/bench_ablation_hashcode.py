"""A-HASH — ablation: hashcode preservation (paper §4.2 "Header Update").

Skyway preserves the cached identity hashcode in each transferred mark
word, so hash-based structures work immediately.  The ablation compares a
received HashMap (identity-hashed keys) used directly against the
counterfactual where hashes were invalidated and the map must be
re-inserted entry by entry — what every ordinary deserializer does.
"""

from repro.core.runtime import attach_skyway
from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.jvm.collections import HashMapOps
from repro.jvm.jvm import JVM
from repro.bench.report import format_kv_section
from repro.types.corelib import standard_classpath

from conftest import bench_scale, publish


def _build_identity_keyed_map(jvm, entries):
    cp = jvm.classpath
    if "KeyObj" not in cp:
        cp.define("KeyObj", [("id", "J")])
    ops = HashMapOps(jvm)
    pin = jvm.pin(ops.new())
    keys = []
    for i in range(entries):
        k = jvm.pin(jvm.new_instance("KeyObj"))
        jvm.set_field(k.address, "id", i)
        jvm.identity_hash(k.address)  # cache it in the mark word
        v = jvm.pin(jvm.new_string(f"value-{i}"))
        pin.address = ops.put(pin.address, k.address, v.address)
        keys.append(k)
    return pin, keys


def run_ablation(entries: int):
    classpath = standard_classpath()
    src = JVM("hash-src", classpath=classpath)
    dst = JVM("hash-dst", classpath=classpath)
    attach_skyway(src, [dst])
    map_pin, _ = _build_identity_keyed_map(src, entries)

    out = SkywayObjectOutputStream(src.skyway, destination="peer")
    out.write_object(map_pin.address)
    inp = SkywayObjectInputStream(dst.skyway)
    inp.accept(out.close())
    received = inp.read_object()
    ops = HashMapOps(dst)

    # Preserved hashes: every key found through its cached hash, no work.
    before = dst.clock.total()
    hits = sum(
        1 for k, v in ops.entries(received) if ops.get(received, k) == v
    )
    preserved_cost = dst.clock.total() - before
    assert hits == entries

    # Counterfactual: hashes invalidated -> full rehash pass.
    before = dst.clock.total()
    ops.rehash_in_place(received, charge=True)
    rehash_cost = dst.clock.total() - before
    return preserved_cost, rehash_cost


def test_ablation_hashcode(benchmark):
    entries = max(20, int(150 * bench_scale()))
    preserved, rehash = benchmark.pedantic(
        lambda: run_ablation(entries), rounds=1, iterations=1
    )
    publish("ablation_hashcode", format_kv_section(
        "A-HASH — hashcode preservation vs receiver-side rehash",
        {
            "entries": entries,
            "use-directly cost (s)": preserved,
            "rehash cost (s)": rehash,
            "rehash penalty per entry (ns)": (rehash / entries) * 1e9,
        },
    ))
    assert rehash > 10 * preserved if preserved > 0 else rehash > 0
    benchmark.extra_info["rehash_per_entry_ns"] = round(rehash / entries * 1e9, 1)
