"""Tests for the old-generation card table."""

import pytest

from repro.heap.cardtable import CardTable


@pytest.fixture
def table():
    return CardTable(start=0x1000, end=0x1000 + 8 * 512, card_size=512)


class TestMarking:
    def test_initially_clean(self, table):
        assert table.dirty_count == 0
        assert not table.is_dirty(0x1000)

    def test_mark_single(self, table):
        table.mark(0x1000 + 513)
        assert table.is_dirty(0x1000 + 512)
        assert not table.is_dirty(0x1000)

    def test_mark_out_of_span(self, table):
        with pytest.raises(ValueError):
            table.mark(0x999)

    def test_mark_range_spans_cards(self, table):
        table.mark_range(0x1000 + 500, 600)  # crosses card 0 -> 2
        assert table.is_dirty(0x1000)
        assert table.is_dirty(0x1000 + 512)
        assert table.is_dirty(0x1000 + 1024)
        assert table.dirty_count == 3

    def test_mark_range_zero_bytes_noop(self, table):
        table.mark_range(0x1000, 0)
        assert table.dirty_count == 0

    def test_clear(self, table):
        table.mark(0x1000)
        table.clear()
        assert table.dirty_count == 0


class TestDirtyRanges:
    def test_empty(self, table):
        assert list(table.dirty_ranges()) == []

    def test_single_run(self, table):
        table.mark(0x1000 + 512)
        table.mark(0x1000 + 1024)
        ranges = list(table.dirty_ranges())
        assert ranges == [(0x1000 + 512, 0x1000 + 1536)]

    def test_two_runs(self, table):
        table.mark(0x1000)
        table.mark(0x1000 + 1536)
        ranges = list(table.dirty_ranges())
        assert len(ranges) == 2

    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            CardTable(0, 1024, card_size=500)
