"""Byte accounting: the real socket transport must land its counters in
the same ``Node.local_bytes_fetched``/``remote_bytes_fetched`` fields the
simulated wire uses, so byte reports (the Figure 3(b) split) read one set
of fields regardless of which transport moved the data."""

import zlib

import pytest

from repro.exchange import Exchange
from repro.jvm.jvm import JVM
from repro.net.cluster import DEFAULT_COST_MODEL, Cluster, Node
from repro.serial.java_serializer import JavaSerializer
from repro.spark.context import SparkContext
from repro.transport import WorkerClient

from tests.conftest import make_list, sample_classpath


def make_cluster(workers: int = 1) -> Cluster:
    classpath = sample_classpath()
    return Cluster(lambda name: JVM(name, classpath=classpath),
                   worker_count=workers)


def test_account_fetch_splits_local_and_remote():
    cluster = make_cluster()
    node = cluster.workers[0]
    node.account_fetch(100, remote=False)
    node.account_fetch(7, remote=True)
    node.account_fetch(3, remote=True)
    assert node.local_bytes_fetched == 100
    assert node.remote_bytes_fetched == 10
    with pytest.raises(ValueError):
        node.account_fetch(-1, remote=True)


def test_cluster_transfer_routes_through_account_fetch():
    cluster = make_cluster()
    driver, worker = cluster.driver, cluster.workers[0]
    cluster.transfer(driver, worker, 1000)
    assert worker.remote_bytes_fetched == 1000
    assert worker.local_bytes_fetched == 0
    cluster.transfer(worker, worker, 50)  # self-fetch is a local read
    assert worker.local_bytes_fetched == 50
    assert worker.remote_bytes_fetched == 1000


def test_socket_send_lands_in_node_counters(spawned_worker, transport_driver):
    """A real-socket graph send accounts the framed stream bytes on the
    given node, split by the client's local/remote designation."""
    cluster = make_cluster()
    node = cluster.workers[0]
    client = WorkerClient(
        transport_driver, spawned_worker.host, spawned_worker.port,
        account_node=node,
    ).connect()
    try:
        head = make_list(transport_driver.jvm, range(20))
        _, data = client.send_graph([head])
        assert node.remote_bytes_fetched == len(data)
        assert node.local_bytes_fetched == 0

        blob = b"x" * 4321
        client.send_blob(blob)
        assert node.remote_bytes_fetched == len(data) + len(blob)
    finally:
        client.close()


def test_socket_send_can_account_as_local(spawned_worker, transport_driver):
    cluster = make_cluster()
    node = cluster.workers[0]
    client = WorkerClient(
        transport_driver, spawned_worker.host, spawned_worker.port,
        account_node=node, account_remote=False,
    ).connect()
    try:
        head = make_list(transport_driver.jvm, range(5))
        _, data = client.send_graph([head])
        assert node.local_bytes_fetched == len(data)
        assert node.remote_bytes_fetched == 0
    finally:
        client.close()


class _RecordingExchange(Exchange):
    """A SparkContext ``exchange=`` stub: records blob transfers and
    accounts them like the socket substrate would."""

    def __init__(self, cluster: Cluster):
        super().__init__(cluster)
        self.calls = []

    def transfer_blob(self, src: Node, dst: Node, data: bytes) -> None:
        self.calls.append((src.name, dst.name, len(data)))
        dst.account_fetch(len(data), remote=src is not dst)


def test_spark_broadcast_routes_through_exchange():
    cluster = make_cluster(workers=2)
    exchange = _RecordingExchange(cluster)
    sc = SparkContext(cluster, JavaSerializer(), exchange=exchange)
    broadcast = sc.broadcast({"model": [1.0, 2.0, 3.0]})
    assert len(exchange.calls) == 2
    for (src, dst, nbytes), worker in zip(exchange.calls, cluster.workers):
        assert src == cluster.driver.name
        assert dst == worker.name
        assert nbytes == broadcast.wire_bytes
        assert worker.remote_bytes_fetched == nbytes


def test_spark_broadcast_default_path_unchanged():
    cluster = make_cluster(workers=2)
    sc = SparkContext(cluster, JavaSerializer())
    assert sc.exchange.substrate == "loopback"
    broadcast = sc.broadcast([1, 2, 3])
    for worker in cluster.workers:
        assert worker.remote_bytes_fetched == broadcast.wire_bytes


def test_socket_exchange_broadcast_end_to_end(
    spawned_worker, transport_driver
):
    """The real thing: SparkContext broadcast bytes travel over loopback
    TCP to a worker process, and the cluster node's counters agree with
    what the worker acknowledged."""
    cluster = make_cluster(workers=1)
    node = cluster.workers[0]
    client = WorkerClient(
        transport_driver, spawned_worker.host, spawned_worker.port,
    ).connect()
    try:
        exchange = Exchange.socket(cluster, {node.name: client})
        sc = SparkContext(cluster, JavaSerializer(), exchange=exchange)
        broadcast = sc.broadcast("a broadcast value" * 100)
        assert node.remote_bytes_fetched == broadcast.wire_bytes

        with pytest.raises(Exception, match="no socket worker"):
            exchange.transfer_blob(cluster.driver, cluster.driver, b"x")
    finally:
        client.close()


def test_send_blob_crc_cross_check(spawned_worker, transport_driver):
    client = WorkerClient(
        transport_driver, spawned_worker.host, spawned_worker.port,
    ).connect()
    try:
        blob = bytes(range(256)) * 100
        result = client.send_blob(blob)
        assert result["crc32"] == zlib.crc32(blob)
    finally:
        client.close()
