"""Tests for the send-epoch cache (repro/delta/epoch_cache.py)."""

import pytest

from repro.core.output_buffer import LOGICAL_BASE
from repro.delta.epoch_cache import EpochCache, EpochRecord
from repro.heap.layout import OBJECT_ALIGNMENT


def make_record(members, destination="dst", epoch=1):
    """members: list of (address, offset, aligned_size)."""
    return EpochRecord(
        destination=destination,
        epoch=epoch,
        addr_to_offset={a: o for a, o, _ in members},
        sizes={a: s for a, _, s in members},
        logical_end=max((o + s for _, o, s in members), default=LOGICAL_BASE),
        total_bytes=sum(s for _, _, s in members),
        minor_gcs=0,
        full_gcs=0,
    )


class TestRecordFullSend:
    def test_builds_mapping_from_cloned_triples(self):
        cache = EpochCache()
        cloned = [(0x1000, 8, 24), (0x1040, 32, 30), (0x10A0, 64, 48)]
        record = cache.record_full_send("dst", cloned, 2, 1)
        assert cache.get("dst") is record
        assert record.offset_of(0x1000) == 8
        assert record.offset_of(0x1040) == 32
        # Sizes are stored receiver-aligned.
        assert record.sizes[0x1040] == 32
        assert record.sizes[0x1040] % OBJECT_ALIGNMENT == 0
        assert (record.minor_gcs, record.full_gcs) == (2, 1)

    def test_logical_end_past_last_clone(self):
        cache = EpochCache()
        record = cache.record_full_send("dst", [(0x1000, 8, 24)], 0, 0)
        assert record.logical_end == 8 + 24
        assert record.total_bytes == 24

    def test_empty_send_ends_at_logical_base(self):
        cache = EpochCache()
        record = cache.record_full_send("dst", [], 0, 0)
        assert record.logical_end == LOGICAL_BASE
        assert len(record) == 0

    def test_invalidate(self):
        cache = EpochCache()
        cache.record_full_send("dst", [(0x1000, 8, 24)], 0, 0)
        cache.invalidate("dst")
        assert cache.get("dst") is None
        cache.invalidate("never-recorded")  # no-op, no raise


class TestMembersOverlapping:
    def test_exact_span(self):
        record = make_record([(0x1000, 8, 32), (0x1020, 40, 32)])
        assert list(record.members_overlapping([(0x1000, 0x1020)])) == [0x1000]

    def test_range_starting_inside_an_object(self):
        # A dirty range can begin mid-object (card granularity); the
        # object covering its start must still be yielded.
        record = make_record([(0x1000, 8, 64), (0x1040, 72, 32)])
        assert list(record.members_overlapping([(0x1010, 0x1040)])) == [0x1000]

    def test_range_just_past_object_end_excluded(self):
        record = make_record([(0x1000, 8, 32)])
        assert list(record.members_overlapping([(0x1020, 0x1040)])) == []

    def test_multiple_ranges_no_double_yield(self):
        record = make_record([(0x1000, 8, 0x100)])
        ranges = [(0x1000, 0x1010), (0x1080, 0x1090)]
        assert list(record.members_overlapping(ranges)) == [0x1000]

    def test_non_members_between_members_skipped(self):
        record = make_record([(0x1000, 8, 16), (0x1100, 24, 16)])
        hits = list(record.members_overlapping([(0x1000, 0x1200)]))
        assert hits == [0x1000, 0x1100]

    def test_empty_ranges(self):
        record = make_record([(0x1000, 8, 16)])
        assert list(record.members_overlapping([])) == []


class TestMergeEpoch:
    def test_new_members_fold_in(self):
        record = make_record([(0x1000, 8, 32)])
        record.merge_epoch({0x2000: 40}, {0x2000: 48}, 88, 1, 0)
        assert record.epoch == 2
        assert record.offset_of(0x2000) == 40
        assert record.total_bytes == 32 + 48
        assert record.logical_end == 88
        assert (record.minor_gcs, record.full_gcs) == (1, 0)
        # The dirty-intersection index sees the new member.
        assert list(record.members_overlapping([(0x2000, 0x2001)])) == [0x2000]

    def test_merge_without_new_members_updates_counters_only(self):
        record = make_record([(0x1000, 8, 32)])
        record.merge_epoch({}, {}, record.logical_end, 0, 0)
        assert record.epoch == 2
        assert len(record) == 1
