"""The legacy decision types, kept for compatibility.

:class:`DeltaPolicy` was the original hardcoded mutation-crossover
arbitration (``repro/delta/policy.py``); the live decision path is now
:class:`~repro.policy.policies.CrossoverPolicy` inside a
:class:`~repro.policy.engine.PolicyEngine`, and a ``DeltaPolicy`` passed
anywhere is converted by :func:`~repro.policy.engine.resolve_engine`
(its ``byte_crossover`` carries over, including the negative degenerate
case that forces full every epoch).  :class:`EpochDecision` remains the
per-epoch record channels expose as ``last_decision``;
:class:`ChannelStats` remains the per-channel transfer ledger.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.delta.epoch_cache import EpochRecord

#: Fall back to a full send when the (estimated or actual) delta bytes
#: exceed this fraction of the resident graph's bytes.
DEFAULT_BYTE_CROSSOVER = 0.5

#: Approximate wire overhead per delta record (tag + varint offset + len).
RECORD_OVERHEAD = 8


@dataclasses.dataclass
class EpochDecision:
    """Why an epoch went full or delta (kept per epoch in channel stats)."""

    mode: str  # "full" | "delta"
    reason: str  # "first_epoch" | "delta" | "mutation_crossover" |
    #              "encoded_overrun" | "gc_moved" | "forced" |
    #              "heterogeneous" | "delta_disabled" | "static_full"
    mutation_rate: float = 0.0
    estimated_bytes: int = 0


@dataclasses.dataclass
class DeltaPolicy:
    """Mutation-rate-driven full/delta arbitration (legacy protocol)."""

    byte_crossover: float = DEFAULT_BYTE_CROSSOVER

    def decide(
        self,
        record: Optional["EpochRecord"],
        dirty_count: int,
        dirty_bytes: int,
        minor_gcs: int,
        full_gcs: int,
    ) -> EpochDecision:
        """The pre-encode gate."""
        if record is None or len(record) == 0:
            return EpochDecision(mode="full", reason="first_epoch")
        if (minor_gcs, full_gcs) != (record.minor_gcs, record.full_gcs):
            return EpochDecision(mode="full", reason="gc_moved")
        rate = dirty_count / len(record)
        estimated = dirty_bytes + RECORD_OVERHEAD * dirty_count
        if estimated > self.byte_crossover * record.total_bytes:
            return EpochDecision(
                mode="full", reason="mutation_crossover",
                mutation_rate=rate, estimated_bytes=estimated,
            )
        return EpochDecision(
            mode="delta", reason="delta",
            mutation_rate=rate, estimated_bytes=estimated,
        )

    def accept_encoded(self, record: "EpochRecord",
                       frame_bytes: int) -> bool:
        """The post-encode gate: is the actual frame still worth it?"""
        return frame_bytes <= self.byte_crossover * record.total_bytes


@dataclasses.dataclass
class ChannelStats:
    """Per-channel transfer accounting across epochs."""

    epochs: int = 0
    full_sends: int = 0
    delta_sends: int = 0
    bytes_full: int = 0
    bytes_delta: int = 0
    objects_patched: int = 0
    objects_new: int = 0
    sameref_roots: int = 0
    wasted_encode_bytes: int = 0
    fallbacks: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def bytes_total(self) -> int:
        return self.bytes_full + self.bytes_delta

    def note_fallback(self, reason: str) -> None:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1
