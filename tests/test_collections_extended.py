"""Tests for the extended collection operations and RDD lineage output."""

import pytest

from repro.heap.heap import NULL
from repro.jvm.collections import ArrayListOps, HashMapOps
from repro.jvm.marshal import to_heap

from tests.test_spark_engine import make_context


class TestHashMapExtended:
    def test_contains_key(self, jvm):
        ops = HashMapOps(jvm)
        m = jvm.pin(ops.new())
        k = jvm.pin(jvm.new_string("present"))
        m.address = ops.put(m.address, k.address, NULL)
        assert ops.contains_key(m.address, k.address)
        absent = jvm.pin(jvm.new_string("absent"))
        assert not ops.contains_key(m.address, absent.address)

    def test_remove_existing(self, jvm):
        ops = HashMapOps(jvm)
        m = jvm.pin(ops.new())
        k = jvm.pin(jvm.new_string("k"))
        v = jvm.pin(jvm.new_string("v"))
        m.address = ops.put(m.address, k.address, v.address)
        removed = ops.remove(m.address, k.address)
        assert jvm.read_string(removed) == "v"
        assert ops.size(m.address) == 0
        assert ops.get(m.address, k.address) == NULL

    def test_remove_absent_returns_null(self, jvm):
        ops = HashMapOps(jvm)
        m = jvm.pin(ops.new())
        k = jvm.pin(jvm.new_string("k"))
        assert ops.remove(m.address, k.address) == NULL

    def test_remove_from_chain_middle(self, jvm):
        """Colliding keys chain; removal relinks, not truncates."""
        ops = HashMapOps(jvm)
        m = jvm.pin(ops.new(capacity=4))
        keys = []
        for i in range(12):  # force chains in a 4/8/16-bucket table
            k = jvm.pin(jvm.new_string(f"key-{i}"))
            v = jvm.pin(to_heap(jvm, i))
            m.address = ops.put(m.address, k.address, v.address)
            keys.append(k)
        ops.remove(m.address, keys[5].address)
        assert ops.size(m.address) == 11
        for i, k in enumerate(keys):
            if i == 5:
                assert ops.get(m.address, k.address) == NULL
            else:
                got = ops.get(m.address, k.address)
                assert jvm.get_field(got, "value") == i


class TestArrayListExtended:
    def test_set_and_index_of(self, jvm):
        ops = ArrayListOps(jvm)
        lst = jvm.pin(ops.new())
        a = jvm.pin(jvm.new_string("a"))
        b = jvm.pin(jvm.new_string("b"))
        ops.append(lst.address, a.address)
        ops.append(lst.address, a.address)
        ops.set(lst.address, 1, b.address)
        assert jvm.read_string(ops.get(lst.address, 1)) == "b"
        assert ops.index_of(lst.address, b.address) == 1
        assert ops.index_of(lst.address, 0xDEAD) == -1

    def test_set_bounds(self, jvm):
        ops = ArrayListOps(jvm)
        lst = jvm.pin(ops.new())
        with pytest.raises(IndexError):
            ops.set(lst.address, 0, NULL)


class TestLineageDescribe:
    def test_shuffle_boundaries_visible(self):
        sc = make_context("kryo")
        rdd = (
            sc.parallelize(range(10))
            .map(lambda x: (x % 2, x))
            .reduce_by_key(lambda a, b: a + b)
            .cache()
        )
        text = rdd.describe()
        assert "reduceByKey" in text
        assert "[cached]" in text
        assert "ParallelizedRDD" in text
        # Lineage depth: shuffled -> mapped -> parallelized.
        assert len(text.splitlines()) >= 3

    def test_join_lineage_has_both_sides(self):
        sc = make_context("kryo")
        left = sc.parallelize([(1, "a")])
        right = sc.parallelize([(1, "b")])
        text = left.join(right).describe()
        assert text.count("join") >= 2  # both tagged shuffle legs
