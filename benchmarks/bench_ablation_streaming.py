"""A-STREAM — ablation: streaming flush vs buffer-everything (paper §3.2).

"for an output buffer, it is both time-inefficient and space-consuming if
we do not send data until all objects are in."  The ablation sends the same
graph through a small streaming buffer and through one large enough to hold
everything, comparing peak native-memory residency and when bytes first
leave the sender.
"""

from repro.core.output_buffer import OutputBuffer
from repro.core.runtime import attach_skyway
from repro.core.sender import ObjectGraphSender
from repro.jvm.jvm import JVM
from repro.bench.report import format_kv_section

from conftest import bench_scale, publish

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
from tests.conftest import make_list, sample_classpath  # noqa: E402


class _PeakTrackingBuffer(OutputBuffer):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.peak_resident = 0
        self.first_flush_at_objects = None
        self._objects_written = 0

    def write_object(self, logical_addr, payload):
        super().write_object(logical_addr, payload)
        self._objects_written += 1
        self.peak_resident = max(self.peak_resident, self.resident_bytes)

    def flush(self):
        if self.resident_bytes and self.first_flush_at_objects is None:
            self.first_flush_at_objects = self._objects_written
        super().flush()


def run_ablation(nodes: int):
    classpath = sample_classpath()
    src = JVM("stream-src", classpath=classpath)
    dst = JVM("stream-dst", classpath=classpath)
    attach_skyway(src, [dst])
    head = make_list(src, range(nodes))
    stats = {}
    for label, capacity in (("streaming (16KB buffer)", 16 * 1024),
                            ("buffer-everything", 64 * 1024 * 1024)):
        src.skyway.shuffle_start()
        buffer = _PeakTrackingBuffer("peer", capacity=capacity,
                                     sink=lambda seg: None)
        sender = ObjectGraphSender(src, buffer, sid=src.skyway.sid)
        sender.write_object(head)
        buffer.flush()
        stats[label] = {
            "peak native bytes": buffer.peak_resident,
            "flushes": buffer.flush_count,
            "objects before first byte left": buffer.first_flush_at_objects,
            "total bytes": sender.bytes_sent,
        }
    return stats


def test_ablation_streaming(benchmark):
    nodes = max(200, int(2000 * bench_scale()))
    stats = benchmark.pedantic(lambda: run_ablation(nodes),
                               rounds=1, iterations=1)
    sections = [
        format_kv_section(f"A-STREAM — {label}", values)
        for label, values in stats.items()
    ]
    publish("ablation_streaming", "\n\n".join(sections))

    streaming = stats["streaming (16KB buffer)"]
    monolithic = stats["buffer-everything"]
    assert streaming["peak native bytes"] < monolithic["peak native bytes"] / 4
    assert streaming["flushes"] > monolithic["flushes"]
    assert monolithic["objects before first byte left"] == nodes
    assert streaming["objects before first byte left"] < nodes / 4
