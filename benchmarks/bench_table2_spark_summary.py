"""E-T2 — Table 2: Spark performance summary, normalized to the Java
serializer (ranges and geometric means per component)."""

from repro.bench.report import format_normalized_table, geometric_mean
from repro.bench.spark_experiments import run_figure8a, summarize_table2

from conftest import bench_scale, publish


def test_table2_spark_summary(benchmark):
    scale = bench_scale(0.02)

    results = benchmark.pedantic(
        lambda: run_figure8a(scale=scale, graphs=("LJ", "OR"),
                             pr_iterations=2),
        rounds=1, iterations=1,
    )

    summary = summarize_table2(results)
    report = format_normalized_table(
        summary,
        "Table 2 — Spark summary normalized to the Java serializer\n"
        "paper geomeans: Kryo 0.76/0.59/0.61/0.26/0.02/0.52 | "
        "Skyway 0.64/0.62/0.97/0.16/0.02/1.15",
    )
    publish("table2_spark_summary", report)

    kryo_overall = geometric_mean([n["overall"] for n in summary["Kryo"]])
    sky_overall = geometric_mean([n["overall"] for n in summary["Skyway"]])
    sky_des = geometric_mean([n["des"] for n in summary["Skyway"]])
    kryo_size = geometric_mean([n["size"] for n in summary["Kryo"]])
    sky_size = geometric_mean([n["size"] for n in summary["Skyway"]])

    # Shape claims from the paper's Table 2:
    assert kryo_overall < 1.0          # Kryo beats the Java serializer
    assert sky_overall < 1.0           # so does Skyway
    assert sky_des < 0.5               # Skyway's big win: deserialization
    assert kryo_size < 1.0 < sky_size  # Kryo compresses; Skyway ships more
    benchmark.extra_info["kryo_overall_gm"] = round(kryo_overall, 3)
    benchmark.extra_info["skyway_overall_gm"] = round(sky_overall, 3)
