"""Simulated cluster: nodes, network links, disks, and byte streams.

Stands in for the paper's testbed (11 Xeon nodes, 1000 Mb/s Ethernet, one
SSD per node).  Time is charged through each node's :class:`SimClock`
following the paper's accounting: disk writes to WRITE_IO on the writer,
disk reads to READ_IO on the reader, and network transfer to NETWORK on the
*receiver* ("the network cost is negligible and included in the read I/O").
"""

from repro.net.disk import Disk, SimFile
from repro.net.cluster import Cluster, Node
from repro.net.streams import ByteInputStream, ByteOutputStream

__all__ = [
    "Disk",
    "SimFile",
    "Cluster",
    "Node",
    "ByteInputStream",
    "ByteOutputStream",
]
