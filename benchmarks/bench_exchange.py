"""B-EXCHANGE — the exchange layer's cross-substrate contract, measured.

Four channels per mutation rate — {delta, full-only} x {loopback, socket}
with pairwise-pinned channel ids — ship two epochs of one driver-heap
vertex graph.  The gate: the two substrates frame byte-identical epochs,
every receiving heap agrees digest-wise whether the epoch arrived FULL or
as a DELTA patch, and on a paced wire the DELTA epoch beats the FULL epoch
in wire bytes *and* wall-clock at ≤10% mutation (with the policy's
fallback visible at 100%).
"""

from repro.bench.exchange_experiments import (
    exchange_checks_pass,
    format_exchange_report,
    run_exchange_experiment,
)

from conftest import bench_scale, emit_json, publish


def test_exchange_parity_and_delta_win(benchmark):
    vertices = max(800, int(4_000 * bench_scale()))
    result = benchmark.pedantic(
        lambda: run_exchange_experiment(vertices=vertices),
        rounds=1, iterations=1,
    )

    publish("exchange", format_exchange_report(result))
    emit_json("exchange", result)

    checks = result["checks"]
    assert checks["frames_byte_identical"], (
        "loopback and socket substrates framed different epoch bytes"
    )
    assert checks["digests_identical"], (
        "delta-patched receiver heap diverged from a full receive"
    )
    assert exchange_checks_pass(result), f"B-EXCHANGE gate failed: {checks}"
