"""Unified per-channel observability.

Before the exchange layer, three ledgers existed and never met: the
simulated :class:`~repro.simtime.Breakdown` (what the cost model predicts),
the measured :class:`~repro.transport.metrics.TransportMetrics` (what the
wire did), and the delta :class:`~repro.delta.policy.ChannelStats` (what
the epoch protocol decided).  :class:`ExchangeMetrics` is the one snapshot
merging all three for one channel — JSON-exportable, consumed by
B-EXCHANGE and anything tracking send behavior across runs.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Mapping, Optional

from repro.delta.policy import ChannelStats
from repro.simtime import Breakdown, Category


def delta_stats_dict(stats: ChannelStats) -> Dict[str, object]:
    out = dataclasses.asdict(stats)
    out["bytes_total"] = stats.bytes_total
    return out


@dataclasses.dataclass
class ExchangeMetrics:
    """One channel's merged ledger at snapshot time."""

    substrate: str
    destination: str
    channel_id: int
    capabilities: Dict[str, object]
    #: Exchange-level sends (one per ``send()`` call; a NACK recovery is
    #: one send shipping two wire frames).
    sends: int
    wire_bytes: int
    nack_recoveries: int
    #: Simulated clock seconds this channel charged, by category.
    breakdown: Breakdown
    #: The epoch protocol's ledger (full/delta counts, fallbacks, ...).
    delta: Dict[str, object]
    #: Measured wire counters; None on the loopback substrate (no wire).
    transport: Optional[Dict[str, object]] = None
    #: The policy plane's most recent (clamped) decision on this channel,
    #: as :meth:`~repro.policy.plan.SendPlan.as_dict`.
    last_plan: Optional[Dict[str, object]] = None

    @property
    def bytes_per_epoch(self) -> float:
        """Mean wire bytes per exchange-level send."""
        return self.wire_bytes / self.sends if self.sends else 0.0

    @property
    def mutation_rate(self) -> float:
        """The dirty fraction behind the latest decision (0 when the
        channel has not observed a mutation epoch yet)."""
        if self.last_plan is None:
            return 0.0
        return float(self.last_plan.get("mutation_rate", 0.0))

    def as_dict(self) -> Dict[str, object]:
        return {
            "substrate": self.substrate,
            "destination": self.destination,
            "channel_id": self.channel_id,
            "capabilities": dict(self.capabilities),
            "sends": self.sends,
            "wire_bytes": self.wire_bytes,
            "bytes_per_epoch": self.bytes_per_epoch,
            "mutation_rate": self.mutation_rate,
            "nack_recoveries": self.nack_recoveries,
            "breakdown": self.breakdown.as_dict(),
            "delta": dict(self.delta),
            "transport": (dict(self.transport)
                          if self.transport is not None else None),
            "last_plan": (dict(self.last_plan)
                          if self.last_plan is not None else None),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def build(
        cls,
        substrate: str,
        destination: str,
        channel_id: int,
        capabilities: Dict[str, object],
        sends: int,
        wire_bytes: int,
        nack_recoveries: int,
        sim_totals: Mapping[Category, float],
        stats: ChannelStats,
        transport: Optional[Dict[str, object]] = None,
        last_plan: Optional[Dict[str, object]] = None,
    ) -> "ExchangeMetrics":
        return cls(
            substrate=substrate,
            destination=destination,
            channel_id=channel_id,
            capabilities=capabilities,
            sends=sends,
            wire_bytes=wire_bytes,
            nack_recoveries=nack_recoveries,
            breakdown=Breakdown.from_totals(
                dict(sim_totals), bytes_written=wire_bytes,
            ),
            delta=delta_stats_dict(stats),
            transport=transport,
            last_plan=last_plan,
        )
