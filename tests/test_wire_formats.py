"""Wire-format level tests: primitive codecs, Kryo back-references, and
sender output invariants on random graphs."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.runtime import attach_skyway
from repro.heap.layout import align_up
from repro.jvm.jvm import JVM
from repro.jvm.marshal import to_heap
from repro.net.streams import ByteInputStream, ByteOutputStream
from repro.serial.base import read_primitive, write_primitive
from repro.serial.kryo import KryoSerializer

from tests.conftest import make_date, sample_classpath

_SETTINGS = settings(max_examples=30, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

_PRIMITIVE_STRATEGIES = {
    "Z": st.booleans(),
    "B": st.integers(min_value=-128, max_value=127),
    "C": st.integers(min_value=0, max_value=0xFFFF),
    "S": st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
    "I": st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
    "J": st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
    "F": st.floats(allow_nan=False, allow_infinity=False, width=32),
    "D": st.floats(allow_nan=False, allow_infinity=False),
}


class TestPrimitiveCodecs:
    @pytest.mark.parametrize("descriptor", list(_PRIMITIVE_STRATEGIES))
    def test_roundtrip_property(self, descriptor):
        @_SETTINGS
        @given(value=_PRIMITIVE_STRATEGIES[descriptor])
        def run(value):
            out = ByteOutputStream()
            write_primitive(out, descriptor, value)
            got = read_primitive(ByteInputStream(out.getvalue()), descriptor)
            if descriptor == "Z":
                assert got == (1 if value else 0)
            else:
                assert got == value
        run()

    def test_unknown_descriptor_rejected(self):
        with pytest.raises(Exception):
            write_primitive(ByteOutputStream(), "L;", 0)


class TestKryoWireFormat:
    def test_backreference_smaller_than_object(self, classpath):
        jvm = JVM("kw", classpath=classpath)
        ser = KryoSerializer(registration_required=False)
        date = make_date(jvm, 1, 1, 1)
        once = len(ser.serialize_many(jvm, [date]))
        twice = len(ser.serialize_many(jvm, [date, date]))
        # The second occurrence is a couple of varints, not a re-encode.
        assert twice - once < 6

    def test_registered_ids_are_varints_not_names(self, classpath):
        jvm = JVM("kw2", classpath=classpath)
        from repro.serial.kryo import KryoRegistrator
        reg = KryoRegistrator()
        for name in ("Date", "Year4D", "Month2D", "Day2D"):
            reg.register(name)
        data = KryoSerializer(reg).serialize(jvm, make_date(jvm, 1, 1, 1))
        assert len(data) < 60  # four objects, ids + fields only

    def test_null_is_single_byte(self, classpath):
        jvm = JVM("kw3", classpath=classpath)
        ser = KryoSerializer(registration_required=False)
        assert len(ser.serialize(jvm, 0)) == 1


class TestSenderInvariants:
    @_SETTINGS
    @given(value=st.recursive(
        st.one_of(st.integers(min_value=-50, max_value=50),
                  st.text(max_size=5)),
        lambda c: st.one_of(st.lists(c, max_size=3), st.tuples(c, c)),
        max_leaves=10,
    ))
    def test_bytes_and_composition_consistent(self, value):
        """For any graph: payload bytes equal the logical buffer size,
        composition counters account every byte, and the top mark
        resolves on the receiver."""
        cp = sample_classpath()
        src = JVM("inv-src", classpath=cp)
        dst = JVM("inv-dst", classpath=cp)
        attach_skyway(src, [dst])

        from repro.core.streams import (
            SkywayObjectInputStream, SkywayObjectOutputStream,
        )
        addr = to_heap(src, value)
        out = SkywayObjectOutputStream(src.skyway, destination="p")
        out.write_object(addr)
        sender = out.sender
        data = out.close()

        logical = sender.buffer.logical_size
        # Every committed byte is one of header/pointer/data/padding.
        accounted = (sender.header_bytes + sender.pointer_bytes
                     + sender.data_bytes + sender.padding_bytes)
        assert accounted == sender.bytes_sent
        # Logical space is the aligned sum of clone sizes: it can exceed
        # the payload bytes only by per-object alignment slack.
        assert logical >= sender.bytes_sent
        assert logical - sender.bytes_sent < 8 * max(1, sender.objects_sent)
        assert logical % 8 == 0 and align_up(logical, 8) == logical

        inp = SkywayObjectInputStream(dst.skyway)
        inp.accept(data)
        received = inp.read_object()
        if value is None:
            assert received == 0
        else:
            assert dst.heap.contains(received)
        # Receiver placed exactly as many objects as the sender cloned.
        assert inp.receiver.objects_received == sender.objects_sent
