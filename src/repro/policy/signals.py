"""Channel signals: everything a policy may look at, in one record.

The engine assembles one :class:`ChannelSignals` per epoch from ledgers
that already exist — the delta card table's dirty set (via
``CardTable.snapshot()``/``dirty_ranges()`` intersected with the epoch
record), the epoch cache (resident size, GC generation), measured wire
bandwidth and chunk-queue wait fed back from the transport, and the
engine's own per-channel history (EWMAs, last mode).  Policies are pure
functions of this record; nothing else flows into a decision.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional


@dataclasses.dataclass
class ChannelSignals:
    """One epoch's decision inputs for one channel."""

    channel_id: int = 0
    destination: str = ""
    #: The epoch being planned (1-based; the channel's counter after the
    #: frame ships).
    epoch: int = 0
    root_count: int = 1

    # -- epoch-record state (what the receiver holds) ----------------------
    resident_objects: int = 0
    resident_bytes: int = 0
    first_epoch: bool = False
    gc_moved: bool = False

    # -- card-table dirty set ----------------------------------------------
    dirty_count: int = 0
    dirty_bytes: int = 0
    record_overhead: int = 8
    #: The dirty member addresses (carried to the encoder so the diff is
    #: computed once); None when no mutation observation was possible
    #: (first epoch, GC moved the record, delta disabled, forced full).
    dirty_members: Optional[List[int]] = None

    # -- channel configuration ---------------------------------------------
    forced_full: bool = False
    heterogeneous: bool = False
    delta_capable: bool = True

    # -- measured transport + engine history -------------------------------
    #: EWMA of measured wire bandwidth (bytes/second), from
    #: ``PolicyEngine.observe_transfer``; None before the first transfer.
    bandwidth_bps: Optional[float] = None
    #: Fleet-median effective bandwidth (bytes/second) from the telemetry
    #: plane's rollups (``PolicyEngine.update_fleet_context``); None when
    #: no fleet context has been fed.  Lets a policy judge *this*
    #: channel's bandwidth against the fleet instead of in isolation.
    fleet_bandwidth_bps: Optional[float] = None
    #: Latest chunk-queue stall seconds ("traversal outran the wire").
    queue_wait_seconds: float = 0.0
    #: EWMA of the object-count mutation rate across observed epochs.
    mutation_ewma: Optional[float] = None
    #: EWMA of the byte fraction (estimated delta bytes / resident bytes).
    byte_fraction_ewma: Optional[float] = None
    #: The mode the policy last chose on its own (hysteresis anchor);
    #: None until a crossover-style rule has fired once.
    last_mode: Optional[str] = None

    # -- derived -----------------------------------------------------------

    @property
    def dirty_fraction(self) -> float:
        if not self.resident_objects:
            return 0.0
        return self.dirty_count / self.resident_objects

    @property
    def estimated_delta_bytes(self) -> int:
        return self.dirty_bytes + self.record_overhead * self.dirty_count

    @property
    def byte_fraction(self) -> float:
        """Estimated delta bytes as a fraction of the resident graph."""
        if not self.resident_bytes:
            return 1.0
        return self.estimated_delta_bytes / self.resident_bytes

    @property
    def has_mutation_observation(self) -> bool:
        """True when this epoch carries a meaningful dirty-set reading."""
        return self.dirty_members is not None and self.resident_objects > 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "channel_id": self.channel_id,
            "destination": self.destination,
            "epoch": self.epoch,
            "root_count": self.root_count,
            "resident_objects": self.resident_objects,
            "resident_bytes": self.resident_bytes,
            "dirty_count": self.dirty_count,
            "dirty_bytes": self.dirty_bytes,
            "dirty_fraction": self.dirty_fraction,
            "first_epoch": self.first_epoch,
            "gc_moved": self.gc_moved,
            "forced_full": self.forced_full,
            "heterogeneous": self.heterogeneous,
            "delta_capable": self.delta_capable,
            "bandwidth_bps": self.bandwidth_bps,
            "fleet_bandwidth_bps": self.fleet_bandwidth_bps,
            "queue_wait_seconds": self.queue_wait_seconds,
            "mutation_ewma": self.mutation_ewma,
            "byte_fraction_ewma": self.byte_fraction_ewma,
            "last_mode": self.last_mode,
        }
