"""The exchange layer's error taxonomy.

:class:`ExchangeError` is the base; :class:`ExchangeProtocolError` wraps
every malformed-epoch failure (truncated or bit-flipped FULL/DELTA frames,
unparseable embedded streams) so consumers of
:func:`~repro.exchange.dispatch.receive_epoch` catch one type instead of
the union of wire/stream/apply errors underneath.

:class:`~repro.delta.channel.DeltaStaleError` is re-exported rather than
wrapped: staleness is the NACK of the epoch protocol — control flow, not
corruption — and channels react to it (force the next epoch full), so it
must stay distinguishable from a damaged frame.
"""

from __future__ import annotations

from repro.delta.channel import DeltaStaleError

__all__ = [
    "DeltaStaleError",
    "ExchangeConfigError",
    "ExchangeError",
    "ExchangeProtocolError",
]


class ExchangeError(RuntimeError):
    """Base of everything the exchange layer raises itself."""


class ExchangeConfigError(ExchangeError):
    """The exchange was asked for something its configuration lacks
    (unknown worker, no Skyway runtime, unsupported substrate)."""


class ExchangeProtocolError(ExchangeError):
    """A received epoch frame could not be decoded or applied."""
