"""The experiment harness: one runner per table/figure of the paper.

Every runner returns plain data (dicts/Breakdowns) and has a matching
ASCII renderer in :mod:`repro.bench.report`, so `benchmarks/` files print
the same rows/series the paper reports.  See DESIGN.md's experiment index.
"""

from repro.bench.report import (
    format_breakdown_table,
    format_figure7,
    format_normalized_table,
    format_table1,
    geometric_mean,
)
from repro.bench.spark_experiments import (
    SPARK_APPS,
    SparkRunResult,
    run_figure3,
    run_figure8a,
    run_spark_app,
    summarize_table2,
)
from repro.bench.flink_experiments import run_figure8b, summarize_table4
from repro.bench.memory import measure_baddr_overhead
from repro.bench.extra_bytes import measure_extra_byte_composition

__all__ = [
    "format_breakdown_table",
    "format_figure7",
    "format_normalized_table",
    "format_table1",
    "geometric_mean",
    "SPARK_APPS",
    "SparkRunResult",
    "run_spark_app",
    "run_figure3",
    "run_figure8a",
    "summarize_table2",
    "run_figure8b",
    "summarize_table4",
    "measure_baddr_overhead",
    "measure_extra_byte_composition",
]
