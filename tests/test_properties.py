"""Property-based tests (hypothesis) on the core invariants.

* Any marshallable value round-trips through every serializer — Java,
  Kryo, Skyway — unchanged (Skyway is "not a general-purpose serializer",
  but on object graphs it must be semantically indistinguishable).
* GC never changes the reachable graph.
* Relativization/absolutization are exact inverses.
* Layout arithmetic invariants (alignment, monotonicity).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.runtime import attach_skyway
from repro.core.adapter import SkywaySerializer
from repro.heap.layout import SKYWAY_LAYOUT, align_up
from repro.jvm.jvm import JVM
from repro.jvm.marshal import from_heap, to_heap
from repro.serial import JavaSerializer, KryoSerializer

from tests.conftest import sample_classpath

# Values that can cross the marshal bridge.  Dict keys limited to hashable
# scalars; floats constrained to finite (NaN breaks equality comparison).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.binary(max_size=12),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=12,
)

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _fresh_pair():
    cp = sample_classpath()
    src = JVM("prop-src", classpath=cp)
    dst = JVM("prop-dst", classpath=cp)
    attach_skyway(src, [dst])
    return src, dst


class TestSerializerRoundtripProperties:
    @_SETTINGS
    @given(value=_values)
    def test_java_roundtrip(self, value):
        src, dst = _fresh_pair()
        addr = to_heap(src, value)
        back = from_heap(dst, JavaSerializer().deserialize(
            dst, JavaSerializer().serialize(src, addr)))
        assert back == value

    @_SETTINGS
    @given(value=_values)
    def test_kryo_roundtrip(self, value):
        src, dst = _fresh_pair()
        ser = KryoSerializer(registration_required=False)
        addr = to_heap(src, value)
        back = from_heap(dst, ser.deserialize(dst, ser.serialize(src, addr)))
        assert back == value

    @_SETTINGS
    @given(value=_values)
    def test_skyway_roundtrip(self, value):
        src, dst = _fresh_pair()
        ser = SkywaySerializer()
        addr = to_heap(src, value)
        back = from_heap(dst, ser.deserialize(dst, ser.serialize(src, addr)))
        assert back == value

    @_SETTINGS
    @given(value=_values)
    def test_all_serializers_agree(self, value):
        """Swapping serializers never changes program-visible data."""
        src, dst = _fresh_pair()
        addr = to_heap(src, value)
        pin = src.pin(addr)
        results = []
        for ser in (JavaSerializer(), KryoSerializer(registration_required=False),
                    SkywaySerializer()):
            data = ser.serialize(src, pin.address)
            results.append(from_heap(dst, ser.deserialize(dst, data)))
        assert results[0] == results[1] == results[2] == value


class TestGCProperties:
    @_SETTINGS
    @given(value=_values, minor_count=st.integers(min_value=1, max_value=3))
    def test_minor_gc_preserves_graph(self, value, minor_count):
        src, _ = _fresh_pair()
        pin = src.pin(to_heap(src, value))
        for _ in range(minor_count):
            src.gc.minor()
        assert from_heap(src, pin.address) == value

    @_SETTINGS
    @given(value=_values)
    def test_full_gc_preserves_graph(self, value):
        src, _ = _fresh_pair()
        pin = src.pin(to_heap(src, value))
        src.gc.full()
        assert from_heap(src, pin.address) == value

    @_SETTINGS
    @given(value=_values)
    def test_gc_after_receive_preserves_graph(self, value):
        src, dst = _fresh_pair()
        ser = SkywaySerializer()
        addr = to_heap(src, value)
        received = ser.deserialize(dst, ser.serialize(src, addr))
        pin = dst.pin(received)
        dst.gc.minor()
        dst.gc.full()
        assert from_heap(dst, pin.address) == value


class TestLayoutProperties:
    @given(st.integers(min_value=0, max_value=2**30),
           st.sampled_from([1, 2, 4, 8, 16]))
    def test_align_up_properties(self, value, alignment):
        aligned = align_up(value, alignment)
        assert aligned >= value
        assert aligned % alignment == 0
        assert aligned - value < alignment

    @given(st.lists(
        st.tuples(st.text(min_size=1, max_size=4,
                          alphabet="abcdefghijklmnop"),
                  st.sampled_from(list("ZBCSIFJD") + ["Ljava.lang.Object;"])),
        max_size=8, unique_by=lambda t: t[0]))
    def test_field_layout_never_overlaps(self, fields):
        placed, size = SKYWAY_LAYOUT.compute_field_offsets(
            SKYWAY_LAYOUT.header_size, fields)
        spans = []
        from repro.types import descriptors
        for name, desc, off in placed:
            spans.append((off, off + descriptors.size_of(desc)))
        spans.sort()
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start
        if spans:
            assert spans[0][0] >= SKYWAY_LAYOUT.header_size
            assert size >= spans[-1][1]
        assert size % 8 == 0
