"""The send-epoch cache: what the receiver already holds, per destination.

After a full Skyway send, the sender knows — from the same baddr/clone
bookkeeping Algorithm 2 already performs — exactly where every source
object's clone landed in the destination's input buffer.  An
:class:`EpochRecord` preserves that mapping across shuffle phases (baddrs
are invalidated by the next ``shuffle_start``; the record is not), so a
later epoch can refer to a receiver-resident clone by offset instead of
reshipping it.

The record is also the dirty-discovery index: its address-sorted object
spans are intersected with the delta card table's dirty ranges to find the
mutated subset without touching the graph (see
:meth:`EpochRecord.members_overlapping`).
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.core.output_buffer import LOGICAL_BASE
from repro.heap.layout import OBJECT_ALIGNMENT, align_up


@dataclasses.dataclass
class EpochRecord:
    """The last shipped graph for one destination channel."""

    destination: str
    #: Epoch counter: 1 on the first (full) send, +1 per send since.
    epoch: int
    #: Source heap address -> logical offset in the receiver's buffer.
    addr_to_offset: Dict[int, int]
    #: Source heap address -> aligned clone size in the receiver's buffer.
    sizes: Dict[int, int]
    #: Next free logical offset in the receiver's buffer (appends go here).
    logical_end: int
    #: Total aligned payload bytes resident on the receiver — the fallback
    #: policy's proxy for the cost of a full resend.
    total_bytes: int
    #: Sender GC counts at record time; any collection since may have moved
    #: cached source objects, so the record must be rebuilt via a full send.
    minor_gcs: int
    full_gcs: int
    #: Address-sorted object starts (the dirty-intersection index).
    _sorted_addrs: List[int] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        if not self._sorted_addrs:
            self._sorted_addrs = sorted(self.addr_to_offset)

    def __len__(self) -> int:
        return len(self.addr_to_offset)

    def __contains__(self, address: int) -> bool:
        return address in self.addr_to_offset

    def offset_of(self, address: int) -> int:
        return self.addr_to_offset[address]

    def members_overlapping(
        self, ranges: Iterable[Tuple[int, int]]
    ) -> Iterator[int]:
        """Cached objects whose span overlaps any ``[start, end)`` range.

        This is the sender's whole dirty-discovery pass: the delta card
        table yields coalesced dirty ranges, and a bisect over the sorted
        member addresses finds the affected clones — no graph traversal.
        Card granularity makes this a superset of the truly mutated set
        (neighbours sharing a card are swept in); that costs bytes, never
        correctness.
        """
        addrs = self._sorted_addrs
        seen_upto = -1  # avoid double-yield when ranges touch one object
        for start, end in ranges:
            # The object covering ``start`` may begin before it.
            i = bisect.bisect_right(addrs, start) - 1
            if i >= 0 and addrs[i] + self.sizes[addrs[i]] <= start:
                i += 1
            i = max(i, 0)
            while i < len(addrs) and addrs[i] < end:
                if i > seen_upto:
                    yield addrs[i]
                    seen_upto = i
                i += 1

    def merge_epoch(
        self,
        new_members: Dict[int, int],
        new_sizes: Dict[int, int],
        logical_end: int,
        minor_gcs: int,
        full_gcs: int,
    ) -> None:
        """Fold one delta epoch's NEW objects into the record."""
        self.epoch += 1
        self.addr_to_offset.update(new_members)
        self.sizes.update(new_sizes)
        self.logical_end = logical_end
        self.total_bytes += sum(new_sizes.values())
        self.minor_gcs = minor_gcs
        self.full_gcs = full_gcs
        if new_members:
            self._sorted_addrs = sorted(self.addr_to_offset)


class EpochCache:
    """Per-destination epoch records for one sending runtime."""

    def __init__(self) -> None:
        self._records: Dict[str, EpochRecord] = {}

    def get(self, destination: str) -> EpochRecord:
        return self._records.get(destination)

    def invalidate(self, destination: str) -> None:
        self._records.pop(destination, None)

    def record_full_send(
        self,
        destination: str,
        cloned: List[Tuple[int, int, int]],
        minor_gcs: int,
        full_gcs: int,
        epoch: int = 1,
    ) -> EpochRecord:
        """Build a fresh record from a sender's ``cloned`` list
        (``(source_address, buffer_offset, payload_bytes)`` triples)."""
        addr_to_offset: Dict[int, int] = {}
        sizes: Dict[int, int] = {}
        logical_end = LOGICAL_BASE
        for source, offset, nbytes in cloned:
            aligned = align_up(nbytes, OBJECT_ALIGNMENT)
            addr_to_offset[source] = offset
            sizes[source] = aligned
            logical_end = max(logical_end, offset + aligned)
        record = EpochRecord(
            destination=destination,
            epoch=epoch,
            addr_to_offset=addr_to_offset,
            sizes=sizes,
            logical_end=logical_end,
            total_bytes=sum(sizes.values()),
            minor_gcs=minor_gcs,
            full_gcs=full_gcs,
        )
        self._records[destination] = record
        return record

    def __len__(self) -> int:
        return len(self._records)
