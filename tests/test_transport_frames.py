"""Wire-protocol unit tests: frames, CRCs, payload codecs, registry merge."""

import struct

import pytest

from repro.transport import frames
from repro.transport.errors import FrameCorruptionError, HandshakeError
from repro.transport.registry_sync import extra_names, merge_registries


def test_frame_roundtrip():
    raw = frames.encode_frame(frames.DATA, b"payload bytes")
    decoder = frames.FrameDecoder()
    decoder.feed(raw)
    assert decoder.next_frame() == (frames.DATA, b"payload bytes")
    assert decoder.next_frame() is None


def test_frame_decoder_handles_arbitrary_split_points():
    raw = b"".join(
        frames.encode_frame(t, p)
        for t, p in [(frames.HELLO, b"a" * 300), (frames.DATA, b""),
                     (frames.TRAILER, b"xyz")]
    )
    for step in (1, 2, 7, 64):
        decoder = frames.FrameDecoder()
        seen = []
        for i in range(0, len(raw), step):
            decoder.feed(raw[i:i + step])
            seen.extend(decoder.frames())
        assert [t for t, _ in seen] == [frames.HELLO, frames.DATA,
                                        frames.TRAILER]
        assert seen[0][1] == b"a" * 300
        assert decoder.buffered == 0


def test_crc_mismatch_is_typed():
    raw = bytearray(frames.encode_frame(frames.DATA, b"hello world"))
    raw[frames.HEADER_BYTES + 4] ^= 0x01  # flip a payload bit
    decoder = frames.FrameDecoder()
    decoder.feed(bytes(raw))
    with pytest.raises(FrameCorruptionError, match="CRC mismatch"):
        decoder.next_frame()


def test_unknown_frame_type_is_typed():
    raw = struct.pack("<IBI", 0, 99, 0)
    decoder = frames.FrameDecoder()
    decoder.feed(raw)
    with pytest.raises(FrameCorruptionError, match="unknown frame type"):
        decoder.next_frame()


def test_absurd_length_is_typed_not_allocated():
    raw = struct.pack("<IBI", 0xFFFFFFF0, frames.DATA, 0)
    decoder = frames.FrameDecoder()
    decoder.feed(raw)
    with pytest.raises(FrameCorruptionError, match="claims"):
        decoder.next_frame()


def test_oversized_payload_refused_at_encode():
    with pytest.raises(FrameCorruptionError, match="exceeds"):
        frames.encode_frame(frames.DATA, b"\0" * (frames.MAX_FRAME_BYTES + 1))


def test_hello_payload_roundtrip():
    mapping = {"java.lang.Object": 0, "Date": 7, "ListNode": 3}
    payload = frames.encode_hello("driver-0", mapping)
    version, name, decoded = frames.decode_hello(payload)
    assert version == frames.PROTOCOL_VERSION
    assert name == "driver-0"
    assert decoded == mapping


def test_hello_ack_payload_roundtrip():
    payload = frames.encode_hello_ack("worker-3", ["Zed", "Alpha"])
    name, extras = frames.decode_hello_ack(payload)
    assert name == "worker-3"
    assert extras == ["Alpha", "Zed"]  # canonicalized sorted


def test_trailer_payload_roundtrip():
    payload = frames.encode_trailer(123456, 0xDEADBEEF, 42)
    assert frames.decode_trailer(payload) == (123456, 0xDEADBEEF, 42)


def test_error_payload_roundtrip():
    payload = frames.encode_error("SkywayStreamError", "no tID 99")
    assert frames.decode_error(payload) == ("SkywayStreamError", "no tID 99")


@pytest.mark.parametrize("decode,what", [
    (frames.decode_hello, "HELLO"),
    (frames.decode_hello_ack, "HELLO_ACK"),
    (frames.decode_trailer, "TRAILER"),
    (frames.decode_error, "ERROR"),
])
def test_malformed_payloads_are_typed(decode, what):
    with pytest.raises(FrameCorruptionError, match=f"malformed {what}"):
        decode(b"\xff\xff\xff")


def test_malformed_json_call_is_typed():
    with pytest.raises(FrameCorruptionError, match="malformed CALL"):
        frames.decode_json(b"{not json", what="CALL")


# ---------------------------------------------------------------------------
# registry merge (the HELLO convergence function)
# ---------------------------------------------------------------------------

def test_merge_is_deterministic_and_driver_wins():
    driver = {"A": 0, "B": 1, "C": 5}
    merged = merge_registries(driver, ["D", "B", "E"])
    assert merged["A"] == 0 and merged["B"] == 1 and merged["C"] == 5
    # extras get sequential IDs from max+1, in sorted order, skipping
    # names the driver already owns
    assert merged["D"] == 6 and merged["E"] == 7
    assert merge_registries(driver, ["E", "D", "B"]) == merged


def test_merge_computed_identically_on_both_sides():
    driver = {"A": 0, "B": 1}
    worker = {"B": 9, "Z": 0, "M": 4}  # conflicting local numbering
    extras = extra_names(worker, driver)
    assert extras == ["M", "Z"]
    driver_side = merge_registries(driver, extras)
    worker_side = merge_registries(driver, extra_names(worker, driver))
    assert driver_side == worker_side == {"A": 0, "B": 1, "M": 2, "Z": 3}


def test_merge_rejects_duplicate_driver_ids():
    with pytest.raises(HandshakeError, match="multiple classes"):
        merge_registries({"A": 0, "B": 0}, [])


def test_merge_empty_driver_map_reserves_null_tid():
    # tID 0 is the "never stamped" sentinel; even a fresh driver learning
    # every class from the worker must not hand it to a real class.
    assert merge_registries({}, ["B", "A"]) == {"A": 1, "B": 2}
