"""Corruption/truncation fuzzing of the framed Skyway stream (satellite of
the socket transport: whatever the wire delivers, the decoder must answer
with one typed SkywayStreamError or a fully-consistent graph — never a
bare struct.error/KeyError, never a silently partial graph).

Bit flips in primitive payload bytes are *allowed* to decode successfully
(they are application data; the transport layer's frame CRC is what
catches them in flight) — but then the graph must be complete: right root
count, trailer checks passed.
"""

import pytest

from repro.core.runtime import attach_skyway
from repro.core.streams import (
    IncrementalStreamDecoder,
    SkywayObjectInputStream,
    SkywayObjectOutputStream,
    SkywayStreamError,
)
from repro.jvm.jvm import JVM

from tests.conftest import make_date, make_list, sample_classpath


def _framed_stream(compress_headers: bool):
    """A small two-root stream (Date graph + linked list) plus the sending
    runtime's registry, for building fresh receivers."""
    classpath = sample_classpath()
    src = JVM("fuzz-src", classpath=classpath)
    attach_skyway(src, [])
    out = SkywayObjectOutputStream(src.skyway, "peer",
                                   compress_headers=compress_headers)
    date = make_date(src, 2018, 3, 28)
    head = make_list(src, range(40))
    out.write_object(date)
    out.write_object(head)
    data = out.close()
    return src, data


def _fresh_receiver_runtime(src):
    # Tiny heaps: the fuzz loops build thousands of throwaway receivers
    # (one per mangled stream), and the graph is under 2KB.
    dst = JVM("fuzz-dst", classpath=sample_classpath(),
              young_bytes=32 * 1024, old_bytes=256 * 1024)
    from repro.core.runtime import SkywayRuntime
    return SkywayRuntime(dst, src.skyway.driver_registry, is_driver=False)


def _try_accept(src, data):
    """Feed a (possibly mangled) stream; returns root count on success.

    Any exception other than SkywayStreamError escapes and fails the test.
    """
    runtime = _fresh_receiver_runtime(src)
    stream = SkywayObjectInputStream(runtime)
    stream.accept(data)
    return stream.root_count


@pytest.mark.parametrize("compress_headers", [False, True],
                         ids=["raw", "compact"])
def test_truncation_at_every_boundary_is_typed(compress_headers):
    src, data = _framed_stream(compress_headers)
    # Every strict prefix must raise the one typed error.  Stride 1 over
    # the whole stream: cheap at this size and leaves no gap untested.
    for cut in range(len(data)):
        with pytest.raises(SkywayStreamError):
            _try_accept(src, data[:cut])


@pytest.mark.parametrize("compress_headers", [False, True],
                         ids=["raw", "compact"])
def test_bit_flips_never_leak_bare_errors(compress_headers):
    src, data = _framed_stream(compress_headers)
    flips_survived = 0
    for pos in range(len(data)):
        for bit in (0x01, 0x80):
            mangled = bytearray(data)
            mangled[pos] ^= bit
            try:
                roots = _try_accept(src, bytes(mangled))
            except SkywayStreamError:
                continue  # the typed verdict — exactly what we demand
            # Silent acceptance is only legal for a fully-parsed stream
            # (payload-byte damage); the structure must still be whole.
            assert roots == 2
            flips_survived += 1
    # Sanity: some payload flips must survive (primitive field bytes),
    # otherwise the harness isn't exercising the silent-acceptance arm.
    assert flips_survived > 0


def test_trailing_garbage_is_typed():
    src, data = _framed_stream(False)
    with pytest.raises(SkywayStreamError, match="trailing bytes"):
        _try_accept(src, data + b"\x00")
    with pytest.raises(SkywayStreamError, match="trailing bytes"):
        _try_accept(src, data + data)


def test_chunked_feeding_matches_single_shot():
    src, data = _framed_stream(False)
    whole = _fresh_receiver_runtime(src)
    whole_decoder = IncrementalStreamDecoder(whole)
    whole_decoder.feed(data)
    whole_roots = whole_decoder.finish()

    for step in (1, 3, 7, 64, 1024):
        runtime = _fresh_receiver_runtime(src)
        decoder = IncrementalStreamDecoder(runtime)
        for i in range(0, len(data), step):
            decoder.feed(data[i:i + step])
        assert decoder.complete
        roots = decoder.finish()
        assert len(roots) == len(whole_roots) == 2
        assert decoder.top_marks == whole_decoder.top_marks
        assert (decoder.receiver.buffer.logical_size
                == whole_decoder.receiver.buffer.logical_size)


def test_error_reports_byte_offset():
    src, data = _framed_stream(False)
    mangled = bytearray(data)
    mangled[0] = 0xEE  # impossible codec id, detected at offset 0
    with pytest.raises(SkywayStreamError, match="codec id"):
        _try_accept(src, bytes(mangled))
