"""Spawn-importable fixtures for transport tests and benchmarks.

Worker processes receive a ``"module:function"`` classpath-factory string
(:mod:`repro.transport.bootstrap`), and the spawned interpreter must be
able to import that module from ``PYTHONPATH`` alone — test ``conftest``
modules are not importable there, so the shared schema lives here.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.apps.incremental import install_incremental_classes
from repro.types.classdef import ClassPath
from repro.types.corelib import install_core_classes


def sample_worker_classpath() -> ClassPath:
    """Core library + the test schema (Date/ListNode, as in the test
    suite's conftest) + the vertex-graph schema used for round-trips."""
    cp = install_core_classes(ClassPath())
    install_incremental_classes(cp)
    cp.define("Year4D", [("year", "I")])
    cp.define("Month2D", [("month", "I")])
    cp.define("Day2D", [("day", "I")])
    cp.define(
        "Date",
        [("year", "LYear4D;"), ("month", "LMonth2D;"), ("day", "LDay2D;")],
    )
    cp.define("ListNode", [("payload", "J"), ("next", "LListNode;")])
    return cp


SAMPLE_FACTORY = "repro.transport.testing:sample_worker_classpath"


def ring_edges(n: int, extra_chords: int = 0) -> List[Tuple[int, int]]:
    """A deterministic connected edge list: an n-ring plus optional
    chords (``i -> (i*7+3) % n``), sized to grow object graphs predictably."""
    edges = [(i, (i + 1) % n) for i in range(n)]
    for i in range(extra_chords):
        edges.append((i % n, (i * 7 + 3) % n))
    return edges
