"""Cluster object-format configuration (paper §3.1, §4.2).

"CLONEINBUFFER would also adjust the format of the clone if Skyway detects
that the receiver JVM has a different specification from the sender JVM,
following a **user-provided configuration file that specifies the object
formats in different JVMs**."

:class:`ClusterFormatConfig` is that configuration: a mapping from node
name to :class:`~repro.heap.layout.HeapLayout`.  Senders consult it to
pick the target layout for a destination automatically; the socket stream
variant wires it in so call sites stay layout-agnostic.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.heap.layout import BASELINE_LAYOUT, HeapLayout, SKYWAY_LAYOUT

_NAMED_LAYOUTS = {
    "skyway-64": SKYWAY_LAYOUT,
    "baseline-64": BASELINE_LAYOUT,
}


class ClusterFormatConfig:
    """Per-node object-format registry with a cluster-wide default."""

    def __init__(self, default: HeapLayout = SKYWAY_LAYOUT) -> None:
        self.default = default
        self._by_node: Dict[str, HeapLayout] = {}

    def set_node_format(self, node_name: str, layout: HeapLayout) -> None:
        self._by_node[node_name] = layout

    def layout_for(self, node_name: str) -> HeapLayout:
        return self._by_node.get(node_name, self.default)

    def __contains__(self, node_name: str) -> bool:
        return node_name in self._by_node

    # -- the "configuration file" ------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "ClusterFormatConfig":
        """Parse the config-file format::

            default = skyway-64
            node worker-3 = baseline-64

        Known formats: ``skyway-64`` (24-byte headers with the baddr word)
        and ``baseline-64`` (unmodified 16-byte headers).
        """
        config = cls()
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if "=" not in line:
                raise ValueError(f"line {lineno}: expected 'key = format'")
            key, _, value = (part.strip() for part in line.partition("="))
            layout = _NAMED_LAYOUTS.get(value)
            if layout is None:
                raise ValueError(
                    f"line {lineno}: unknown format {value!r} "
                    f"(known: {sorted(_NAMED_LAYOUTS)})"
                )
            if key == "default":
                config.default = layout
            elif key.startswith("node "):
                config.set_node_format(key[len("node "):].strip(), layout)
            else:
                raise ValueError(f"line {lineno}: unknown key {key!r}")
        return config

    def dumps(self) -> str:
        name_of = {id(v): k for k, v in _NAMED_LAYOUTS.items()}
        lines = [f"default = {name_of[id(self.default)]}"]
        for node, layout in sorted(self._by_node.items()):
            lines.append(f"node {node} = {name_of[id(layout)]}")
        return "\n".join(lines)
