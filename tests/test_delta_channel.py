"""Tests for delta channel orchestration: epochs, fallbacks, staleness."""

import pytest

from repro.core.runtime import attach_skyway
from repro.delta import (
    DeltaReceiveEndpoint,
    DeltaSendChannel,
    DeltaStaleError,
)
from repro.delta.wire import DeltaFrame, FullFrame, parse_frame
from repro.heap.layout import HeapLayout
from repro.jvm.jvm import JVM

from tests.conftest import make_list, read_list


@pytest.fixture
def pair(classpath):
    src = JVM("chan-src", classpath=classpath)
    dst = JVM("chan-dst", classpath=classpath,
              young_bytes=64 * 1024, old_bytes=4 * 1024 * 1024)
    attach_skyway(src, [dst])
    return src, dst


def fresh_session(src, dst, n=50):
    channel = DeltaSendChannel(src.skyway, "dst")
    endpoint = DeltaReceiveEndpoint.for_runtime(dst.skyway)
    head = src.pin(make_list(src, list(range(n))))
    roots = endpoint.receive(channel.send([head.address]))
    return channel, endpoint, head, roots


class TestEpochFlow:
    def test_full_then_delta_then_delta(self, pair):
        src, dst = pair
        channel, endpoint, head, roots = fresh_session(src, dst)
        assert channel.last_decision.reason == "first_epoch"
        for value in (10, 20):
            src.set_field(head.address, "payload", value)
            roots = endpoint.receive(channel.send([head.address]))
            assert channel.last_decision.mode == "delta"
            assert read_list(dst, roots[0])[0] == value
        assert channel.stats.full_sends == 1
        assert channel.stats.delta_sends == 2
        assert channel.stats.bytes_delta < channel.stats.bytes_full

    def test_mutation_crossover_falls_back_to_full(self, pair):
        src, dst = pair
        channel, endpoint, head, roots = fresh_session(src, dst)
        node = head.address
        while node:  # rewrite every node
            src.set_field(node, "payload", 1)
            node = src.get_field(node, "next")
        frame = channel.send([head.address])
        assert isinstance(parse_frame(frame), FullFrame)
        assert channel.last_decision.reason == "mutation_crossover"
        assert channel.stats.fallbacks["mutation_crossover"] == 1
        roots = endpoint.receive(frame)
        assert read_list(dst, roots[0]) == [1] * 50

    def test_full_resend_frees_previous_buffer(self, pair):
        src, dst = pair
        channel, endpoint, head, roots = fresh_session(src, dst)
        assert dst.skyway.retained_input_buffers == 1
        channel.force_full_next()
        endpoint.receive(channel.send([head.address]))
        assert channel.last_decision.reason == "forced"
        assert dst.skyway.retained_input_buffers == 1  # old freed, new kept

    def test_sender_gc_invalidates_cache(self, pair):
        src, dst = pair
        channel, endpoint, head, roots = fresh_session(src, dst)
        src.gc.minor()
        frame = channel.send([head.address])
        assert channel.last_decision.reason == "gc_moved"
        roots = endpoint.receive(frame)
        assert read_list(dst, roots[0]) == list(range(50))

    def test_heterogeneous_destination_never_deltas(self, pair, classpath):
        src, dst = pair
        other = HeapLayout(has_baddr=False)  # unmodified-JVM 16B headers
        channel = DeltaSendChannel(src.skyway, "dst", target_layout=other)
        head = src.pin(make_list(src, range(50)))
        channel.send([head.address])
        channel.send([head.address])
        assert channel.last_decision.reason == "heterogeneous"
        assert channel.stats.delta_sends == 0

    def test_channel_close_releases_table(self, pair):
        src, dst = pair
        channel, endpoint, head, roots = fresh_session(src, dst)
        tracker = channel.tracker
        count = tracker.table_count
        channel.close()
        assert tracker.table_count == count - 1


class TestStaleness:
    def test_delta_for_unknown_channel_raises(self, pair):
        src, dst = pair
        channel, endpoint, head, roots = fresh_session(src, dst)
        src.set_field(head.address, "payload", 3)
        frame = channel.send([head.address])
        fresh_endpoint = DeltaReceiveEndpoint(dst.skyway)
        with pytest.raises(DeltaStaleError):
            fresh_endpoint.receive(frame)

    def test_skipped_epoch_raises(self, pair):
        src, dst = pair
        channel, endpoint, head, roots = fresh_session(src, dst)
        src.set_field(head.address, "payload", 3)
        channel.send([head.address])  # epoch 2: encoded but never delivered
        src.set_field(head.address, "payload", 4)
        frame = channel.send([head.address])  # epoch 3
        with pytest.raises(DeltaStaleError):
            endpoint.receive(frame)

    def test_receiver_full_gc_raises_then_forced_full_recovers(self, pair):
        src, dst = pair
        channel, endpoint, head, roots = fresh_session(src, dst)
        dst.gc.full()  # compaction: retained chunk addresses move
        src.set_field(head.address, "payload", 3)
        frame = channel.send([head.address])
        with pytest.raises(DeltaStaleError):
            endpoint.receive(frame)
        # The NACK protocol: force full and resend.
        channel.force_full_next()
        roots = endpoint.receive(channel.send([head.address]))
        assert read_list(dst, roots[0]) == [3] + list(range(1, 50))
        # And the channel deltas again afterwards.
        src.set_field(head.address, "payload", 4)
        roots = endpoint.receive(channel.send([head.address]))
        assert channel.last_decision.mode == "delta"
        assert read_list(dst, roots[0])[0] == 4

    def test_stale_state_is_dropped(self, pair):
        src, dst = pair
        channel, endpoint, head, roots = fresh_session(src, dst)
        dst.gc.full()
        src.set_field(head.address, "payload", 3)
        with pytest.raises(DeltaStaleError):
            endpoint.receive(channel.send([head.address]))
        assert endpoint.state_of(channel.channel_id) is None


class TestMultiChannel:
    def test_two_channels_one_heap_independent_epochs(self, pair):
        src, dst = pair
        a = DeltaSendChannel(src.skyway, "dst-a")
        b = DeltaSendChannel(src.skyway, "dst-b")
        endpoint = DeltaReceiveEndpoint.for_runtime(dst.skyway)
        head = src.pin(make_list(src, list(range(50))))
        roots_a = endpoint.receive(a.send([head.address]))
        src.set_field(head.address, "payload", 7)
        roots_b = endpoint.receive(b.send([head.address]))  # full (epoch 1)
        assert b.last_decision.reason == "first_epoch"
        # Channel a still sees the mutation even though b sent in between
        # (per-channel card tables: b's bootstrap cleared only b's table).
        roots_a2 = endpoint.receive(a.send([head.address]))
        assert a.last_decision.mode == "delta"
        assert read_list(dst, roots_a2[0])[0] == 7
        assert read_list(dst, roots_b[0])[0] == 7
        assert roots_a2[0] != roots_b[0]  # distinct retained buffers
