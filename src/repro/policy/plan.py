"""The :class:`SendPlan`: one decision, every knob, clamped by negotiation.

A plan is what a policy *wants* for the next epoch — mode, stream count,
digest, compact headers, the post-encode byte budget — and what every
decision site consumes.  Nothing below the policy plane chooses a mode
anymore: channels execute plans, and :meth:`SendPlan.clamp` is where
capability negotiation bounds what the engine may choose (the old
capability-composition rule, now a per-plan clamp instead of a second
decision path).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

#: Reasons that are a policy's steady-state choice, not a reversion worth
#: counting against it in ``ChannelStats.fallbacks``.
NON_FALLBACK_REASONS = ("delta", "first_epoch", "delta_disabled",
                        "static_full")


@dataclasses.dataclass(frozen=True)
class SendPlan:
    """What one epoch should do, as decided by a policy.

    ``mode`` is the frame kind ("full" | "delta"); :attr:`label` folds the
    execution variant in ("kernel-full", "parallel-4").  ``kernel=None``
    inherits the channel's configured clone engine.  ``byte_budget`` is
    the post-encode gate: a delta frame larger than it is discarded and
    the epoch reverts to FULL (reason ``encoded_overrun``).
    """

    mode: str  # "full" | "delta"
    reason: str = "?"
    policy: str = "?"
    kernel: Optional[bool] = None
    streams: int = 1
    digest: bool = False
    compact_headers: bool = False
    byte_budget: Optional[float] = None
    mutation_rate: float = 0.0
    estimated_bytes: int = 0
    #: Capability names the clamp had to bound ("delta", "streams", ...).
    clamped: Tuple[str, ...] = ()

    @property
    def label(self) -> str:
        """The human-facing mode: full / delta / kernel-full / parallel-N."""
        if self.mode == "full":
            if self.streams > 1:
                return f"parallel-{self.streams}"
            if self.kernel:
                return "kernel-full"
        return self.mode

    @property
    def is_fallback(self) -> bool:
        return self.reason not in NON_FALLBACK_REASONS

    def clamp(self, caps) -> "SendPlan":
        """Bound this plan by a negotiated capability set (anything with
        ``kernel`` / ``delta`` / ``compact_headers`` / ``parallel_streams``
        attributes).  Negotiation *bounds* what the engine chose; it never
        upgrades a plan."""
        clamped = []
        mode, reason, budget = self.mode, self.reason, self.byte_budget
        if mode == "delta" and not caps.delta:
            mode, reason, budget = "full", "delta_disabled", None
            clamped.append("delta")
        kernel = self.kernel
        if not caps.kernel:
            if kernel is None or kernel:
                clamped.append("kernel")
            kernel = False
        elif kernel is None:
            # The offer allows kernels; resolve "inherit" to the
            # negotiated value so the label is honest.
            kernel = True
        compact = self.compact_headers
        if compact and (not caps.compact_headers or caps.delta):
            # PATCH records address the uncompacted buffer layout: a
            # delta-capable channel must never cache a compact FULL as
            # its epoch record, so the two capabilities do not compose.
            compact = False
            clamped.append("compact_headers")
        streams = self.streams
        limit = max(1, caps.parallel_streams) if mode == "full" else 1
        if streams > limit:
            streams = limit
            clamped.append("streams")
        if not clamped and kernel == self.kernel:
            return self
        return dataclasses.replace(
            self, mode=mode, reason=reason, kernel=kernel,
            compact_headers=compact, streams=streams, byte_budget=budget,
            clamped=self.clamped + tuple(clamped),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "label": self.label,
            "reason": self.reason,
            "policy": self.policy,
            "kernel": self.kernel,
            "streams": self.streams,
            "digest": self.digest,
            "compact_headers": self.compact_headers,
            "byte_budget": self.byte_budget,
            "mutation_rate": self.mutation_rate,
            "estimated_bytes": self.estimated_bytes,
            "clamped": list(self.clamped),
        }
