"""SkywaySerializer: the drop-in serializer adapter (paper §5.2).

"To use Skyway, we created a Skyway serializer that wraps the existing
Input/OutputStream with our SkywayInput/OutputStream objects... The entire
SkywaySerializer class contains less than 100 lines of code."  This module
is exactly that shim: it implements the generic
:class:`~repro.serial.base.Serializer` interface over Skyway's streams, so
the Spark and Flink engines (and JSBS) can swap serializers by
configuration, unchanged.

Both JVMs involved must have a :class:`~repro.core.runtime.SkywayRuntime`
attached (sharing one driver registry) — the same cluster-wide setup the
paper requires.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.streams import SkywayObjectInputStream, SkywayObjectOutputStream
from repro.delta.channel import DeltaReceiveEndpoint, DeltaSendChannel
from repro.delta.policy import DeltaPolicy
from repro.delta.wire import is_delta_frame
from repro.jvm.jvm import JVM
from repro.serial.base import (
    DeserializationStream,
    SerializationError,
    SerializationStream,
    Serializer,
)


def _runtime_of(jvm: JVM):
    runtime = jvm.skyway
    if runtime is None:
        raise SerializationError(
            f"JVM {jvm.name} has no Skyway runtime attached; call "
            f"repro.core.attach_skyway(driver, workers) first"
        )
    return runtime


class SkywaySerializer(Serializer):
    """The drop-in serializer; ``compress_headers`` enables the §5.2
    future-work compact transfer encoding for every stream.

    ``delta=True`` opts into epoch-based incremental transfer: streams for
    the same ``(jvm, channel)`` pair share a
    :class:`~repro.delta.channel.DeltaSendChannel`, so the first close
    ships the full graph and later closes ship only what mutated since.
    Readers sniff the frame byte and route DELTA/FULL frames through the
    receiver runtime's :class:`~repro.delta.channel.DeltaReceiveEndpoint`;
    plain Skyway frames still take the stateless stream path.
    """

    name = "skyway"

    def __init__(self, thread_id: int = 0,
                 compress_headers: bool = False,
                 delta: bool = False,
                 delta_policy: DeltaPolicy = None) -> None:
        self.thread_id = thread_id
        self.compress_headers = compress_headers
        self.delta = delta
        self.delta_policy = delta_policy
        #: Per-(sender JVM, channel key) delta channels, created lazily.
        self._channels: Dict[Tuple[str, str], DeltaSendChannel] = {}

    def new_stream(self, jvm: JVM, thread_id: int = None,
                   channel: str = "default"):
        tid = self.thread_id if thread_id is None else thread_id
        if self.delta:
            return DeltaSerializationStream(self.channel_for(jvm, channel))
        return SkywaySerializationStream(jvm, tid, self.compress_headers)

    def new_reader(self, jvm: JVM, data: bytes):
        if is_delta_frame(data):
            return DeltaDeserializationStream(jvm, data)
        return SkywayDeserializationStream(jvm, data)

    def channel_for(self, jvm: JVM, channel: str = "default") -> DeltaSendChannel:
        """The (lazily created) delta channel for one ``(jvm, key)`` pair."""
        runtime = _runtime_of(jvm)
        key = (jvm.name, channel)
        existing = self._channels.get(key)
        if existing is None:
            existing = DeltaSendChannel(
                runtime, destination=channel, policy=self.delta_policy
            )
            self._channels[key] = existing
        return existing


class SkywaySerializationStream(SerializationStream):
    def __init__(self, jvm: JVM, thread_id: int,
                 compress_headers: bool = False) -> None:
        runtime = _runtime_of(jvm)
        # Each serializer stream is its own destination/phase: real shuffle
        # code calls shuffle_start per phase; the generic Serializer API has
        # no phase notion, so a fresh phase per stream keeps baddr state
        # from aliasing across streams.
        runtime.shuffle_start()
        self._stream = SkywayObjectOutputStream(
            runtime,
            destination=f"stream-{id(self)}",
            thread_id=thread_id,
            compress_headers=compress_headers,
        )

    def write_object(self, root: int) -> None:
        self._stream.write_object(root)

    def close(self) -> bytes:
        return self._stream.close()

    @property
    def bytes_written(self) -> int:
        return self._stream.bytes_written


class SkywayDeserializationStream(DeserializationStream):
    def __init__(self, jvm: JVM, data: bytes) -> None:
        runtime = _runtime_of(jvm)
        self._stream = SkywayObjectInputStream(runtime)
        self._stream.accept(data)

    def read_object(self) -> int:
        return self._stream.read_object()

    def has_next(self) -> bool:
        return self._stream.has_next()

    def close(self) -> None:
        self._stream.close()


class DeltaSerializationStream(SerializationStream):
    """Delta-mode writer: roots accumulate, close() frames one epoch."""

    def __init__(self, channel: DeltaSendChannel) -> None:
        self._channel = channel
        self._roots: List[int] = []
        self._frame_bytes = 0
        self._closed = False

    def write_object(self, root: int) -> None:
        if self._closed:
            raise SerializationError("delta stream is closed")
        self._roots.append(root)

    def close(self) -> bytes:
        if self._closed:
            raise SerializationError("delta stream already closed")
        self._closed = True
        frame = self._channel.send(self._roots)
        self._frame_bytes = len(frame)
        return frame

    @property
    def bytes_written(self) -> int:
        return self._frame_bytes


class DeltaDeserializationStream(DeserializationStream):
    """Delta-mode reader: frames route to the runtime's one endpoint
    (channel state — the retained buffer — must outlive any one reader,
    so close() keeps the buffer; a later FULL frame frees it)."""

    def __init__(self, jvm: JVM, data: bytes) -> None:
        runtime = _runtime_of(jvm)
        self._endpoint = DeltaReceiveEndpoint.for_runtime(runtime)
        self._roots = self._endpoint.receive(data)
        self._cursor = 0

    def read_object(self) -> int:
        if self._cursor >= len(self._roots):
            raise SerializationError("no more objects in this delta epoch")
        root = self._roots[self._cursor]
        self._cursor += 1
        return root

    def has_next(self) -> bool:
        return self._cursor < len(self._roots)

    def close(self) -> None:
        # Deliberately not freeing: the epoch's buffer is channel state.
        self._roots = []
